"""The typed query surface of the segment store.

One pair of dataclasses — :class:`QuerySpec` in, :class:`QueryResult` out —
is shared by every read path: :meth:`repro.store.Store.query`, the
sliding-window aggregate helpers and the ``repro-traj query`` CLI, so
"trajectory of device D over [t0, t1]" means exactly the same thing at
every call site.

Matching semantics (all predicates optional, conjunctive):

- ``device`` — exact device id;
- ``window=(t0, t1)`` — the segment's closed time span
  ``[min(start.t, end.t), max(start.t, end.t)]`` intersects ``[t0, t1]``;
- ``bbox=(x_min, y_min, x_max, y_max)`` — the segment's endpoint bounding
  box intersects the query box;
- ``epsilon`` — the error bound the segment was produced under equals
  ``epsilon`` exactly;
- ``level`` — index into the store's stored epsilon ladder (0 = finest);
  resolved by the store to the concrete epsilon at that level;
- ``max_deviation`` — a deviation SLA: the store resolves it to the
  *coarsest* stored epsilon not exceeding the bound (fewest segments that
  still honour the SLA); when no stored level qualifies the query matches
  nothing.

``level`` and ``max_deviation`` are store-resolved predicates — mutually
exclusive with each other and with ``epsilon`` — that
:meth:`repro.store.Store.query` rewrites into a concrete ``epsilon``
against its stored ladder before any partition is consulted.

A :class:`QueryResult` carries, besides the matched segments in canonical
order (device id, then time bucket, then append order), the data-skipping
accounting: how many partitions exist, how many were actually read, and
how many stored segments were materialised — ``partitions_scanned /
partitions_total`` is the headline pruning-effectiveness number.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError
from ..trajectory.piecewise import SegmentRecord

__all__ = [
    "AggregateResult",
    "QuerySpec",
    "QueryResult",
    "StoredSegment",
    "WindowAggregate",
]


@dataclass(frozen=True, slots=True)
class QuerySpec:
    """One declarative store query (all predicates optional, ANDed)."""

    device: str | None = None
    window: tuple[float, float] | None = None
    bbox: tuple[float, float, float, float] | None = None
    epsilon: float | None = None
    level: int | None = None
    max_deviation: float | None = None

    def __post_init__(self) -> None:
        if self.window is not None:
            try:
                window = tuple(float(value) for value in self.window)
            except (TypeError, ValueError) as error:
                raise InvalidParameterError(
                    f"window must be two finite floats, got {self.window!r}"
                ) from error
            if len(window) != 2 or not all(map(math.isfinite, window)):
                raise InvalidParameterError(
                    f"window must be two finite floats, got {self.window!r}"
                )
            if window[0] > window[1]:
                raise InvalidParameterError(
                    f"window start {window[0]!r} exceeds window end {window[1]!r}"
                )
            object.__setattr__(self, "window", window)
        if self.bbox is not None:
            try:
                bbox = tuple(float(value) for value in self.bbox)
            except (TypeError, ValueError) as error:
                raise InvalidParameterError(
                    f"bbox must be four finite floats (x_min, y_min, x_max, y_max), "
                    f"got {self.bbox!r}"
                ) from error
            if len(bbox) != 4 or not all(map(math.isfinite, bbox)):
                raise InvalidParameterError(
                    f"bbox must be four finite floats (x_min, y_min, x_max, y_max), "
                    f"got {self.bbox!r}"
                )
            if bbox[0] > bbox[2] or bbox[1] > bbox[3]:
                raise InvalidParameterError(f"bbox has inverted bounds: {bbox!r}")
            object.__setattr__(self, "bbox", bbox)
        if self.epsilon is not None:
            try:
                epsilon = float(self.epsilon)
            except (TypeError, ValueError) as error:
                raise InvalidParameterError(
                    f"epsilon must be a positive float, got {self.epsilon!r}"
                ) from error
            if not math.isfinite(epsilon) or epsilon <= 0.0:
                raise InvalidParameterError(
                    f"epsilon must be a positive float, got {self.epsilon!r}"
                )
            object.__setattr__(self, "epsilon", epsilon)
        if self.level is not None:
            if isinstance(self.level, bool) or not isinstance(self.level, int):
                raise InvalidParameterError(
                    f"level must be a non-negative integer, got {self.level!r}"
                )
            if self.level < 0:
                raise InvalidParameterError(
                    f"level must be a non-negative integer, got {self.level!r}"
                )
        if self.max_deviation is not None:
            try:
                max_deviation = float(self.max_deviation)
            except (TypeError, ValueError) as error:
                raise InvalidParameterError(
                    f"max_deviation must be a positive float, "
                    f"got {self.max_deviation!r}"
                ) from error
            if not math.isfinite(max_deviation) or max_deviation <= 0.0:
                raise InvalidParameterError(
                    f"max_deviation must be a positive float, "
                    f"got {self.max_deviation!r}"
                )
            object.__setattr__(self, "max_deviation", max_deviation)
        selectors = [
            name
            for name, value in (
                ("epsilon", self.epsilon),
                ("level", self.level),
                ("max_deviation", self.max_deviation),
            )
            if value is not None
        ]
        if len(selectors) > 1:
            raise InvalidParameterError(
                f"epsilon, level and max_deviation are mutually exclusive "
                f"resolution selectors; got {', '.join(selectors)}"
            )

    @property
    def unconstrained(self) -> bool:
        """True when the spec matches every stored segment."""
        return (
            self.device is None
            and self.window is None
            and self.bbox is None
            and self.epsilon is None
            and self.level is None
            and self.max_deviation is None
        )

    def matches(self, device_id: str, epsilon: float, record: SegmentRecord) -> bool:
        """Whether one stored segment satisfies every predicate."""
        if self.level is not None or self.max_deviation is not None:
            raise InvalidParameterError(
                "level/max_deviation are store-resolved selectors; resolve "
                "the spec against the store's epsilon ladder before matching"
            )
        if self.device is not None and device_id != self.device:
            return False
        if self.epsilon is not None and epsilon != self.epsilon:
            return False
        if self.window is not None:
            t_low = min(record.start.t, record.end.t)
            t_high = max(record.start.t, record.end.t)
            if t_low > self.window[1] or t_high < self.window[0]:
                return False
        if self.bbox is not None:
            x_low = min(record.start.x, record.end.x)
            x_high = max(record.start.x, record.end.x)
            y_low = min(record.start.y, record.end.y)
            y_high = max(record.start.y, record.end.y)
            if (
                x_low > self.bbox[2]
                or x_high < self.bbox[0]
                or y_low > self.bbox[3]
                or y_high < self.bbox[1]
            ):
                return False
        return True

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for the CLI's JSON output)."""
        return {
            "device": self.device,
            "window": list(self.window) if self.window is not None else None,
            "bbox": list(self.bbox) if self.bbox is not None else None,
            "epsilon": self.epsilon,
            "level": self.level,
            "max_deviation": self.max_deviation,
        }


@dataclass(frozen=True, slots=True)
class StoredSegment:
    """One segment as the store returns it: record plus provenance."""

    device_id: str
    epsilon: float
    record: SegmentRecord

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable view (used by the CLI and in tests for
        byte-identity comparisons between pruned and full scans)."""
        return {
            "device": self.device_id,
            "epsilon": self.epsilon,
            "segment": self.record.to_dict(),
        }


@dataclass(frozen=True, slots=True)
class QueryResult:
    """Matched segments plus the data-skipping accounting of one query."""

    spec: QuerySpec
    segments: tuple[StoredSegment, ...]
    partitions_total: int
    partitions_scanned: int
    segments_scanned: int
    full_scan: bool = False
    """Whether zone-map pruning was bypassed (``Store.query(full_scan=True))``."""

    @property
    def partitions_skipped(self) -> int:
        """Partitions the zone maps let the query avoid reading."""
        return self.partitions_total - self.partitions_scanned

    @property
    def scan_fraction(self) -> float:
        """``partitions_scanned / partitions_total`` (0.0 for an empty store)."""
        if self.partitions_total == 0:
            return 0.0
        return self.partitions_scanned / self.partitions_total

    def __len__(self) -> int:
        return len(self.segments)

    def devices(self) -> list[str]:
        """Sorted distinct device ids present in the matched segments."""
        return sorted({stored.device_id for stored in self.segments})

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for the CLI's JSON output)."""
        return {
            "spec": self.spec.as_dict(),
            "matched": len(self.segments),
            "partitions_total": self.partitions_total,
            "partitions_scanned": self.partitions_scanned,
            "partitions_skipped": self.partitions_skipped,
            "scan_fraction": self.scan_fraction,
            "segments_scanned": self.segments_scanned,
            "full_scan": self.full_scan,
            "segments": [stored.to_dict() for stored in self.segments],
        }


@dataclass(frozen=True, slots=True)
class WindowAggregate:
    """Aggregates of one sliding window over stored segments.

    A segment contributes to every window its time span intersects, so
    adjacent windows overlap exactly as a sliding computation should.
    """

    t_start: float
    t_end: float
    segments: int = 0
    devices: int = 0
    points: int = 0
    total_length: float = 0.0
    device_ids: tuple[str, ...] = field(default=(), repr=False)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for the CLI's JSON output)."""
        return {
            "t_start": self.t_start,
            "t_end": self.t_end,
            "segments": self.segments,
            "devices": self.devices,
            "points": self.points,
            "total_length": self.total_length,
        }


@dataclass(frozen=True, slots=True)
class AggregateResult:
    """Sliding-window aggregates plus the pushdown/scan accounting.

    ``partitions_pushdown`` counts partitions answered from their zone-map
    sidecar alone — no data file read; ``partitions_scanned`` counts those
    whose rows were actually decoded.  When every admitted partition is
    served by pushdown, ``scan_fraction`` is exactly 0.0: the aggregate
    cost metadata I/O only.
    """

    spec: QuerySpec
    width: float
    step: float
    windows: tuple[WindowAggregate, ...]
    partitions_total: int
    partitions_scanned: int
    partitions_pushdown: int
    segments_scanned: int
    pushdown: bool = True
    """Whether sidecar pushdown was enabled (``pushdown=False`` forces the
    row-scan path; the property tests pin both paths to equal answers)."""

    @property
    def partitions_skipped(self) -> int:
        """Partitions neither scanned nor pushed down (pruned outright)."""
        return self.partitions_total - self.partitions_scanned - self.partitions_pushdown

    @property
    def scan_fraction(self) -> float:
        """``partitions_scanned / partitions_total`` (0.0 for an empty store)."""
        if self.partitions_total == 0:
            return 0.0
        return self.partitions_scanned / self.partitions_total

    def __len__(self) -> int:
        return len(self.windows)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for the CLI's JSON output)."""
        return {
            "spec": self.spec.as_dict(),
            "width": self.width,
            "step": self.step,
            "windows": [window.as_dict() for window in self.windows],
            "partitions_total": self.partitions_total,
            "partitions_scanned": self.partitions_scanned,
            "partitions_pushdown": self.partitions_pushdown,
            "partitions_skipped": self.partitions_skipped,
            "scan_fraction": self.scan_fraction,
            "segments_scanned": self.segments_scanned,
            "pushdown": self.pushdown,
        }
