"""Partition compaction: many small chunks → one, byte-identical queries.

Every :meth:`repro.store.Store.append` adds one chunk to its partition,
so live ingest (hub sinks flushing small batches) leaves partitions made
of many tiny chunks — each paying header and decode overhead on every
scan.  Compaction rewrites such a partition as a *single* chunk holding
the same rows in the same canonical append order, with the epsilon kept
per row (the chunk codec stores it per row precisely so multi-epsilon
partitions compact losslessly).  Query results are byte-identical before
and after — the property tests lock that in.

Compaction is also the store's physical repair path: a partition whose
sidecar was widened by a crash (zone map counts over-approximate the
committed chunks) gets its zone map rewritten *exact* from the rows that
actually survive, restoring its eligibility for aggregate pushdown.  A
crash-window partition that holds no committed rows at all (covering
sidecar, no data) is dropped outright — data file first, then sidecar,
so an interrupted drop never creates unindexed data.

The rewrite is crash-safe: the replacement chunk lands via temp file +
atomic rename, and the exact zone map is written after it.  A crash
between the two leaves the old covering sidecar over the compacted data —
over-approximating counts, sound pruning, repaired by the next
compaction.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from ..exceptions import InvalidParameterError, StoreError
from ..trajectory.piecewise import SegmentRecord
from .layout import (
    DEVICES_DIR,
    PartitionKey,
    ZoneMap,
    encode_chunk_rows,
    encode_device_dir,
    partition_zonemap_name,
    write_zonemap,
)

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .store import Store

__all__ = ["CompactionReport", "PartitionCompaction", "compact_partitions"]


@dataclass(frozen=True, slots=True)
class PartitionCompaction:
    """Accounting for one partition the compactor rewrote (or dropped)."""

    key: PartitionKey
    chunks_before: int
    chunks_after: int
    """1 for a rewrite, 0 for a dropped crash-window partition."""
    segments: int
    bytes_before: int
    bytes_after: int
    repaired: bool
    """True when the partition's sidecar over-approximated the committed
    chunks (crash debris) and was rewritten exact."""

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (used by the CLI)."""
        return {
            "device": self.key.device_id,
            "bucket": self.key.bucket,
            "chunks_before": self.chunks_before,
            "chunks_after": self.chunks_after,
            "segments": self.segments,
            "bytes_before": self.bytes_before,
            "bytes_after": self.bytes_after,
            "repaired": self.repaired,
        }


@dataclass(frozen=True, slots=True)
class CompactionReport:
    """What one :meth:`repro.store.Store.compact` pass did."""

    partitions_considered: int
    compacted: tuple[PartitionCompaction, ...]

    @property
    def partitions_compacted(self) -> int:
        """Partitions rewritten or dropped by this pass."""
        return len(self.compacted)

    @property
    def partitions_removed(self) -> int:
        """Crash-window partitions dropped (no committed rows)."""
        return sum(1 for item in self.compacted if item.chunks_after == 0)

    @property
    def chunks_merged(self) -> int:
        """Total source chunks folded away."""
        return sum(
            item.chunks_before - item.chunks_after for item in self.compacted
        )

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (used by the CLI)."""
        return {
            "partitions_considered": self.partitions_considered,
            "partitions_compacted": self.partitions_compacted,
            "partitions_removed": self.partitions_removed,
            "chunks_merged": self.chunks_merged,
            "compacted": [item.as_dict() for item in self.compacted],
        }


def _zonemap_of_rows(rows: list[tuple[SegmentRecord, float]]) -> ZoneMap:
    """The exact single-chunk zone map of compacted ``(record, epsilon)``
    rows — same covering bounds as the appends that produced them, with
    the chunk count reset and the aggregates recomputed."""
    if not rows:
        raise StoreError("cannot build a zone map over an empty partition")
    ts: list[float] = []
    xs: list[float] = []
    ys: list[float] = []
    for record, _ in rows:
        ts.extend((record.start.t, record.end.t))
        xs.extend((record.start.x, record.end.x))
        ys.extend((record.start.y, record.end.y))
    return ZoneMap(
        t_min=min(ts),
        t_max=max(ts),
        x_min=min(xs),
        x_max=max(xs),
        y_min=min(ys),
        y_max=max(ys),
        segments=len(rows),
        chunks=1,
        epsilons=tuple(sorted({epsilon for _, epsilon in rows})),
        points=sum(record.point_count for record, _ in rows),
        total_length=sum(record.length for record, _ in rows),
    )


def compact_partitions(
    store: "Store", *, device: str | None = None, min_chunks: int = 2
) -> CompactionReport:
    """Compact every (or one device's) multi-chunk or damaged partition.

    Acquires the store's single-writer lock (flushing any deferred
    torn-tail truncations first) and, per selected partition:

    - drops it when no committed rows remain (crash-window debris);
    - otherwise rewrites the data file as one chunk — canonical append
      order preserved, per-row epsilons preserved — via temp file +
      atomic rename, then rewrites the zone map *exact*.

    Healthy partitions with fewer than ``min_chunks`` chunks are left
    untouched; partitions whose sidecar over-approximates the committed
    chunks (salvaged after a crash) are always repaired regardless of
    chunk count.

    Raises
    ------
    InvalidParameterError
        On ``min_chunks < 1``.
    StoreError
        When another live writer holds the lock, or on an I/O failure.
    """
    if min_chunks < 1:
        raise InvalidParameterError(f"min_chunks must be >= 1, got {min_chunks!r}")
    considered = 0
    compacted: list[PartitionCompaction] = []
    with store._mutex:
        store._ensure_writer()
        for key in sorted(store._zonemaps):
            if device is not None and key.device_id != device:
                continue
            considered += 1
            state = store._states[key]
            zonemap = store._zonemaps[key]
            exact = (
                zonemap.segments == state.segments
                and zonemap.chunks == state.chunks
                and zonemap.points is not None
                and zonemap.total_length is not None
            )
            if exact and state.chunks < min_chunks:
                continue
            rows = store._read_partition(key)
            data_path = store._partition_path(key)
            zonemap_path = (
                store.root
                / DEVICES_DIR
                / encode_device_dir(key.device_id)
                / partition_zonemap_name(key.bucket)
            )
            if not rows:
                # Crash-window partition: a covering sidecar over zero
                # committed rows.  Drop the data file (if any) before the
                # sidecar so an interrupted drop never leaves unindexed
                # data behind.
                data_path.unlink(missing_ok=True)
                zonemap_path.unlink(missing_ok=True)
                del store._zonemaps[key]
                del store._states[key]
                compacted.append(
                    PartitionCompaction(
                        key=key,
                        chunks_before=state.chunks,
                        chunks_after=0,
                        segments=0,
                        bytes_before=state.valid_bytes,
                        bytes_after=0,
                        repaired=not exact,
                    )
                )
                continue
            encoded = encode_chunk_rows(rows)
            temporary = data_path.with_name(data_path.name + ".tmp")
            try:
                temporary.write_bytes(encoded)
                temporary.replace(data_path)
            except OSError as error:
                raise StoreError(
                    f"cannot compact partition {key}: {error}"
                ) from error
            fresh = _zonemap_of_rows(rows)
            write_zonemap(zonemap_path, fresh)
            compacted.append(
                PartitionCompaction(
                    key=key,
                    chunks_before=state.chunks,
                    chunks_after=1,
                    segments=len(rows),
                    bytes_before=state.valid_bytes,
                    bytes_after=len(encoded),
                    repaired=not exact,
                )
            )
            store._zonemaps[key] = fresh
            state.chunks = 1
            state.segments = len(rows)
            state.valid_bytes = len(encoded)
            state.pending_repair = False
    return CompactionReport(
        partitions_considered=considered, compacted=tuple(compacted)
    )
