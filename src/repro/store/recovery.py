"""Torn-tail recovery: scan, account, repair.

A crash mid-``append`` leaves a *torn tail* — a final chunk whose header
or column payload never fully reached the disk.  Because the zone map
sidecar is always written first, the partition's pruning bound still
*covers* the lost rows (over-approximation is sound), but a naive decode
of the data file would fail and poison the whole partition.

:class:`repro.store.Store` therefore opens with a recovery scan: every
partition file gets a header-only integrity walk
(:func:`repro.store.layout.scan_partition_file`) and damaged files are
repaired by truncating to the committed chunk prefix.  Physical
truncation requires the single-writer lock; when the store opens without
it (a pure reader racing a live writer), the repair is *logical* — reads
clamp to the committed prefix — and the physical truncation is deferred
until the lock is acquired.  Truncation always follows a scan taken
*under* the lock: a tail that looked torn before the acquire may be the
then-live writer's in-flight chunk, committed in the meantime, so stale
offsets are never trusted.  Either way, every query observes exactly the
fully-committed chunks, never a torn byte.

This module holds the repair step and the accounting types the store
surfaces (:attr:`repro.store.Store.recovery`).
"""

from __future__ import annotations

import os
from dataclasses import dataclass

from ..exceptions import StoreError
from .layout import PartitionKey, PartitionScan

__all__ = ["PartitionRepair", "RecoveryReport", "repair_partition"]


@dataclass(frozen=True, slots=True)
class PartitionRepair:
    """Accounting for one torn partition handled by the recovery scan."""

    key: PartitionKey
    reason: str
    """Why the tail was rejected (``truncated chunk header``/``payload``,
    ``bad chunk magic``)."""
    valid_bytes: int
    """Length of the committed chunk prefix the partition was clamped to."""
    dropped_bytes: int
    """Torn tail length discarded (logically or physically)."""
    segments_kept: int
    """Committed segments surviving in the prefix."""
    truncated: bool
    """True when the file was physically truncated; False when the repair
    is logical (reads clamp to ``valid_bytes`` until the writer lock
    allows truncation)."""

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (used by the CLI)."""
        return {
            "device": self.key.device_id,
            "bucket": self.key.bucket,
            "reason": self.reason,
            "valid_bytes": self.valid_bytes,
            "dropped_bytes": self.dropped_bytes,
            "segments_kept": self.segments_kept,
            "truncated": self.truncated,
        }


@dataclass(frozen=True, slots=True)
class RecoveryReport:
    """What the open-time recovery scan found and did."""

    partitions_scanned: int
    repairs: tuple[PartitionRepair, ...]

    @property
    def damaged(self) -> int:
        """Number of partitions that carried a torn tail."""
        return len(self.repairs)

    @property
    def dropped_bytes(self) -> int:
        """Total torn bytes discarded across all repairs."""
        return sum(repair.dropped_bytes for repair in self.repairs)

    def as_dict(self) -> dict[str, object]:
        """JSON-serialisable view (used by the CLI)."""
        return {
            "partitions_scanned": self.partitions_scanned,
            "damaged": self.damaged,
            "dropped_bytes": self.dropped_bytes,
            "repairs": [repair.as_dict() for repair in self.repairs],
        }


def repair_partition(
    key: PartitionKey, scan: PartitionScan, *, truncate: bool
) -> PartitionRepair:
    """Repair one damaged partition; returns the accounting record.

    With ``truncate=True`` the file is physically cut back to the
    committed prefix (the caller must hold the store's writer lock);
    otherwise the repair is logical and the caller must clamp reads to
    ``scan.valid_bytes``.

    Raises
    ------
    StoreError
        When ``scan`` reports no damage, or the truncation fails.
    """
    if scan.torn is None:
        raise StoreError(f"partition {key} is not damaged; nothing to repair")
    if truncate:
        try:
            os.truncate(scan.path, scan.valid_bytes)
        except OSError as error:
            raise StoreError(
                f"cannot truncate torn partition {key} to byte "
                f"{scan.valid_bytes}: {error}"
            ) from error
    return PartitionRepair(
        key=key,
        reason=scan.torn.reason,
        valid_bytes=scan.valid_bytes,
        dropped_bytes=scan.total_bytes - scan.valid_bytes,
        segments_kept=scan.segments,
        truncated=truncate,
    )
