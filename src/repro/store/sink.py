"""Live ingest into the segment store via the :class:`SegmentSink` protocol.

:class:`StoreSink` adapts one device's stream of finalised
:class:`~repro.trajectory.piecewise.SegmentRecord` instances to
:meth:`repro.store.Store.append`, buffering a bounded number of segments
between appends so that hub-driven ingest amortises the per-append zone
map rewrite over whole batches instead of paying it per segment.
"""

from __future__ import annotations

import math
from typing import TYPE_CHECKING

from ..exceptions import InvalidParameterError, StoreError
from ..trajectory.piecewise import SegmentRecord

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .store import Store

__all__ = ["StoreSink"]


class StoreSink:
    """A buffering segment sink that persists one device into a store.

    Satisfies the :class:`repro.streaming.sinks.SegmentSink` protocol
    (``accept``, plus optional ``flush``/``close``), so it plugs directly
    into :class:`~repro.streaming.hub.StreamHub` via ``sink_factory`` and
    into the fleet executor.  Segments are buffered and appended to the
    store in batches of ``buffer_size``; ``flush()`` forces the buffer out
    early and ``close()`` flushes then rejects further use.
    """

    __slots__ = ("_store", "_device_id", "_epsilon", "_buffer_size", "_buffer",
                 "_written", "_closed")

    def __init__(
        self,
        store: "Store",
        device_id: str,
        *,
        epsilon: float,
        buffer_size: int = 256,
    ) -> None:
        epsilon = float(epsilon)
        if not (math.isfinite(epsilon) and epsilon > 0.0):
            raise InvalidParameterError(
                f"epsilon must be a positive float, got {epsilon!r}"
            )
        if buffer_size < 1:
            raise InvalidParameterError(
                f"buffer_size must be >= 1, got {buffer_size!r}"
            )
        self._store = store
        self._device_id = device_id
        self._epsilon = epsilon
        self._buffer_size = int(buffer_size)
        self._buffer: list[SegmentRecord] = []
        self._written = 0
        self._closed = False

    @property
    def device_id(self) -> str:
        """The device this sink persists."""
        return self._device_id

    @property
    def segments_written(self) -> int:
        """Segments flushed to the store so far (excludes the buffer)."""
        return self._written

    @property
    def pending(self) -> int:
        """Buffered segments not yet appended to the store."""
        return len(self._buffer)

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has run."""
        return self._closed

    def accept(self, segment: SegmentRecord) -> None:
        """Buffer one finalised segment, flushing at ``buffer_size``."""
        if self._closed:
            raise StoreError(
                f"StoreSink for device {self._device_id!r} is closed"
            )
        self._buffer.append(segment)
        if len(self._buffer) >= self._buffer_size:
            self.flush()

    def flush(self) -> None:
        """Append every buffered segment to the store.

        The buffer is only dropped once the append succeeds: a raising
        :meth:`Store.append` rolls back any buckets it had already
        written (the append is all-or-nothing) and leaves every segment
        buffered here, so ``close()`` or a retrying caller re-sends the
        whole batch without losing or duplicating segments.
        """
        if not self._buffer:
            return
        written = self._store.append(
            self._device_id, self._buffer, epsilon=self._epsilon
        )
        self._buffer.clear()
        self._written += written

    def close(self) -> None:
        """Flush the buffer and reject further :meth:`accept` calls."""
        if self._closed:
            return
        self.flush()
        self._closed = True

    def __enter__(self) -> "StoreSink":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    def __repr__(self) -> str:
        return (
            f"StoreSink(device_id={self._device_id!r}, epsilon={self._epsilon!r}, "
            f"written={self._written}, pending={self.pending}, "
            f"closed={self._closed})"
        )
