"""The queryable segment store: persistent, partitioned, zone-mapped.

:func:`open_store` opens (or initialises) a store directory;
:class:`Store` appends finalised :class:`~repro.trajectory.piecewise.
SegmentRecord` batches into per-``(device, time-bucket)`` partitions and
serves the typed query surface of :mod:`repro.store.query` over them.

Write path
----------
``append`` groups a batch by time bucket and, per partition, first
rewrites the zone map sidecar to *cover* the new batch (atomic temp file +
rename), then appends one columnar chunk to the partition's ``.seg`` file.
Because the covering bound lands on disk before the data, a crash between
the two writes can only leave zone maps that over-approximate — a query
may read a partition needlessly but can never skip one that holds matches,
so data skipping stays sound across crashes.  A *failing* append is
additionally all-or-nothing across buckets: chunks the same call already
wrote are rolled back, so a retry (``StoreSink.flush`` keeps its buffer)
re-sends the batch without duplicating segments.

Crash recovery
--------------
A crash *during* the data append leaves a torn tail chunk.  Opening a
store runs a recovery scan (:mod:`repro.store.recovery`): every partition
file gets a header-only integrity walk, torn tails are truncated back to
the committed chunk prefix (physically under the writer lock, logically —
reads clamp — without it), and the per-partition accounting is surfaced
as :attr:`Store.recovery`.  No partition is ever rendered unreadable by a
crash; at worst the half-written batch is lost, which is exactly the
pre-crash commit point.

Read path
---------
``query`` walks the partitions in canonical order (device id, then
bucket), consults each zone map against the spec's window/bbox/epsilon
predicates, and reads only the partitions that may contain matches; the
returned :class:`~repro.store.query.QueryResult` reports exactly how many
partitions the zone maps let it skip.  ``full_scan=True`` bypasses the
pruning (every partition is read) and — by construction, same scan order,
same row predicate — returns byte-identical results; the property tests
lock that equivalence in.

``window_aggregates`` additionally *pushes down* to the sidecars: a
partition whose zone map is exact (counts match the committed chunks) and
whose rows all provably match the spec contributes its precomputed
segment/point/length aggregates without its data file ever being read,
whenever each intersecting window fully covers the partition's time
range.  Fully-covered aggregates therefore run at ``scan_fraction`` 0.

Concurrency: one writer at a time per store directory, enforced by an
``O_EXCL`` lock file (:mod:`repro.store.locking`) acquired eagerly with
``open_store(..., writer=True)`` or lazily on the first append.  In-process
appends are additionally serialised by a mutex so hub shard threads can
share one store.  Readers see every fully appended chunk; the store
object caches zone maps, so a process that wants to observe another
writer's appends should re-open the store.
"""

from __future__ import annotations

import math
import os
import threading
import weakref
from dataclasses import replace
from pathlib import Path
from typing import TYPE_CHECKING, Callable, Iterable, Sequence

from ..exceptions import InvalidParameterError, StoreError
from ..trajectory.piecewise import SegmentRecord
from .layout import (
    DEVICES_DIR,
    LOCK_NAME,
    MANIFEST_NAME,
    PartitionKey,
    PartitionScan,
    ZoneMap,
    bucket_of,
    bucket_of_data_name,
    decode_device_dir,
    encode_chunk,
    encode_device_dir,
    load_manifest,
    partition_data_name,
    partition_zonemap_name,
    read_zonemap,
    salvage_chunks,
    scan_partition_file,
    write_manifest,
    write_zonemap,
)
from .locking import StoreLock
from .query import (
    AggregateResult,
    QueryResult,
    QuerySpec,
    StoredSegment,
    WindowAggregate,
)
from .recovery import PartitionRepair, RecoveryReport, repair_partition
from .sink import StoreSink

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .compact import CompactionReport

__all__ = ["DEFAULT_TIME_BUCKET", "Store", "open_store"]

DEFAULT_TIME_BUCKET = 3600.0
"""Default partition width on the time axis, in timestamp units (seconds)."""


def open_store(
    path: str | Path,
    *,
    time_bucket: float | None = None,
    create: bool = True,
    writer: bool = False,
) -> "Store":
    """Open a segment store directory, initialising it when absent.

    Parameters
    ----------
    path:
        The store's root directory.
    time_bucket:
        Partition width on the time axis, used only when initialising a new
        store (default :data:`DEFAULT_TIME_BUCKET`).  Opening an existing
        store with an explicit ``time_bucket`` that contradicts its
        manifest raises :class:`~repro.exceptions.StoreError` — the layout
        on disk is authoritative.
    create:
        When False, refuse to initialise a missing store.
    writer:
        When True, acquire the single-writer lock eagerly — a second
        writer on the same directory fails right here instead of on its
        first append.  The default acquires lazily on the first mutating
        call, so pure readers never contend for the lock.

    Raises
    ------
    StoreError
        On a malformed or version-incompatible manifest, a non-store
        path, a live writer already holding the lock (``writer=True``),
        or (with ``create=False``) a missing store.
    InvalidParameterError
        On a non-positive or non-finite ``time_bucket``.
    """
    root = Path(path)
    if time_bucket is not None:
        time_bucket = float(time_bucket)
        if not (math.isfinite(time_bucket) and time_bucket > 0.0):
            raise InvalidParameterError(
                f"time_bucket must be a positive float, got {time_bucket!r}"
            )
    if root.exists() and not root.is_dir():
        raise StoreError(
            f"{str(root)!r} exists and is not a directory; cannot open a "
            f"segment store there"
        )
    if root.is_dir():
        _sweep_stale_tmp(root)
    if (root / MANIFEST_NAME).exists():
        payload = load_manifest(root)
        stored = float(payload["time_bucket"])  # type: ignore[arg-type]
        if time_bucket is not None and time_bucket != stored:
            raise StoreError(
                f"store {str(root)!r} was created with time_bucket {stored!r}; "
                f"cannot reopen with {time_bucket!r}"
            )
        return Store(root, time_bucket=stored, writer=writer)
    if not create:
        raise StoreError(f"no segment store at {str(root)!r}")
    if root.exists() and not _is_reinitialisable(root):
        raise StoreError(
            f"directory {str(root)!r} exists, is not empty and has no store "
            f"manifest; refusing to initialise a store inside it"
        )
    effective = DEFAULT_TIME_BUCKET if time_bucket is None else time_bucket
    (root / DEVICES_DIR).mkdir(parents=True, exist_ok=True)
    write_manifest(root, time_bucket=effective)
    return Store(root, time_bucket=effective, writer=writer)


def _sweep_stale_tmp(root: Path) -> None:
    """Remove temp files left by crashed atomic writes.

    Only the store's own temp names are touched — the manifest temp and
    lock-reclaim claim files at the root, plus ``*.tmp`` inside device
    directories (zone map and compaction temps) — so opening never
    deletes foreign files from a directory that turns out not to be a
    store.
    """
    candidates = [root / (MANIFEST_NAME + ".tmp")]
    candidates.extend(sorted(root.glob(LOCK_NAME + ".reclaim.*")))
    devices_root = root / DEVICES_DIR
    if devices_root.is_dir():
        for device_dir in sorted(devices_root.iterdir()):
            if device_dir.is_dir():
                candidates.extend(sorted(device_dir.glob("*.tmp")))
    for candidate in candidates:
        if candidate.is_file():
            candidate.unlink(missing_ok=True)


def _is_reinitialisable(root: Path) -> bool:
    """Whether a manifest-less directory may be (re)initialised as a store.

    True for an empty directory and for the debris of a crash mid-init:
    an empty ``devices/`` tree and/or a leftover lock file.  Anything else
    (foreign files, actual partition data without a manifest) refuses.
    """
    for entry in root.iterdir():
        if entry.name == LOCK_NAME and entry.is_file():
            continue
        if entry.name == DEVICES_DIR and entry.is_dir():
            if any(entry.iterdir()):
                return False
            continue
        return False
    return True


class _PartitionState:
    """Committed-on-disk truth of one partition (vs the covering zone map).

    ``chunks``/``segments``/``valid_bytes`` describe the fully-committed
    chunk prefix; ``pending_repair`` marks a torn tail that could not be
    physically truncated at open (no writer lock) — reads clamp to
    ``valid_bytes`` until the lock is acquired and the truncation flushed.
    """

    __slots__ = ("chunks", "segments", "valid_bytes", "pending_repair")

    def __init__(
        self, chunks: int, segments: int, valid_bytes: int, pending_repair: bool
    ) -> None:
        self.chunks = chunks
        self.segments = segments
        self.valid_bytes = valid_bytes
        self.pending_repair = pending_repair


class Store:
    """A persistent, columnar, append-only segment log with data skipping.

    Not constructed directly — use :func:`open_store`.
    """

    def __init__(
        self, root: Path, *, time_bucket: float, writer: bool = False
    ) -> None:
        self._root = root
        self._time_bucket = time_bucket
        self._zonemaps: dict[PartitionKey, ZoneMap] = {}
        self._states: dict[PartitionKey, _PartitionState] = {}
        self._mutex = threading.Lock()
        self._lock = StoreLock(root)
        if writer:
            self._lock.acquire()
        # GC of an un-closed store must not leave a live-looking lock file
        # behind; release is idempotent, so an explicit close() comes first
        # harmlessly.
        self._finalizer = weakref.finalize(self, StoreLock.release, self._lock)
        self._load_zonemaps()
        self._recovery = self._recover()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def time_bucket(self) -> float:
        """Partition width on the time axis (from the manifest)."""
        return self._time_bucket

    @property
    def n_partitions(self) -> int:
        """Number of ``(device, bucket)`` partitions on disk."""
        return len(self._zonemaps)

    @property
    def n_segments(self) -> int:
        """Total committed segments on disk.

        Counted from the recovery scan's committed chunk prefixes, not the
        zone maps — after a crash the sidecars may over-approximate (that
        is what keeps pruning sound), but this number never does.
        """
        return sum(state.segments for state in self._states.values())

    @property
    def recovery(self) -> RecoveryReport:
        """What the open-time recovery scan found and repaired."""
        return self._recovery

    @property
    def is_writer(self) -> bool:
        """Whether this handle currently holds the single-writer lock."""
        return self._lock.held

    def devices(self) -> list[str]:
        """Sorted device ids with at least one partition."""
        return sorted({key.device_id for key in self._zonemaps})

    def levels(self) -> list[float]:
        """Distinct stored epsilons, ascending — the resolution ladder.

        Level 0 is the finest stored bound.  A pyramid ingest
        (:meth:`pyramid_sink_factory`) stores one level per rung, so this
        mirrors the hub's ``epsilons=[...]`` ladder; single-epsilon ingest
        yields a one-level ladder.  Computed from the zone-map sidecars.
        """
        return sorted(
            {eps for zonemap in self._zonemaps.values() for eps in zonemap.epsilons}
        )

    def partitions(self) -> list[tuple[PartitionKey, ZoneMap]]:
        """Every partition and its zone map, in canonical scan order."""
        return [(key, self._zonemaps[key]) for key in sorted(self._zonemaps)]

    def time_range(self) -> tuple[float, float] | None:
        """Covering ``(t_min, t_max)`` over every partition (None if empty)."""
        if not self._zonemaps:
            return None
        return (
            min(zonemap.t_min for zonemap in self._zonemaps.values()),
            max(zonemap.t_max for zonemap in self._zonemaps.values()),
        )

    # ------------------------------------------------------------------ #
    # Lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the single-writer lock (idempotent).

        The handle stays usable as a reader; the next mutating call
        re-acquires the lock.
        """
        self._lock.release()

    def __enter__(self) -> "Store":
        return self

    def __exit__(self, exc_type: object, exc: object, tb: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def append(
        self,
        device_id: str,
        segments: SegmentRecord | Iterable[SegmentRecord],
        *,
        epsilon: float,
    ) -> int:
        """Append finalised segments for one device; returns the count.

        The batch is grouped by time bucket (``floor(start.t /
        time_bucket)``); each group becomes one columnar chunk in its
        partition, with the partition's zone map extended to cover it
        first.  Within a partition, append order is preserved — it is the
        canonical scan order queries return.

        The first (non-empty) append acquires the store's single-writer
        lock and flushes any torn-tail repairs the open-time recovery had
        to defer; appends are serialised in-process, so hub shard threads
        may share one store.

        A failing append is all-or-nothing across buckets: the chunks
        already written by the same call are rolled back (the widened
        zone maps stay behind as sound over-approximation), so a retrying
        caller — :meth:`StoreSink.flush` keeps its buffer on failure —
        can re-send the whole batch without duplicating segments.

        Raises
        ------
        InvalidParameterError
            On a non-positive/non-finite ``epsilon``.
        StoreError
            When a segment carries non-finite coordinates (the zone map
            must stay strict-JSON serialisable), when another live writer
            holds the lock, or on an I/O failure.
        """
        epsilon = float(epsilon)
        if not (math.isfinite(epsilon) and epsilon > 0.0):
            raise InvalidParameterError(
                f"epsilon must be a positive float, got {epsilon!r}"
            )
        batch = (
            [segments] if isinstance(segments, SegmentRecord) else list(segments)
        )
        if not batch:
            return 0
        for record in batch:
            if not (record.start.is_finite() and record.end.is_finite()):
                raise StoreError(
                    f"segment [{record.first_index}, {record.last_index}] of "
                    f"device {device_id!r} has non-finite coordinates"
                )
        grouped: dict[int, list[SegmentRecord]] = {}
        for record in batch:
            grouped.setdefault(
                bucket_of(record.start.t, self._time_bucket), []
            ).append(record)
        with self._mutex:
            self._ensure_writer()
            device_dir = self._root / DEVICES_DIR / encode_device_dir(device_id)
            device_dir.mkdir(parents=True, exist_ok=True)
            # All-or-nothing across buckets: every touched file's pre-append
            # length is recorded so a failure can cut the already-written
            # chunks back, and the in-memory caches are only updated once
            # every bucket's bytes are durably appended.
            written: list[tuple[Path, int]] = []
            applied: list[tuple[PartitionKey, ZoneMap, int, int]] = []
            try:
                for bucket in sorted(grouped):
                    chunk = grouped[bucket]
                    key = PartitionKey(device_id, bucket)
                    addition = ZoneMap.of_batch(chunk, epsilon)
                    existing = self._zonemaps.get(key)
                    merged = addition if existing is None else existing.merge(addition)
                    encoded = encode_chunk(chunk, epsilon)
                    # Covering-first write order: the widened zone map lands
                    # before the data it describes, so a crash in between can
                    # only leave an over-approximating bound — pruning stays
                    # sound.
                    write_zonemap(device_dir / partition_zonemap_name(bucket), merged)
                    path = device_dir / partition_data_name(bucket)
                    try:
                        pre_size = path.stat().st_size
                    except FileNotFoundError:
                        pre_size = 0
                    written.append((path, pre_size))
                    try:
                        with open(path, "ab") as handle:
                            handle.write(encoded)
                    except OSError as error:
                        raise StoreError(
                            f"cannot append to partition {key}: {error}"
                        ) from error
                    applied.append((key, merged, len(chunk), len(encoded)))
            except BaseException:
                self._rollback_append(written)
                raise
            for key, merged, chunk_rows, chunk_bytes in applied:
                self._zonemaps[key] = merged
                state = self._states.get(key)
                if state is None:
                    state = self._states[key] = _PartitionState(0, 0, 0, False)
                state.chunks += 1
                state.segments += chunk_rows
                state.valid_bytes += chunk_bytes
        return len(batch)

    @staticmethod
    def _rollback_append(written: list[tuple[Path, int]]) -> None:
        """Best-effort undo of a failed multi-bucket append.

        Every touched partition file is cut back to its recorded
        pre-append length (a file the call created is removed outright),
        including the partially-written one the failure interrupted, so a
        retry re-sends the whole batch without duplicating the buckets
        that had already landed.  The widened zone maps stay behind —
        over-approximation is sound.
        """
        for path, pre_size in written:
            try:
                if pre_size == 0:
                    path.unlink(missing_ok=True)
                else:
                    os.truncate(path, pre_size)
            except OSError:  # pragma: no cover - rollback is best effort
                pass

    def compact(
        self, device: str | None = None, *, min_chunks: int = 2
    ) -> "CompactionReport":
        """Rewrite multi-chunk partitions into single-chunk form.

        See :func:`repro.store.compact.compact_partitions` — query results
        are byte-identical before/after, and compaction doubles as the
        physical repair path for salvaged partitions.
        """
        from .compact import compact_partitions

        return compact_partitions(self, device=device, min_chunks=min_chunks)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def query(
        self,
        spec: QuerySpec | None = None,
        *,
        device: str | None = None,
        window: tuple[float, float] | None = None,
        bbox: tuple[float, float, float, float] | None = None,
        epsilon: float | None = None,
        level: int | None = None,
        max_deviation: float | None = None,
        full_scan: bool = False,
    ) -> QueryResult:
        """Run one typed query; returns matches plus skipping accounting.

        Pass either a prepared :class:`~repro.store.query.QuerySpec` or the
        individual predicates (not both).  ``level``/``max_deviation``
        resolve against the stored epsilon ladder (:meth:`levels`) before
        any partition is consulted: ``level`` picks that rung's epsilon,
        ``max_deviation`` picks the *coarsest* stored epsilon within the
        SLA (and matches nothing when no stored level qualifies) — the
        returned spec carries the concrete epsilon that ran.
        ``full_scan=True`` bypasses zone-map pruning — every partition the
        device predicate admits is read, the row predicate still applies —
        and returns byte-identical results; use it to audit pruning
        soundness or measure its benefit.
        """
        spec = self._resolve_spec(
            spec, device, window, bbox, epsilon, level, max_deviation
        )
        spec, matchable = self._resolve_levels(spec)
        matched: list[StoredSegment] = []
        partitions_scanned = 0
        segments_scanned = 0
        if matchable:
            for key in sorted(self._zonemaps):
                if not full_scan and not self._may_match(
                    spec, key, self._zonemaps[key]
                ):
                    continue
                if full_scan and spec.device is not None and key.device_id != spec.device:
                    # Even a full scan stays within the device predicate's
                    # partitions: partitions_total counts those, and
                    # full_scan audits pruning, not device routing.
                    continue
                rows = self._read_partition(key)
                partitions_scanned += 1
                segments_scanned += len(rows)
                for record, record_epsilon in rows:
                    if spec.matches(key.device_id, record_epsilon, record):
                        matched.append(
                            StoredSegment(key.device_id, record_epsilon, record)
                        )
        return QueryResult(
            spec=spec,
            segments=tuple(matched),
            partitions_total=self._partitions_total(spec),
            partitions_scanned=partitions_scanned,
            segments_scanned=segments_scanned,
            full_scan=full_scan,
        )

    def window_aggregates(
        self,
        spec: QuerySpec | None = None,
        *,
        width: float,
        step: float | None = None,
        device: str | None = None,
        window: tuple[float, float] | None = None,
        bbox: tuple[float, float, float, float] | None = None,
        epsilon: float | None = None,
        level: int | None = None,
        max_deviation: float | None = None,
        pushdown: bool = True,
    ) -> AggregateResult:
        """Sliding-window aggregates over the spec's matching segments.

        Windows of ``width`` advance by ``step`` (default: ``width``, i.e.
        tumbling) across the spec's time window — or, when the spec has
        none, across the matched segments' covering time range.  A segment
        contributes to every window its **closed** time span intersects
        (both edges inclusive, matching :meth:`QuerySpec.matches`).

        With ``pushdown=True`` (the default), partitions whose zone map is
        exact and whose rows all provably satisfy the spec are answered
        from the sidecar's precomputed aggregates — no data file read —
        whenever every intersecting window fully covers the partition's
        time range.  ``pushdown=False`` forces the row-scan path; both
        paths return equal aggregates (``total_length`` up to float
        summation order), which the property tests pin.
        """
        width = float(width)
        if not (math.isfinite(width) and width > 0.0):
            raise InvalidParameterError(
                f"width must be a positive float, got {width!r}"
            )
        step = width if step is None else float(step)
        if not (math.isfinite(step) and step > 0.0):
            raise InvalidParameterError(f"step must be a positive float, got {step!r}")
        spec = self._resolve_spec(
            spec, device, window, bbox, epsilon, level, max_deviation
        )
        spec, matchable = self._resolve_levels(spec)

        scan_keys: list[PartitionKey] = []
        push_keys: list[PartitionKey] = []
        if matchable:
            for key in sorted(self._zonemaps):
                zonemap = self._zonemaps[key]
                if not self._may_match(spec, key, zonemap):
                    continue
                if pushdown and self._pushdown_eligible(spec, key, zonemap):
                    push_keys.append(key)
                else:
                    scan_keys.append(key)

        matched: list[StoredSegment] = []
        partitions_scanned = 0
        segments_scanned = 0

        def scan(key: PartitionKey) -> None:
            nonlocal partitions_scanned, segments_scanned
            rows = self._read_partition(key)
            partitions_scanned += 1
            segments_scanned += len(rows)
            for record, record_epsilon in rows:
                if spec.matches(key.device_id, record_epsilon, record):
                    matched.append(
                        StoredSegment(key.device_id, record_epsilon, record)
                    )

        for key in scan_keys:
            scan(key)

        def result(windows: tuple[WindowAggregate, ...]) -> AggregateResult:
            return AggregateResult(
                spec=spec,
                width=width,
                step=step,
                windows=windows,
                partitions_total=self._partitions_total(spec),
                partitions_scanned=partitions_scanned,
                partitions_pushdown=len(push_keys),
                segments_scanned=segments_scanned,
                pushdown=pushdown,
            )

        # The window grid: the spec's window, else the covering time range
        # of everything that matched.  A pushdown partition's zone map
        # range *is* the exact min/max span of its rows (all of which
        # match), so the grid is identical on both paths.
        if spec.window is not None:
            t_low, t_high = spec.window
        else:
            bounds = [
                (
                    min(s.record.start.t, s.record.end.t),
                    max(s.record.start.t, s.record.end.t),
                )
                for s in matched
            ]
            bounds.extend(
                (self._zonemaps[key].t_min, self._zonemaps[key].t_max)
                for key in push_keys
            )
            if not bounds:
                return result(())
            t_low = min(low for low, _ in bounds)
            t_high = max(high for _, high in bounds)

        grid: list[tuple[float, float]] = []
        index = 0
        while True:
            w_start = t_low + index * step
            if w_start > t_high:
                break
            grid.append((w_start, w_start + width))
            index += 1

        # Per-partition pushdown needs every intersecting window to fully
        # cover the partition's time range (then *all* rows contribute and
        # the sidecar aggregates are exact).  Demote the rest to a scan —
        # their rows still all match, so the grid stays unchanged.
        final_push: list[PartitionKey] = []
        for key in push_keys:
            zonemap = self._zonemaps[key]
            covered = all(
                w_start <= zonemap.t_min and zonemap.t_max <= w_end
                for w_start, w_end in grid
                if zonemap.t_min <= w_end and zonemap.t_max >= w_start
            )
            if covered:
                final_push.append(key)
            else:
                scan(key)
        push_keys = final_push

        aggregates: list[WindowAggregate] = []
        for w_start, w_end in grid:
            segments = 0
            points = 0
            total_length = 0.0
            device_ids: set[str] = set()
            for stored in matched:
                span_low = min(stored.record.start.t, stored.record.end.t)
                span_high = max(stored.record.start.t, stored.record.end.t)
                if span_low <= w_end and span_high >= w_start:
                    segments += 1
                    points += stored.record.point_count
                    total_length += stored.record.length
                    device_ids.add(stored.device_id)
            for key in push_keys:
                zonemap = self._zonemaps[key]
                if zonemap.t_min <= w_end and zonemap.t_max >= w_start:
                    segments += zonemap.segments
                    points += zonemap.points or 0
                    total_length += zonemap.total_length or 0.0
                    device_ids.add(key.device_id)
            ordered = tuple(sorted(device_ids))
            aggregates.append(
                WindowAggregate(
                    t_start=w_start,
                    t_end=w_end,
                    segments=segments,
                    devices=len(ordered),
                    points=points,
                    total_length=total_length,
                    device_ids=ordered,
                )
            )
        return result(tuple(aggregates))

    # ------------------------------------------------------------------ #
    # Live ingest (the sink protocol)
    # ------------------------------------------------------------------ #
    def sink(
        self, device_id: str, *, epsilon: float, buffer_size: int = 256
    ) -> StoreSink:
        """A :class:`~repro.store.sink.StoreSink` persisting one device."""
        return StoreSink(self, device_id, epsilon=epsilon, buffer_size=buffer_size)

    def sink_factory(
        self, *, epsilon: float, buffer_size: int = 256
    ) -> Callable[[str], StoreSink]:
        """A ``device_id -> StoreSink`` factory for :class:`StreamHub` /
        ``run_many`` — every device persists into this store."""

        def factory(device_id: str) -> StoreSink:
            return self.sink(device_id, epsilon=epsilon, buffer_size=buffer_size)

        return factory

    def pyramid_sink_factory(
        self, epsilons: Sequence[float], *, buffer_size: int = 256
    ) -> Callable[[str, int], StoreSink]:
        """A ``(device_id, level) -> StoreSink`` factory for pyramid hubs.

        Level ``i`` persists under ``epsilons[i]``, so the stored ladder
        (:meth:`levels`) mirrors the hub's.  Pass the same list as
        ``StreamHub(epsilons=...)``, wiring the finest level through
        :meth:`sink_factory` (``epsilon=epsilons[0]``) and the coarse
        levels through this factory (``level_sink_factory=...``).
        """
        ladder: list[float] = []
        for value in epsilons:
            eps = float(value)
            if not (math.isfinite(eps) and eps > 0.0):
                raise InvalidParameterError(
                    f"epsilons must be positive finite floats, got {value!r}"
                )
            if ladder and eps <= ladder[-1]:
                raise InvalidParameterError(
                    f"epsilons must be strictly ascending, "
                    f"got {eps!r} after {ladder[-1]!r}"
                )
            ladder.append(eps)
        if not ladder:
            raise InvalidParameterError("epsilons must not be empty")

        def factory(device_id: str, level: int) -> StoreSink:
            if not 0 <= level < len(ladder):
                raise InvalidParameterError(
                    f"level {level} is outside the {len(ladder)}-level ladder"
                )
            return self.sink(
                device_id, epsilon=ladder[level], buffer_size=buffer_size
            )

        return factory

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_spec(
        spec: QuerySpec | None,
        device: str | None,
        window: tuple[float, float] | None,
        bbox: tuple[float, float, float, float] | None,
        epsilon: float | None,
        level: int | None = None,
        max_deviation: float | None = None,
    ) -> QuerySpec:
        if spec is None:
            return QuerySpec(
                device=device,
                window=window,
                bbox=bbox,
                epsilon=epsilon,
                level=level,
                max_deviation=max_deviation,
            )
        if (
            device is not None
            or window is not None
            or bbox is not None
            or epsilon is not None
            or level is not None
            or max_deviation is not None
        ):
            raise InvalidParameterError(
                "pass either a QuerySpec or individual predicates, not both"
            )
        return spec

    def _resolve_levels(self, spec: QuerySpec) -> tuple[QuerySpec, bool]:
        """Rewrite ``level``/``max_deviation`` into a concrete epsilon.

        Returns ``(resolved_spec, matchable)``.  ``matchable`` is False
        when ``max_deviation`` admits no stored level — the query matches
        nothing, but its accounting is still reported.  An out-of-range
        ``level`` raises: the caller named a rung that does not exist.
        """
        if spec.level is None and spec.max_deviation is None:
            return spec, True
        ladder = self.levels()
        if spec.level is not None:
            if spec.level >= len(ladder):
                raise InvalidParameterError(
                    f"level {spec.level} is not stored; this store holds "
                    f"{len(ladder)} level(s): {ladder!r}"
                )
            return replace(spec, epsilon=ladder[spec.level], level=None), True
        qualifying = [eps for eps in ladder if eps <= spec.max_deviation]
        if not qualifying:
            return replace(spec, max_deviation=None), False
        # The coarsest stored bound within the SLA: fewest segments that
        # still honour the requested deviation.
        return replace(spec, epsilon=qualifying[-1], max_deviation=None), True

    def _partitions_total(self, spec: QuerySpec) -> int:
        """Partitions the device predicate admits (the skipping baseline).

        Counting only the queried device's partitions keeps
        ``scan_fraction`` meaningful: an unknown device (or an empty
        store) reports ``partitions_total == 0`` and scan fraction 0.0
        instead of crediting the query with skipping partitions it could
        never have read.
        """
        if spec.device is None:
            return len(self._zonemaps)
        return sum(1 for key in self._zonemaps if key.device_id == spec.device)

    @staticmethod
    def _may_match(spec: QuerySpec, key: PartitionKey, zonemap: ZoneMap) -> bool:
        """Zone-map admission: False only when no contained segment can match."""
        if spec.device is not None and key.device_id != spec.device:
            return False
        if spec.window is not None and not zonemap.may_intersect_window(spec.window):
            return False
        if spec.bbox is not None and not zonemap.may_intersect_bbox(spec.bbox):
            return False
        if spec.epsilon is not None and not zonemap.may_contain_epsilon(spec.epsilon):
            return False
        return True

    def _pushdown_eligible(
        self, spec: QuerySpec, key: PartitionKey, zonemap: ZoneMap
    ) -> bool:
        """Whether every row of the partition provably satisfies ``spec``.

        Requires an *exact* zone map — counts equal to the committed
        chunks (a crash-widened sidecar over-approximates and must scan) —
        with the aggregate fields present, and spec predicates that cover
        the zone map's bounds outright: the window contains the time
        range, the bbox contains the bounding box, the epsilon set is
        exactly the queried one.  Device equality is already guaranteed by
        :meth:`_may_match` admission.
        """
        state = self._states.get(key)
        if state is None or state.pending_repair:
            return False
        if zonemap.points is None or zonemap.total_length is None:
            return False
        if zonemap.segments != state.segments or zonemap.chunks != state.chunks:
            return False
        if zonemap.segments == 0:
            return False
        if spec.window is not None and not (
            spec.window[0] <= zonemap.t_min and zonemap.t_max <= spec.window[1]
        ):
            return False
        if spec.bbox is not None and not (
            spec.bbox[0] <= zonemap.x_min
            and zonemap.x_max <= spec.bbox[2]
            and spec.bbox[1] <= zonemap.y_min
            and zonemap.y_max <= spec.bbox[3]
        ):
            return False
        if spec.epsilon is not None and zonemap.epsilons != (spec.epsilon,):
            return False
        return True

    def _partition_path(self, key: PartitionKey) -> Path:
        return (
            self._root
            / DEVICES_DIR
            / encode_device_dir(key.device_id)
            / partition_data_name(key.bucket)
        )

    def _zonemap_path(self, key: PartitionKey) -> Path:
        return (
            self._root
            / DEVICES_DIR
            / encode_device_dir(key.device_id)
            / partition_zonemap_name(key.bucket)
        )

    def _ensure_writer(self) -> None:
        """Acquire the writer lock (caller holds the mutex) and flush any
        torn-tail truncations the open-time recovery had to defer.

        Each deferred partition is re-scanned under the lock before it is
        cut: the writer that blocked the open-time repair may since have
        committed the tail this handle saw torn — its then-in-flight
        chunk — and appended more, so truncating at the remembered offset
        would destroy durably committed data.  Only a file that is
        *still* torn is truncated, at the fresh scan's offset, and the
        state and zone-map caches are refreshed from disk either way.
        """
        if self._lock.held:
            return
        self._lock.acquire()
        for key, state in self._states.items():
            if not state.pending_repair:
                continue
            path = self._partition_path(key)
            if not path.exists():
                state.chunks = state.segments = state.valid_bytes = 0
            else:
                scan = scan_partition_file(path)
                if scan.damaged:
                    repair_partition(key, scan, truncate=True)
                state.chunks = scan.chunks
                state.segments = scan.segments
                state.valid_bytes = scan.valid_bytes
            state.pending_repair = False
            zonemap_file = self._zonemap_path(key)
            if zonemap_file.exists():
                self._zonemaps[key] = read_zonemap(zonemap_file)

    def _recover(self) -> RecoveryReport:
        """Open-time recovery scan: find torn tails, repair, account.

        Physical truncation needs the single-writer lock; when this handle
        does not hold one, a transient acquisition is attempted — if a
        live writer genuinely holds the lock, the repair stays logical
        (reads clamp to the committed prefix) and the truncation is
        deferred to :meth:`_ensure_writer`.
        """
        scans: dict[PartitionKey, PartitionScan] = {}
        for key in sorted(self._zonemaps):
            path = self._partition_path(key)
            if path.exists():
                scans[key] = scan_partition_file(path)
        damaged = [key for key, scan in scans.items() if scan.damaged]
        transient = False
        if damaged and not self._lock.held:
            try:
                self._lock.acquire()
                transient = True
            except StoreError:
                pass
        repairs: list[PartitionRepair] = []
        try:
            if damaged and self._lock.held:
                # The integrity scan ran before the lock was acquired; in
                # between, a then-live writer may have committed the "torn"
                # tail (its in-flight chunk) and appended more.  Re-scan
                # under the lock and truncate only what is still torn, at
                # the fresh scan's offset.
                for key in damaged:
                    path = self._partition_path(key)
                    scans[key] = (
                        scan_partition_file(path)
                        if path.exists()
                        else PartitionScan(path, 0, 0, 0, 0, None)
                    )
                damaged = [key for key in damaged if scans[key].damaged]
            for key in damaged:
                repairs.append(
                    repair_partition(key, scans[key], truncate=self._lock.held)
                )
        finally:
            if transient:
                self._lock.release()
        for key in sorted(self._zonemaps):
            scan = scans.get(key)
            if scan is None:
                self._states[key] = _PartitionState(0, 0, 0, False)
            else:
                self._states[key] = _PartitionState(
                    scan.chunks,
                    scan.segments,
                    scan.valid_bytes,
                    scan.damaged and not any(
                        repair.key == key and repair.truncated for repair in repairs
                    ),
                )
        return RecoveryReport(
            partitions_scanned=len(scans), repairs=tuple(repairs)
        )

    def _read_partition(self, key: PartitionKey) -> list[tuple[SegmentRecord, float]]:
        path = self._partition_path(key)
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            # Crash window: the covering zone map landed but the data
            # append never happened.  The partition is legitimately empty.
            return []
        except OSError as error:
            raise StoreError(f"cannot read partition {key}: {error}") from error
        state = self._states.get(key)
        if state is not None and state.pending_repair:
            # Torn tail that could not be physically truncated at open
            # (another writer holds the lock): clamp to the committed
            # prefix so the read observes exactly the recovered rows.
            data = data[: state.valid_bytes]
        rows: list[tuple[SegmentRecord, float]] = []
        # Salvage rather than decode: the file is re-read on every query,
        # so even after a clean open a concurrent writer's half-flushed
        # chunk can become visible mid-read.  Clamping to the committed
        # chunk prefix keeps the documented contract — readers see every
        # fully appended chunk, never a torn byte — instead of turning
        # the race into a query-failing StoreError.
        chunks, _ = salvage_chunks(data, source=str(path))
        for chunk in chunks:
            rows.extend(chunk)
        return rows

    def _load_zonemaps(self) -> None:
        devices_root = self._root / DEVICES_DIR
        if not devices_root.is_dir():
            raise StoreError(
                f"store {str(self._root)!r} is missing its {DEVICES_DIR}/ directory"
            )
        for device_dir in sorted(devices_root.iterdir()):
            if not device_dir.is_dir():
                continue
            device_id = decode_device_dir(device_dir.name)
            sidecars: set[int] = set()
            data_files: set[int] = set()
            for entry in sorted(device_dir.iterdir()):
                name = entry.name
                if name.endswith(".zm.json") and name.startswith("b"):
                    try:
                        sidecars.add(int(name[1 : -len(".zm.json")]))
                    except ValueError:
                        continue
                else:
                    bucket = bucket_of_data_name(name)
                    if bucket is not None:
                        data_files.add(bucket)
            orphans = sorted(data_files - sidecars)
            if orphans:
                raise StoreError(
                    f"partition data without a zone map sidecar for device "
                    f"{device_id!r}, bucket(s) {orphans} — the store cannot "
                    f"guarantee sound pruning over unindexed data"
                )
            for bucket in sorted(sidecars):
                self._zonemaps[PartitionKey(device_id, bucket)] = read_zonemap(
                    device_dir / partition_zonemap_name(bucket)
                )

    def __repr__(self) -> str:
        return (
            f"Store(root={str(self._root)!r}, time_bucket={self._time_bucket!r}, "
            f"partitions={self.n_partitions}, segments={self.n_segments})"
        )
