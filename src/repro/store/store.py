"""The queryable segment store: persistent, partitioned, zone-mapped.

:func:`open_store` opens (or initialises) a store directory;
:class:`Store` appends finalised :class:`~repro.trajectory.piecewise.
SegmentRecord` batches into per-``(device, time-bucket)`` partitions and
serves the typed query surface of :mod:`repro.store.query` over them.

Write path
----------
``append`` groups a batch by time bucket and, per partition, first
rewrites the zone map sidecar to *cover* the new batch (atomic temp file +
rename), then appends one columnar chunk to the partition's ``.seg`` file.
Because the covering bound lands on disk before the data, a crash between
the two writes can only leave zone maps that over-approximate — a query
may read a partition needlessly but can never skip one that holds matches,
so data skipping stays sound across crashes.

Read path
---------
``query`` walks the partitions in canonical order (device id, then
bucket), consults each zone map against the spec's window/bbox/epsilon
predicates, and reads only the partitions that may contain matches; the
returned :class:`~repro.store.query.QueryResult` reports exactly how many
partitions the zone maps let it skip.  ``full_scan=True`` bypasses the
pruning (every partition is read) and — by construction, same scan order,
same row predicate — returns byte-identical results; the property tests
lock that equivalence in.

Concurrency: one writer at a time per store directory.  Readers see every
fully appended chunk; the store object caches zone maps, so a process that
wants to observe another writer's appends should re-open the store.
"""

from __future__ import annotations

import math
from pathlib import Path
from typing import Callable, Iterable

from ..exceptions import InvalidParameterError, StoreError
from ..trajectory.piecewise import SegmentRecord
from .layout import (
    DEVICES_DIR,
    MANIFEST_NAME,
    PartitionKey,
    ZoneMap,
    bucket_of,
    bucket_of_data_name,
    decode_chunks,
    decode_device_dir,
    encode_chunk,
    encode_device_dir,
    load_manifest,
    partition_data_name,
    partition_zonemap_name,
    read_zonemap,
    write_manifest,
    write_zonemap,
)
from .query import QueryResult, QuerySpec, StoredSegment, WindowAggregate
from .sink import StoreSink

__all__ = ["DEFAULT_TIME_BUCKET", "Store", "open_store"]

DEFAULT_TIME_BUCKET = 3600.0
"""Default partition width on the time axis, in timestamp units (seconds)."""


def open_store(
    path: str | Path,
    *,
    time_bucket: float | None = None,
    create: bool = True,
) -> "Store":
    """Open a segment store directory, initialising it when absent.

    Parameters
    ----------
    path:
        The store's root directory.
    time_bucket:
        Partition width on the time axis, used only when initialising a new
        store (default :data:`DEFAULT_TIME_BUCKET`).  Opening an existing
        store with an explicit ``time_bucket`` that contradicts its
        manifest raises :class:`~repro.exceptions.StoreError` — the layout
        on disk is authoritative.
    create:
        When False, refuse to initialise a missing store.

    Raises
    ------
    StoreError
        On a malformed or version-incompatible manifest, a non-store
        directory, or (with ``create=False``) a missing store.
    InvalidParameterError
        On a non-positive or non-finite ``time_bucket``.
    """
    root = Path(path)
    if time_bucket is not None:
        time_bucket = float(time_bucket)
        if not (math.isfinite(time_bucket) and time_bucket > 0.0):
            raise InvalidParameterError(
                f"time_bucket must be a positive float, got {time_bucket!r}"
            )
    if (root / MANIFEST_NAME).exists():
        payload = load_manifest(root)
        stored = float(payload["time_bucket"])  # type: ignore[arg-type]
        if time_bucket is not None and time_bucket != stored:
            raise StoreError(
                f"store {str(root)!r} was created with time_bucket {stored!r}; "
                f"cannot reopen with {time_bucket!r}"
            )
        return Store(root, time_bucket=stored)
    if not create:
        raise StoreError(f"no segment store at {str(root)!r}")
    if root.exists() and any(root.iterdir()):
        raise StoreError(
            f"directory {str(root)!r} exists, is not empty and has no store "
            f"manifest; refusing to initialise a store inside it"
        )
    effective = DEFAULT_TIME_BUCKET if time_bucket is None else time_bucket
    (root / DEVICES_DIR).mkdir(parents=True, exist_ok=True)
    write_manifest(root, time_bucket=effective)
    return Store(root, time_bucket=effective)


class Store:
    """A persistent, columnar, append-only segment log with data skipping.

    Not constructed directly — use :func:`open_store`.
    """

    def __init__(self, root: Path, *, time_bucket: float) -> None:
        self._root = root
        self._time_bucket = time_bucket
        self._zonemaps: dict[PartitionKey, ZoneMap] = {}
        self._load_zonemaps()

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def root(self) -> Path:
        """The store's root directory."""
        return self._root

    @property
    def time_bucket(self) -> float:
        """Partition width on the time axis (from the manifest)."""
        return self._time_bucket

    @property
    def n_partitions(self) -> int:
        """Number of ``(device, bucket)`` partitions on disk."""
        return len(self._zonemaps)

    @property
    def n_segments(self) -> int:
        """Total stored segments, as recorded by the zone maps."""
        return sum(zonemap.segments for zonemap in self._zonemaps.values())

    def devices(self) -> list[str]:
        """Sorted device ids with at least one partition."""
        return sorted({key.device_id for key in self._zonemaps})

    def partitions(self) -> list[tuple[PartitionKey, ZoneMap]]:
        """Every partition and its zone map, in canonical scan order."""
        return [(key, self._zonemaps[key]) for key in sorted(self._zonemaps)]

    def time_range(self) -> tuple[float, float] | None:
        """Covering ``(t_min, t_max)`` over every partition (None if empty)."""
        if not self._zonemaps:
            return None
        return (
            min(zonemap.t_min for zonemap in self._zonemaps.values()),
            max(zonemap.t_max for zonemap in self._zonemaps.values()),
        )

    # ------------------------------------------------------------------ #
    # Write path
    # ------------------------------------------------------------------ #
    def append(
        self,
        device_id: str,
        segments: SegmentRecord | Iterable[SegmentRecord],
        *,
        epsilon: float,
    ) -> int:
        """Append finalised segments for one device; returns the count.

        The batch is grouped by time bucket (``floor(start.t /
        time_bucket)``); each group becomes one columnar chunk in its
        partition, with the partition's zone map extended to cover it
        first.  Within a partition, append order is preserved — it is the
        canonical scan order queries return.

        Raises
        ------
        InvalidParameterError
            On a non-positive/non-finite ``epsilon``.
        StoreError
            When a segment carries non-finite coordinates (the zone map
            must stay strict-JSON serialisable), or on an I/O failure.
        """
        epsilon = float(epsilon)
        if not (math.isfinite(epsilon) and epsilon > 0.0):
            raise InvalidParameterError(
                f"epsilon must be a positive float, got {epsilon!r}"
            )
        batch = (
            [segments] if isinstance(segments, SegmentRecord) else list(segments)
        )
        if not batch:
            return 0
        for record in batch:
            if not (record.start.is_finite() and record.end.is_finite()):
                raise StoreError(
                    f"segment [{record.first_index}, {record.last_index}] of "
                    f"device {device_id!r} has non-finite coordinates"
                )
        grouped: dict[int, list[SegmentRecord]] = {}
        for record in batch:
            grouped.setdefault(
                bucket_of(record.start.t, self._time_bucket), []
            ).append(record)
        device_dir = self._root / DEVICES_DIR / encode_device_dir(device_id)
        device_dir.mkdir(parents=True, exist_ok=True)
        for bucket in sorted(grouped):
            chunk = grouped[bucket]
            key = PartitionKey(device_id, bucket)
            addition = ZoneMap.of_batch(chunk, epsilon)
            existing = self._zonemaps.get(key)
            merged = addition if existing is None else existing.merge(addition)
            # Covering-first write order: the widened zone map lands before
            # the data it describes, so a crash in between can only leave
            # an over-approximating bound — pruning stays sound.
            write_zonemap(device_dir / partition_zonemap_name(bucket), merged)
            try:
                with open(device_dir / partition_data_name(bucket), "ab") as handle:
                    handle.write(encode_chunk(chunk, epsilon))
            except OSError as error:
                raise StoreError(
                    f"cannot append to partition {key}: {error}"
                ) from error
            self._zonemaps[key] = merged
        return len(batch)

    # ------------------------------------------------------------------ #
    # Read path
    # ------------------------------------------------------------------ #
    def query(
        self,
        spec: QuerySpec | None = None,
        *,
        device: str | None = None,
        window: tuple[float, float] | None = None,
        bbox: tuple[float, float, float, float] | None = None,
        epsilon: float | None = None,
        full_scan: bool = False,
    ) -> QueryResult:
        """Run one typed query; returns matches plus skipping accounting.

        Pass either a prepared :class:`~repro.store.query.QuerySpec` or the
        individual predicates (not both).  ``full_scan=True`` bypasses
        zone-map pruning — every partition is read, the row predicate still
        applies — and returns byte-identical results; use it to audit
        pruning soundness or measure its benefit.
        """
        spec = self._resolve_spec(spec, device, window, bbox, epsilon)
        matched: list[StoredSegment] = []
        partitions_scanned = 0
        segments_scanned = 0
        for key in sorted(self._zonemaps):
            if not full_scan and not self._may_match(spec, key, self._zonemaps[key]):
                continue
            rows = self._read_partition(key)
            partitions_scanned += 1
            segments_scanned += len(rows)
            for record, record_epsilon in rows:
                if spec.matches(key.device_id, record_epsilon, record):
                    matched.append(
                        StoredSegment(key.device_id, record_epsilon, record)
                    )
        return QueryResult(
            spec=spec,
            segments=tuple(matched),
            partitions_total=len(self._zonemaps),
            partitions_scanned=partitions_scanned,
            segments_scanned=segments_scanned,
            full_scan=full_scan,
        )

    def window_aggregates(
        self,
        spec: QuerySpec | None = None,
        *,
        width: float,
        step: float | None = None,
        device: str | None = None,
        window: tuple[float, float] | None = None,
        bbox: tuple[float, float, float, float] | None = None,
        epsilon: float | None = None,
    ) -> list[WindowAggregate]:
        """Sliding-window aggregates over the spec's matching segments.

        Windows of ``width`` advance by ``step`` (default: ``width``, i.e.
        tumbling) across the spec's time window — or, when the spec has
        none, across the matched segments' covering time range.  A segment
        contributes to every window its time span intersects, so the
        aggregates are served entirely from simplified segments at a
        fraction of raw-point cost.
        """
        width = float(width)
        if not (math.isfinite(width) and width > 0.0):
            raise InvalidParameterError(
                f"width must be a positive float, got {width!r}"
            )
        step = width if step is None else float(step)
        if not (math.isfinite(step) and step > 0.0):
            raise InvalidParameterError(f"step must be a positive float, got {step!r}")
        result = self.query(spec, device=device, window=window, bbox=bbox, epsilon=epsilon)
        if result.spec.window is not None:
            t_low, t_high = result.spec.window
        elif result.segments:
            spans = [
                (
                    min(s.record.start.t, s.record.end.t),
                    max(s.record.start.t, s.record.end.t),
                )
                for s in result.segments
            ]
            t_low = min(span[0] for span in spans)
            t_high = max(span[1] for span in spans)
        else:
            return []
        aggregates: list[WindowAggregate] = []
        index = 0
        while True:
            w_start = t_low + index * step
            if w_start > t_high:
                break
            w_end = w_start + width
            contributors = [
                stored
                for stored in result.segments
                if min(stored.record.start.t, stored.record.end.t) < w_end
                and max(stored.record.start.t, stored.record.end.t) >= w_start
            ]
            device_ids = tuple(sorted({stored.device_id for stored in contributors}))
            aggregates.append(
                WindowAggregate(
                    t_start=w_start,
                    t_end=w_end,
                    segments=len(contributors),
                    devices=len(device_ids),
                    points=sum(stored.record.point_count for stored in contributors),
                    total_length=sum(stored.record.length for stored in contributors),
                    device_ids=device_ids,
                )
            )
            index += 1
        return aggregates

    # ------------------------------------------------------------------ #
    # Live ingest (the sink protocol)
    # ------------------------------------------------------------------ #
    def sink(
        self, device_id: str, *, epsilon: float, buffer_size: int = 256
    ) -> StoreSink:
        """A :class:`~repro.store.sink.StoreSink` persisting one device."""
        return StoreSink(self, device_id, epsilon=epsilon, buffer_size=buffer_size)

    def sink_factory(
        self, *, epsilon: float, buffer_size: int = 256
    ) -> Callable[[str], StoreSink]:
        """A ``device_id -> StoreSink`` factory for :class:`StreamHub` /
        ``run_many`` — every device persists into this store."""

        def factory(device_id: str) -> StoreSink:
            return self.sink(device_id, epsilon=epsilon, buffer_size=buffer_size)

        return factory

    # ------------------------------------------------------------------ #
    # Internals
    # ------------------------------------------------------------------ #
    @staticmethod
    def _resolve_spec(
        spec: QuerySpec | None,
        device: str | None,
        window: tuple[float, float] | None,
        bbox: tuple[float, float, float, float] | None,
        epsilon: float | None,
    ) -> QuerySpec:
        if spec is None:
            return QuerySpec(device=device, window=window, bbox=bbox, epsilon=epsilon)
        if device is not None or window is not None or bbox is not None or epsilon is not None:
            raise InvalidParameterError(
                "pass either a QuerySpec or individual predicates, not both"
            )
        return spec

    @staticmethod
    def _may_match(spec: QuerySpec, key: PartitionKey, zonemap: ZoneMap) -> bool:
        """Zone-map admission: False only when no contained segment can match."""
        if spec.device is not None and key.device_id != spec.device:
            return False
        if spec.window is not None and not zonemap.may_intersect_window(spec.window):
            return False
        if spec.bbox is not None and not zonemap.may_intersect_bbox(spec.bbox):
            return False
        if spec.epsilon is not None and not zonemap.may_contain_epsilon(spec.epsilon):
            return False
        return True

    def _read_partition(self, key: PartitionKey) -> list[tuple[SegmentRecord, float]]:
        path = (
            self._root
            / DEVICES_DIR
            / encode_device_dir(key.device_id)
            / partition_data_name(key.bucket)
        )
        try:
            data = path.read_bytes()
        except FileNotFoundError:
            # Crash window: the covering zone map landed but the data
            # append never happened.  The partition is legitimately empty.
            return []
        except OSError as error:
            raise StoreError(f"cannot read partition {key}: {error}") from error
        rows: list[tuple[SegmentRecord, float]] = []
        for chunk in decode_chunks(data, source=str(path)):
            rows.extend(chunk)
        return rows

    def _load_zonemaps(self) -> None:
        devices_root = self._root / DEVICES_DIR
        if not devices_root.is_dir():
            raise StoreError(
                f"store {str(self._root)!r} is missing its {DEVICES_DIR}/ directory"
            )
        for device_dir in sorted(devices_root.iterdir()):
            if not device_dir.is_dir():
                continue
            device_id = decode_device_dir(device_dir.name)
            sidecars: set[int] = set()
            data_files: set[int] = set()
            for entry in sorted(device_dir.iterdir()):
                name = entry.name
                if name.endswith(".zm.json") and name.startswith("b"):
                    try:
                        sidecars.add(int(name[1 : -len(".zm.json")]))
                    except ValueError:
                        continue
                else:
                    bucket = bucket_of_data_name(name)
                    if bucket is not None:
                        data_files.add(bucket)
            orphans = sorted(data_files - sidecars)
            if orphans:
                raise StoreError(
                    f"partition data without a zone map sidecar for device "
                    f"{device_id!r}, bucket(s) {orphans} — the store cannot "
                    f"guarantee sound pruning over unindexed data"
                )
            for bucket in sorted(sidecars):
                self._zonemaps[PartitionKey(device_id, bucket)] = read_zonemap(
                    device_dir / partition_zonemap_name(bucket)
                )

    def __repr__(self) -> str:
        return (
            f"Store(root={str(self._root)!r}, time_bucket={self._time_bucket!r}, "
            f"partitions={self.n_partitions}, segments={self.n_segments})"
        )
