"""On-disk layout of the segment store: manifest, partitions, zone maps.

A store is a directory tree::

    store-root/
      MANIFEST.json            {"format": 1, "kind": "segment-store",
                                "time_bucket": 3600.0}
      devices/
        d-<encoded-device>/    one directory per device
          b<bucket>.seg        columnar append-only segment chunks
          b<bucket>.zm.json    zone map sidecar for that partition

Partitioning is by ``(device, time bucket)``: a segment belongs to the
bucket ``floor(segment.start.t / time_bucket)`` of its device.  Each
``.seg`` file is append-only — every :meth:`repro.store.Store.append`
call adds one self-describing *chunk* holding its segments column by
column (start/end coordinates, index ranges, patch flags, epsilon), so a
reader materialises contiguous float64 arrays per column instead of
parsing rows.  Chunks are little-endian and fully determined by their
payload: writing the same segments always produces the same bytes (the
store sits inside the RPA003 determinism scope).

The zone map sidecar carries the partition's pruning metadata: the exact
time range and bounding box of every segment in the file, the segment and
chunk counts, the sorted set of epsilons present, and (format ≥ this
build) the partition-level aggregates — total point count and total
segment length — that let fully-covered window aggregates be answered
from the sidecar alone.  Sidecars are rewritten atomically (temp file +
rename) *before* the data append, so a crash between the two writes
leaves zone-map bounds that over-approximate the data — queries may scan
a partition needlessly, but can never skip one wrongly.  Zone maps are
therefore always *sound* for data skipping.

A crash mid-append can also leave a *torn tail*: a final chunk whose
header or column payload never fully reached the disk.
:func:`decode_chunks` raises :class:`TornChunkError` there — a
:class:`~repro.exceptions.StoreError` carrying the byte offset where the
committed prefix ends — and :func:`salvage_chunks` /
:func:`scan_partition_file` use that offset to recover the valid prefix
instead of poisoning the whole partition.

Device directory names are percent-encoded (prefixed ``d-`` so no device
id can collide with a path component like ``..``); bucket indices may be
negative (``b-3.seg`` holds timestamps below zero).
"""

from __future__ import annotations

import json
import math
import struct
from dataclasses import dataclass
from pathlib import Path
from typing import Iterator
from urllib.parse import quote, unquote

import numpy as np

from ..exceptions import StoreError
from ..geometry.point import Point
from ..trajectory.piecewise import SegmentRecord

__all__ = [
    "CHUNK_VERSION",
    "LOCK_NAME",
    "MANIFEST_NAME",
    "STORE_FORMAT",
    "STORE_KIND",
    "PartitionKey",
    "PartitionScan",
    "TornChunkError",
    "ZoneMap",
    "bucket_of",
    "bucket_of_data_name",
    "decode_chunks",
    "decode_device_dir",
    "encode_chunk",
    "encode_chunk_rows",
    "encode_device_dir",
    "load_manifest",
    "partition_data_name",
    "partition_zonemap_name",
    "read_zonemap",
    "salvage_chunks",
    "scan_partition_file",
    "write_manifest",
    "write_zonemap",
]

STORE_FORMAT = 1
"""Version stamp of the store layout, bumped on incompatible changes."""

STORE_KIND = "segment-store"
"""Manifest discriminator of a segment-store directory."""

MANIFEST_NAME = "MANIFEST.json"
DEVICES_DIR = "devices"

LOCK_NAME = "LOCK"
"""File name of the store's single-writer lock (see
:mod:`repro.store.locking`)."""

CHUNK_VERSION = 1
"""Version stamp of the columnar chunk encoding."""

_MAGIC = b"RSEG"
_HEADER = struct.Struct("<4sII")  # magic, chunk version, segment count

_DEVICE_PREFIX = "d-"
_FLAG_PATCHED_START = 1
_FLAG_PATCHED_END = 2


# --------------------------------------------------------------------- #
# Manifest
# --------------------------------------------------------------------- #
def write_manifest(root: Path, *, time_bucket: float) -> None:
    """Write the store manifest atomically (temp file + rename)."""
    payload = {
        "format": STORE_FORMAT,
        "kind": STORE_KIND,
        "time_bucket": time_bucket,
    }
    text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    target = root / MANIFEST_NAME
    temporary = target.with_name(target.name + ".tmp")
    temporary.write_text(text)
    temporary.replace(target)


def load_manifest(root: Path) -> dict[str, object]:
    """Load and validate the manifest of an existing store directory.

    Raises
    ------
    StoreError
        When the manifest is unreadable, not valid JSON, not a
        segment-store manifest, or of an incompatible format version.
    """
    path = root / MANIFEST_NAME
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise StoreError(f"cannot read store manifest {str(path)!r}: {error}") from error
    except ValueError as error:
        raise StoreError(
            f"store manifest {str(path)!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("kind") != STORE_KIND:
        raise StoreError(
            f"{str(root)!r} is not a segment store (manifest kind "
            f"{payload.get('kind')!r})" if isinstance(payload, dict)
            else f"store manifest {str(path)!r} must be a JSON object"
        )
    if payload.get("format") != STORE_FORMAT:
        raise StoreError(
            f"unsupported store format {payload.get('format')!r}; "
            f"this build reads format {STORE_FORMAT}"
        )
    try:
        time_bucket = float(payload["time_bucket"])  # type: ignore[arg-type]
    except (KeyError, TypeError, ValueError) as error:
        raise StoreError(f"malformed store manifest {str(path)!r}: {error!r}") from error
    if not (math.isfinite(time_bucket) and time_bucket > 0.0):
        raise StoreError(
            f"store manifest {str(path)!r} has invalid time_bucket {time_bucket!r}"
        )
    return payload


# --------------------------------------------------------------------- #
# Partition naming
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True, order=True)
class PartitionKey:
    """Identity of one store partition: ``(device, time bucket)``."""

    device_id: str
    bucket: int


def bucket_of(t: float, time_bucket: float) -> int:
    """Time bucket index a segment starting at ``t`` belongs to.

    Computed with float floor division rather than ``floor(t /
    time_bucket)``: the plain quotient can underflow to ``-0.0`` for tiny
    negative ``t`` (e.g. ``-5e-324 / 100.0``), which would round a
    below-zero timestamp *up* into bucket 0 and break the canonical
    (device, bucket, append) scan order.
    """
    return int(t // time_bucket)


def encode_device_dir(device_id: str) -> str:
    """Filesystem-safe directory name of a device id (reversible)."""
    return _DEVICE_PREFIX + quote(device_id, safe="")


def decode_device_dir(name: str) -> str:
    """Inverse of :func:`encode_device_dir`.

    Raises
    ------
    StoreError
        When ``name`` is not an encoded device directory name.
    """
    if not name.startswith(_DEVICE_PREFIX):
        raise StoreError(f"not an encoded device directory name: {name!r}")
    return unquote(name[len(_DEVICE_PREFIX):])


def partition_data_name(bucket: int) -> str:
    """File name of a partition's columnar segment log."""
    return f"b{bucket}.seg"


def partition_zonemap_name(bucket: int) -> str:
    """File name of a partition's zone map sidecar."""
    return f"b{bucket}.zm.json"


def bucket_of_data_name(name: str) -> int | None:
    """Bucket index of a ``b<bucket>.seg`` file name (None when not one)."""
    if not (name.startswith("b") and name.endswith(".seg")):
        return None
    try:
        return int(name[1:-4])
    except ValueError:
        return None


# --------------------------------------------------------------------- #
# Zone maps
# --------------------------------------------------------------------- #
@dataclass(frozen=True, slots=True)
class ZoneMap:
    """Pruning metadata of one partition.

    The bounds are *covering*: every segment in the partition's data file
    lies inside ``[t_min, t_max]`` × ``[x_min, x_max]`` × ``[y_min, y_max]``
    and carries one of the listed epsilons.  A query may skip the partition
    whenever its predicate cannot intersect these bounds.

    ``points`` and ``total_length`` are partition-level aggregates (total
    stored point count and summed segment length) that let a window
    aggregate fully covering the partition be answered from the sidecar
    alone.  They are ``None`` when the sidecar predates them (legacy
    stores), in which case aggregate pushdown falls back to scanning.
    """

    t_min: float
    t_max: float
    x_min: float
    x_max: float
    y_min: float
    y_max: float
    segments: int
    chunks: int
    epsilons: tuple[float, ...]
    points: int | None = None
    total_length: float | None = None

    @classmethod
    def of_batch(cls, segments: list[SegmentRecord], epsilon: float) -> "ZoneMap":
        """Zone map covering exactly one appended batch."""
        if not segments:
            raise StoreError("cannot build a zone map over an empty batch")
        ts: list[float] = []
        xs: list[float] = []
        ys: list[float] = []
        for record in segments:
            ts.extend((record.start.t, record.end.t))
            xs.extend((record.start.x, record.end.x))
            ys.extend((record.start.y, record.end.y))
        return cls(
            t_min=min(ts),
            t_max=max(ts),
            x_min=min(xs),
            x_max=max(xs),
            y_min=min(ys),
            y_max=max(ys),
            segments=len(segments),
            chunks=1,
            epsilons=(epsilon,),
            points=sum(record.point_count for record in segments),
            total_length=sum(record.length for record in segments),
        )

    def merge(self, other: "ZoneMap") -> "ZoneMap":
        """Covering union of two zone maps (append = merge with the batch)."""
        return ZoneMap(
            t_min=min(self.t_min, other.t_min),
            t_max=max(self.t_max, other.t_max),
            x_min=min(self.x_min, other.x_min),
            x_max=max(self.x_max, other.x_max),
            y_min=min(self.y_min, other.y_min),
            y_max=max(self.y_max, other.y_max),
            segments=self.segments + other.segments,
            chunks=self.chunks + other.chunks,
            epsilons=tuple(sorted(set(self.epsilons) | set(other.epsilons))),
            points=(
                self.points + other.points
                if self.points is not None and other.points is not None
                else None
            ),
            total_length=(
                self.total_length + other.total_length
                if self.total_length is not None and other.total_length is not None
                else None
            ),
        )

    # ------------------------------------------------------------------ #
    # Pruning predicates (True = the partition *may* contain matches)
    # ------------------------------------------------------------------ #
    def may_intersect_window(self, window: tuple[float, float]) -> bool:
        """Whether any contained segment's time span can meet ``window``."""
        t0, t1 = window
        return self.t_min <= t1 and self.t_max >= t0

    def may_intersect_bbox(self, bbox: tuple[float, float, float, float]) -> bool:
        """Whether any contained segment's bounding box can meet ``bbox``."""
        x_min, y_min, x_max, y_max = bbox
        return (
            self.x_min <= x_max
            and self.x_max >= x_min
            and self.y_min <= y_max
            and self.y_max >= y_min
        )

    def may_contain_epsilon(self, epsilon: float) -> bool:
        """Whether any contained segment was produced under ``epsilon``."""
        return epsilon in self.epsilons

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable view (sorted keys make the bytes canonical)."""
        return {
            "format": STORE_FORMAT,
            "t_min": self.t_min,
            "t_max": self.t_max,
            "x_min": self.x_min,
            "x_max": self.x_max,
            "y_min": self.y_min,
            "y_max": self.y_max,
            "segments": self.segments,
            "chunks": self.chunks,
            "epsilons": list(self.epsilons),
            "points": self.points,
            "total_length": self.total_length,
        }

    @classmethod
    def from_dict(cls, payload: dict[str, object]) -> "ZoneMap":
        """Rebuild a zone map from :meth:`to_dict` output.

        ``points``/``total_length`` default to ``None`` so sidecars written
        before the aggregate fields existed keep loading (and simply opt
        their partition out of aggregate pushdown).
        """
        points = payload.get("points")
        total_length = payload.get("total_length")
        try:
            return cls(
                t_min=float(payload["t_min"]),  # type: ignore[arg-type]
                t_max=float(payload["t_max"]),  # type: ignore[arg-type]
                x_min=float(payload["x_min"]),  # type: ignore[arg-type]
                x_max=float(payload["x_max"]),  # type: ignore[arg-type]
                y_min=float(payload["y_min"]),  # type: ignore[arg-type]
                y_max=float(payload["y_max"]),  # type: ignore[arg-type]
                segments=int(payload["segments"]),  # type: ignore[arg-type]
                chunks=int(payload["chunks"]),  # type: ignore[arg-type]
                epsilons=tuple(
                    float(value) for value in payload["epsilons"]  # type: ignore[union-attr]
                ),
                points=int(points) if points is not None else None,  # type: ignore[arg-type]
                total_length=(
                    float(total_length) if total_length is not None else None  # type: ignore[arg-type]
                ),
            )
        except (KeyError, TypeError, ValueError) as error:
            raise StoreError(f"malformed zone map payload: {error!r}") from error


def write_zonemap(path: Path, zonemap: ZoneMap) -> None:
    """Write a zone map sidecar atomically (temp file + rename)."""
    try:
        text = json.dumps(zonemap.to_dict(), indent=2, sort_keys=True, allow_nan=False) + "\n"
    except ValueError as error:
        raise StoreError(f"zone map is not strict-JSON serialisable: {error}") from error
    temporary = path.with_name(path.name + ".tmp")
    temporary.write_text(text)
    temporary.replace(path)


def read_zonemap(path: Path) -> ZoneMap:
    """Load a zone map sidecar.

    Raises
    ------
    StoreError
        When the sidecar is unreadable or malformed.
    """
    try:
        payload = json.loads(path.read_text())
    except OSError as error:
        raise StoreError(f"cannot read zone map {str(path)!r}: {error}") from error
    except ValueError as error:
        raise StoreError(f"zone map {str(path)!r} is not valid JSON: {error}") from error
    if not isinstance(payload, dict):
        raise StoreError(f"zone map {str(path)!r} must be a JSON object")
    return ZoneMap.from_dict(payload)


# --------------------------------------------------------------------- #
# Columnar chunk codec
# --------------------------------------------------------------------- #
class TornChunkError(StoreError):
    """A chunk whose bytes never fully reached the disk (crash mid-append).

    ``offset`` is the byte offset where the last fully-committed chunk
    ends — everything before it decodes cleanly, everything from it on is
    the torn (or corrupt) tail.  Recovery truncates the file to ``offset``.

    The keyword parameters carry defaults so ``cls(message)`` revival
    across process boundaries works (RPA005); a revived instance keeps
    its message but not the structured offset.
    """

    def __init__(
        self, message: str, *, offset: int = 0, reason: str = "torn chunk"
    ) -> None:
        super().__init__(message)
        self.offset = offset
        self.reason = reason


def encode_chunk_rows(rows: list[tuple[SegmentRecord, float]]) -> bytes:
    """Encode ``(record, epsilon)`` rows as one self-describing chunk.

    Layout (all little-endian): the header (magic, version, count), six
    float64 columns (start x/y/t, end x/y/t), four int64 columns (first,
    last, point count, covered last index), one uint8 flag column (bit 0 =
    patched start, bit 1 = patched end) and a float64 epsilon column.  The
    epsilon column is per-row, so compaction can rewrite chunks appended
    under different bounds into one chunk without losing provenance.
    """
    n = len(rows)
    start_x = np.fromiter((s.start.x for s, _ in rows), dtype="<f8", count=n)
    start_y = np.fromiter((s.start.y for s, _ in rows), dtype="<f8", count=n)
    start_t = np.fromiter((s.start.t for s, _ in rows), dtype="<f8", count=n)
    end_x = np.fromiter((s.end.x for s, _ in rows), dtype="<f8", count=n)
    end_y = np.fromiter((s.end.y for s, _ in rows), dtype="<f8", count=n)
    end_t = np.fromiter((s.end.t for s, _ in rows), dtype="<f8", count=n)
    first = np.fromiter((s.first_index for s, _ in rows), dtype="<i8", count=n)
    last = np.fromiter((s.last_index for s, _ in rows), dtype="<i8", count=n)
    count = np.fromiter((s.point_count for s, _ in rows), dtype="<i8", count=n)
    covered = np.fromiter((s.covered_last_index for s, _ in rows), dtype="<i8", count=n)
    flags = np.fromiter(
        (
            (_FLAG_PATCHED_START if s.patched_start else 0)
            | (_FLAG_PATCHED_END if s.patched_end else 0)
            for s, _ in rows
        ),
        dtype="u1",
        count=n,
    )
    eps = np.fromiter((epsilon for _, epsilon in rows), dtype="<f8", count=n)
    parts = [
        _HEADER.pack(_MAGIC, CHUNK_VERSION, n),
        start_x.tobytes(), start_y.tobytes(), start_t.tobytes(),
        end_x.tobytes(), end_y.tobytes(), end_t.tobytes(),
        first.tobytes(), last.tobytes(), count.tobytes(), covered.tobytes(),
        flags.tobytes(),
        eps.tobytes(),
    ]
    return b"".join(parts)


def encode_chunk(segments: list[SegmentRecord], epsilon: float) -> bytes:
    """Encode one append batch (uniform epsilon) as a columnar chunk."""
    return encode_chunk_rows([(segment, epsilon) for segment in segments])


def _chunk_payload_size(n: int) -> int:
    """Byte length of a chunk's column payload (header excluded)."""
    return n * (6 * 8 + 4 * 8 + 1 + 8)


def _chunk_extent(
    data: bytes, offset: int, total: int, source: str
) -> tuple[int, int]:
    """Validate one chunk header at ``offset``; return ``(row count, end)``.

    Raises :class:`TornChunkError` (offset = the chunk's start, i.e. the
    end of the committed prefix) on a truncated header/payload or a bad
    magic, and a plain :class:`StoreError` on an unsupported chunk version
    — a version from the future is valid data this build must not salvage
    away.
    """
    if offset + _HEADER.size > total:
        raise TornChunkError(
            f"truncated chunk header in {source} at byte {offset}",
            offset=offset,
            reason="truncated chunk header",
        )
    magic, version, n = _HEADER.unpack_from(data, offset)
    if magic != _MAGIC:
        raise TornChunkError(
            f"bad chunk magic in {source} at byte {offset}",
            offset=offset,
            reason="bad chunk magic",
        )
    if version != CHUNK_VERSION:
        raise StoreError(
            f"unsupported chunk version {version} in {source}; "
            f"this build reads version {CHUNK_VERSION}"
        )
    end = offset + _HEADER.size + _chunk_payload_size(n)
    if end > total:
        raise TornChunkError(
            f"truncated chunk payload in {source} at byte {offset + _HEADER.size}",
            offset=offset,
            reason="truncated chunk payload",
        )
    return n, end


def decode_chunks(data: bytes, *, source: str = "<bytes>") -> Iterator[
    list[tuple[SegmentRecord, float]]
]:
    """Decode a partition file into per-chunk ``(record, epsilon)`` rows.

    Chunks come back in file order, rows in append order — the partition's
    canonical scan order.

    Raises
    ------
    TornChunkError
        On a bad magic or a truncated chunk (e.g. a crash mid-append); the
        error carries the byte offset of the committed prefix and
        ``source`` names the file.
    StoreError
        On an unsupported chunk version.
    """
    offset = 0
    total = len(data)
    while offset < total:
        n, end = _chunk_extent(data, offset, total, source)
        rows, _ = _decode_one_chunk(data, offset + _HEADER.size, n)
        offset = end
        yield rows


def salvage_chunks(
    data: bytes, *, source: str = "<bytes>"
) -> tuple[list[list[tuple[SegmentRecord, float]]], TornChunkError | None]:
    """Decode the valid chunk prefix of a (possibly torn) partition file.

    Returns the fully-committed chunks in file order plus the
    :class:`TornChunkError` describing the torn tail (``None`` when the
    file decodes cleanly).  Unlike :func:`decode_chunks` this never lets a
    crash-torn tail poison the readable prefix; an unsupported chunk
    *version* still raises, because future-format data must not be
    silently dropped.
    """
    chunks: list[list[tuple[SegmentRecord, float]]] = []
    try:
        for rows in decode_chunks(data, source=source):
            chunks.append(rows)
    except TornChunkError as error:
        return chunks, error
    return chunks, None


@dataclass(frozen=True, slots=True)
class PartitionScan:
    """Result of a header-only integrity walk over one partition file.

    ``valid_bytes`` is the length of the committed chunk prefix; it equals
    ``total_bytes`` when the file is intact.  ``chunks``/``segments``
    count only the committed prefix.  ``torn`` carries the
    :class:`TornChunkError` describing the tail when the file is damaged.
    """

    path: Path
    total_bytes: int
    valid_bytes: int
    chunks: int
    segments: int
    torn: TornChunkError | None

    @property
    def damaged(self) -> bool:
        """Whether the file carries a torn tail needing repair."""
        return self.torn is not None


def scan_partition_file(path: Path) -> PartitionScan:
    """Walk a partition file's chunk headers without decoding payloads.

    This is the recovery scan :class:`repro.store.Store` runs on open: it
    validates every chunk header, sums committed chunk/segment counts and
    locates the torn tail (if any) — all without materialising a single
    row, so opening a large intact store stays cheap.

    Raises
    ------
    StoreError
        When the file cannot be read, or a committed-prefix chunk carries
        an unsupported version (future data must not be repaired away).
    """
    source = str(path)
    chunks = 0
    segments = 0
    torn: TornChunkError | None = None
    try:
        with open(path, "rb") as handle:
            total = handle.seek(0, 2)
            offset = 0
            handle.seek(0)
            while offset < total:
                header = handle.read(_HEADER.size)
                try:
                    n, end = _chunk_extent(header, 0, total - offset, source)
                except TornChunkError as error:
                    torn = TornChunkError(
                        f"{error.reason} in {source} at byte {offset + error.offset}",
                        offset=offset + error.offset,
                        reason=error.reason,
                    )
                    break
                chunks += 1
                segments += n
                offset += end
                handle.seek(offset)
    except OSError as error:
        raise StoreError(
            f"cannot read partition file {str(path)!r}: {error}"
        ) from error
    return PartitionScan(
        path=path,
        total_bytes=total,
        valid_bytes=torn.offset if torn is not None else total,
        chunks=chunks,
        segments=segments,
        torn=torn,
    )


def _decode_one_chunk(
    data: bytes, offset: int, n: int
) -> tuple[list[tuple[SegmentRecord, float]], int]:
    """Decode one chunk's column payload; returns the rows and the new offset."""

    def column(dtype: str, width: int, cursor: int) -> tuple[np.ndarray, int]:
        array = np.frombuffer(data, dtype=dtype, count=n, offset=cursor)
        return array, cursor + n * width

    cursor = offset
    start_x, cursor = column("<f8", 8, cursor)
    start_y, cursor = column("<f8", 8, cursor)
    start_t, cursor = column("<f8", 8, cursor)
    end_x, cursor = column("<f8", 8, cursor)
    end_y, cursor = column("<f8", 8, cursor)
    end_t, cursor = column("<f8", 8, cursor)
    first, cursor = column("<i8", 8, cursor)
    last, cursor = column("<i8", 8, cursor)
    count, cursor = column("<i8", 8, cursor)
    covered, cursor = column("<i8", 8, cursor)
    flags, cursor = column("u1", 1, cursor)
    eps, cursor = column("<f8", 8, cursor)

    rows: list[tuple[SegmentRecord, float]] = []
    for i in range(n):
        record = SegmentRecord(
            start=Point(float(start_x[i]), float(start_y[i]), float(start_t[i])),
            end=Point(float(end_x[i]), float(end_y[i]), float(end_t[i])),
            first_index=int(first[i]),
            last_index=int(last[i]),
            point_count=int(count[i]),
            covered_last_index=int(covered[i]),
            patched_start=bool(flags[i] & _FLAG_PATCHED_START),
            patched_end=bool(flags[i] & _FLAG_PATCHED_END),
        )
        rows.append((record, float(eps[i])))
    return rows, cursor
