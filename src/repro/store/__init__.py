"""Persistent, queryable segment store with zone-map data skipping.

The store is the read-heavy half of the pipeline: simplified segments
flow in live through :class:`StoreSink` (one per device, via
``StreamHub`` / ``run_many`` sink factories) or in bulk through
:meth:`Store.append`, land in an append-only columnar log partitioned by
``(device, time-bucket)``, and come back out through one typed query
surface — :class:`QuerySpec` in, :class:`QueryResult` out — that prunes
partitions with per-partition zone maps before reading a single byte of
data.

See :mod:`repro.store.layout` for the on-disk format (versioned,
deterministic bytes) and :mod:`repro.store.store` for the pruning
soundness argument.
"""

from .layout import STORE_FORMAT, PartitionKey, ZoneMap
from .query import QueryResult, QuerySpec, StoredSegment, WindowAggregate
from .sink import StoreSink
from .store import DEFAULT_TIME_BUCKET, Store, open_store

__all__ = [
    "DEFAULT_TIME_BUCKET",
    "STORE_FORMAT",
    "PartitionKey",
    "QueryResult",
    "QuerySpec",
    "Store",
    "StoreSink",
    "StoredSegment",
    "WindowAggregate",
    "ZoneMap",
    "open_store",
]
