"""Persistent, queryable segment store with zone-map data skipping.

The store is the read-heavy half of the pipeline: simplified segments
flow in live through :class:`StoreSink` (one per device, via
``StreamHub`` / ``run_many`` sink factories) or in bulk through
:meth:`Store.append`, land in an append-only columnar log partitioned by
``(device, time-bucket)``, and come back out through one typed query
surface — :class:`QuerySpec` in, :class:`QueryResult` out — that prunes
partitions with per-partition zone maps before reading a single byte of
data.

The store is crash-proof and single-writer-enforced: opening runs a
torn-tail recovery scan (:mod:`repro.store.recovery`), writers hold an
``O_EXCL`` lock file (:mod:`repro.store.locking`), partitions compact to
single-chunk form with byte-identical query results
(:mod:`repro.store.compact`), and fully-covered window aggregates are
answered from the zone-map sidecars alone.

See :mod:`repro.store.layout` for the on-disk format (versioned,
deterministic bytes) and :mod:`repro.store.store` for the pruning
soundness argument.
"""

from .compact import CompactionReport, PartitionCompaction
from .layout import STORE_FORMAT, PartitionKey, TornChunkError, ZoneMap
from .locking import StoreLock
from .query import (
    AggregateResult,
    QueryResult,
    QuerySpec,
    StoredSegment,
    WindowAggregate,
)
from .recovery import PartitionRepair, RecoveryReport
from .sink import StoreSink
from .store import DEFAULT_TIME_BUCKET, Store, open_store

__all__ = [
    "AggregateResult",
    "CompactionReport",
    "DEFAULT_TIME_BUCKET",
    "PartitionCompaction",
    "PartitionKey",
    "PartitionRepair",
    "QueryResult",
    "QuerySpec",
    "RecoveryReport",
    "STORE_FORMAT",
    "Store",
    "StoreLock",
    "StoreSink",
    "StoredSegment",
    "TornChunkError",
    "WindowAggregate",
    "ZoneMap",
    "open_store",
]
