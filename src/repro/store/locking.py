"""Single-writer lock protocol of the segment store.

The store's documented rule — *one writer per directory* — is enforced by
an ``O_CREAT | O_EXCL`` lock file (:data:`repro.store.layout.LOCK_NAME`)
at the store root.  The file holds a small JSON payload::

    {"pid": 4711, "created": 1754650000.0, "host": "worker-3"}

Acquisition either creates the file atomically or fails; on failure the
holder's liveness is probed (``os.kill(pid, 0)``) and a lock left behind
by a dead process — or one too malformed to name a holder — is taken
over *atomically*: the stale file is renamed to a per-pid claim name, so
of several racing reclaimers exactly one wins the rename, and every
loser falls through to a plain exclusive attempt against the winner's
fresh lock (a bare unlink+recreate would let two racers alternately
unlink each other's fresh lock and both "hold" it).  A lock held by a
live process in *this* interpreter (two :class:`repro.store.Store`
handles on one directory) is detected via a module-level registry rather
than the pid, which would otherwise look like our own stale file.

Release is idempotent and crash-tolerant: a process that dies without
releasing leaves a stale file the next writer silently reclaims.  The
payload's ``created`` timestamp is diagnostic only — staleness is decided
by process liveness, never by age, so a long-lived writer is never
usurped.  The clock is injectable (attribute default, called through the
instance) to keep the module inside the RPA003 determinism scope.
"""

from __future__ import annotations

import json
import os
import socket
import threading
import time
from pathlib import Path
from typing import Callable

from ..exceptions import StoreError
from .layout import LOCK_NAME

__all__ = ["StoreLock"]

# Re-entrant because release() can run *inside* acquire()'s critical
# section on the same thread: an abandoned Store's GC finalizer calls
# release, and GC can trigger at any allocation, including while this
# guard is held.  A plain Lock deadlocks the interpreter there.
_registry_guard = threading.RLock()
_held_paths: set[str] = set()
"""Resolved lock-file paths held by this interpreter.

``os.kill(pid, 0)`` cannot distinguish "another Store in this process"
from "our own stale file", so in-process holders are tracked explicitly.
"""


class StoreLock:
    """Exclusive single-writer lock on one store directory.

    Parameters
    ----------
    root:
        The store root directory (must exist).
    clock:
        Timestamp source stamped into the lock payload; injectable for
        deterministic tests.
    """

    __slots__ = ("_clock", "_held", "_path")

    def __init__(
        self, root: Path, *, clock: Callable[[], float] = time.time
    ) -> None:
        self._path = root / LOCK_NAME
        self._clock = clock
        self._held = False

    @property
    def path(self) -> Path:
        """Location of the lock file."""
        return self._path

    @property
    def held(self) -> bool:
        """Whether this instance currently holds the lock."""
        return self._held

    def acquire(self) -> None:
        """Take the single-writer lock, reclaiming a stale one if needed.

        Raises
        ------
        StoreError
            When another live writer (any process, including this one)
            already holds the lock, or the lock file cannot be created.
        """
        if self._held:
            return
        key = str(self._path.resolve())
        with _registry_guard:
            if key in _held_paths:
                raise StoreError(
                    f"store {str(self._path.parent)!r} is already locked by "
                    "another writer in this process"
                )
            if not self._try_create():
                holder_pid = self._read_holder_pid()
                # A file naming *our* pid while absent from the registry is
                # necessarily stale: the registry is authoritative for this
                # interpreter, so the file was left by a previous process
                # that happened to share our pid.
                if (
                    holder_pid is not None
                    and holder_pid != os.getpid()
                    and _pid_alive(holder_pid)
                ):
                    raise StoreError(
                        f"store {str(self._path.parent)!r} is locked by live "
                        f"writer pid {holder_pid} ({str(self._path)!r}); "
                        "remove the lock file only if that process is gone"
                    )
                # Stale (dead pid or unreadable payload): take the file
                # over atomically.  Renaming it to a per-pid claim name
                # lets at most one of several racing reclaimers win; an
                # unlink+recreate here would race — reclaimer B could
                # unlink the fresh lock reclaimer A just created and both
                # would end up "holding" it.
                claim = self._path.with_name(
                    f"{self._path.name}.reclaim.{os.getpid()}"
                )
                try:
                    os.rename(self._path, claim)
                except FileNotFoundError:
                    pass  # another reclaimer already claimed the stale file
                except OSError as error:
                    raise StoreError(
                        f"cannot reclaim stale store lock "
                        f"{str(self._path)!r}: {error}"
                    ) from error
                else:
                    claim.unlink(missing_ok=True)
                if not self._try_create():
                    raise StoreError(
                        f"store {str(self._path.parent)!r} was locked by "
                        "another writer while reclaiming a stale lock"
                    )
            _held_paths.add(key)
        self._held = True

    def release(self) -> None:
        """Drop the lock (idempotent; safe to call without holding it)."""
        if not self._held:
            return
        self._held = False
        key = str(self._path.resolve())
        with _registry_guard:
            _held_paths.discard(key)
        self._path.unlink(missing_ok=True)

    def _try_create(self) -> bool:
        """One exclusive-create attempt; False when the file already exists."""
        try:
            descriptor = os.open(
                self._path, os.O_CREAT | os.O_EXCL | os.O_WRONLY, 0o644
            )
        except FileExistsError:
            return False
        except OSError as error:
            raise StoreError(
                f"cannot create store lock {str(self._path)!r}: {error}"
            ) from error
        payload = {
            "pid": os.getpid(),
            "created": self._clock(),
            "host": socket.gethostname(),
        }
        with os.fdopen(descriptor, "w") as handle:
            json.dump(payload, handle)
            handle.write("\n")
        return True

    def _read_holder_pid(self) -> int | None:
        """Pid recorded in the current lock file (None = unreadable/gone)."""
        try:
            payload = json.loads(self._path.read_text())
            return int(payload["pid"])
        except (OSError, ValueError, TypeError, KeyError):
            return None


def _pid_alive(pid: int) -> bool:
    """Whether ``pid`` names a live process (permission-denied counts)."""
    if pid <= 0:
        return False
    try:
        os.kill(pid, 0)
    except ProcessLookupError:
        return False
    except PermissionError:
        return True
    except OSError:
        return False
    return True
