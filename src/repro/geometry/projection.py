"""Geodetic helpers: projecting GPS latitude/longitude onto a local plane.

The algorithms in this package operate on planar coordinates in metres, so
that an error bound ``zeta`` of, say, 40 m has its intended meaning.  GPS
trajectories (e.g. GeoLife ``.plt`` files) store WGS-84 latitude/longitude;
this module provides a simple local equirectangular projection which is
accurate to well below a metre over the extent of a single trajectory, plus
the haversine distance used for sanity checks.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

__all__ = ["EARTH_RADIUS_M", "LocalProjection", "haversine_distance"]

EARTH_RADIUS_M = 6_371_008.8
"""Mean Earth radius in metres (IUGG)."""


@dataclass(frozen=True, slots=True)
class LocalProjection:
    """Equirectangular projection around a reference latitude/longitude.

    Longitude differences are scaled by ``cos(reference latitude)`` so that x
    and y are both in metres.  Suitable for trajectory-scale extents (tens of
    kilometres); not suitable for continental-scale data.
    """

    ref_lat: float
    ref_lon: float

    @classmethod
    def for_origin(cls, lat: float, lon: float) -> "LocalProjection":
        """Projection centred at ``(lat, lon)`` in degrees."""
        return cls(ref_lat=lat, ref_lon=lon)

    @property
    def _cos_ref(self) -> float:
        return math.cos(math.radians(self.ref_lat))

    def to_xy(self, lat: float, lon: float) -> tuple[float, float]:
        """Project a single latitude/longitude pair to local metres."""
        x = math.radians(lon - self.ref_lon) * EARTH_RADIUS_M * self._cos_ref
        y = math.radians(lat - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def to_latlon(self, x: float, y: float) -> tuple[float, float]:
        """Inverse projection from local metres back to latitude/longitude."""
        lat = self.ref_lat + math.degrees(y / EARTH_RADIUS_M)
        cos_ref = self._cos_ref
        if cos_ref == 0.0:
            lon = self.ref_lon
        else:
            lon = self.ref_lon + math.degrees(x / (EARTH_RADIUS_M * cos_ref))
        return lat, lon

    def arrays_to_xy(self, lats: np.ndarray, lons: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised projection of latitude/longitude arrays."""
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        x = np.radians(lons - self.ref_lon) * EARTH_RADIUS_M * self._cos_ref
        y = np.radians(lats - self.ref_lat) * EARTH_RADIUS_M
        return x, y

    def arrays_to_latlon(self, xs: np.ndarray, ys: np.ndarray) -> tuple[np.ndarray, np.ndarray]:
        """Vectorised inverse projection."""
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        lats = self.ref_lat + np.degrees(ys / EARTH_RADIUS_M)
        cos_ref = self._cos_ref
        if cos_ref == 0.0:
            lons = np.full_like(xs, self.ref_lon)
        else:
            lons = self.ref_lon + np.degrees(xs / (EARTH_RADIUS_M * cos_ref))
        return lats, lons


def haversine_distance(lat1: float, lon1: float, lat2: float, lon2: float) -> float:
    """Great-circle distance in metres between two latitude/longitude pairs."""
    phi1 = math.radians(lat1)
    phi2 = math.radians(lat2)
    dphi = math.radians(lat2 - lat1)
    dlambda = math.radians(lon2 - lon1)
    a = math.sin(dphi / 2.0) ** 2 + math.cos(phi1) * math.cos(phi2) * math.sin(dlambda / 2.0) ** 2
    return 2.0 * EARTH_RADIUS_M * math.asin(min(1.0, math.sqrt(a)))
