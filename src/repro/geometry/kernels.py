"""Vectorized structure-of-arrays geometry kernels.

This module is the single home of the hot geometry primitives used by the
batch algorithms and the metrics:

* **PED** — perpendicular Euclidean distance of many points to the infinite
  line through a chord (:func:`ped_to_chord`) or to the closed segment
  (:func:`ped_to_segment`);
* **SED** — synchronised Euclidean distance of many points to a chord
  travelled at constant speed (:func:`sed_to_chord`);
* **anchored PED** — distance to the line through an anchor with a given
  direction, the form used by OPERB's fitting function
  (:func:`anchored_ped`);
* **angular range intersection** — overlap tests between arcs on the unit
  circle (:func:`angular_ranges_overlap`, :func:`angular_range_intersection`):
  the batched form of direction gates such as OPERB-A's patching condition 3
  (whose streaming path keeps its cheap two-line scalar check), for
  fleet-level analyses over many segment pairs at once.

Every array kernel has two implementations selected by a process-wide
*backend* flag: a NumPy structure-of-arrays implementation operating on whole
coordinate arrays at once, and a scalar per-point fallback that performs the
exact same floating-point operations with :mod:`math` one point at a time.
The scalar backend exists so results can be validated as (near) bit-identical
to the streaming one-point code paths, which always use the scalar point
kernels (:func:`ped_point_to_chord`, :func:`sed_point`,
:func:`anchored_ped_point`) regardless of the backend.

The flag is owned here (the geometry layer has no upward dependencies) and
re-exported by :mod:`repro.core.config` as the user-facing switch::

    from repro.core.config import kernel_backend

    with kernel_backend("scalar"):
        representation = douglas_peucker(trajectory, 40.0)

Reductions (:func:`max_ped_to_chord`, :func:`all_within_chord`, ...) are
fused into the kernels so the vectorized path performs a single NumPy pass
without materialising intermediate Python objects.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator

import numpy as np

__all__ = [
    "KERNEL_BACKENDS",
    "get_kernel_backend",
    "set_kernel_backend",
    "use_vectorized_kernels",
    "kernel_backend",
    "ped_point_to_chord",
    "ped_point_to_segment",
    "sed_point",
    "anchored_ped_point",
    "ped_to_chord",
    "ped_to_segment",
    "sed_to_chord",
    "anchored_ped",
    "max_ped_to_chord",
    "max_sed_to_chord",
    "all_within_chord",
    "all_within_sed",
    "direction_angles",
    "angular_ranges_overlap",
    "angular_range_intersection",
]

TWO_PI = 2.0 * math.pi

KERNEL_BACKENDS = ("vectorized", "scalar")
"""The recognised kernel backends, fastest first."""

_backend = "vectorized"


def get_kernel_backend() -> str:
    """The active kernel backend (``"vectorized"`` or ``"scalar"``)."""
    return _backend


def set_kernel_backend(backend: str) -> str:
    """Select the kernel backend process-wide; returns the previous backend."""
    global _backend
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    previous = _backend
    _backend = backend
    return previous


def use_vectorized_kernels() -> bool:
    """Whether the vectorized NumPy kernel implementations are active."""
    return _backend == "vectorized"


@contextmanager
def kernel_backend(backend: str) -> Iterator[str]:
    """Context manager scoping a kernel-backend selection.

    >>> with kernel_backend("scalar"):
    ...     distances = ped_to_chord(xs, ys, 0.0, 0.0, 1.0, 0.0)
    """
    previous = set_kernel_backend(backend)
    try:
        yield backend
    finally:
        set_kernel_backend(previous)


# ---------------------------------------------------------------------- #
# Scalar point kernels — the streaming one-point path
# ---------------------------------------------------------------------- #
def ped_point_to_chord(
    x: float, y: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """PED of one point to the infinite line through ``(a, b)``.

    Degenerates to the distance to ``a`` when the chord has zero length,
    matching the convention used throughout the package.
    """
    abx = bx - ax
    aby = by - ay
    norm = math.hypot(abx, aby)
    if norm == 0.0:
        return math.hypot(x - ax, y - ay)
    return abs(abx * (y - ay) - aby * (x - ax)) / norm


def ped_point_to_segment(
    x: float, y: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """PED of one point to the closed segment ``[a, b]``."""
    abx = bx - ax
    aby = by - ay
    apx = x - ax
    apy = y - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return math.hypot(apx, apy)
    u = (apx * abx + apy * aby) / denom
    if u <= 0.0:
        return math.hypot(apx, apy)
    if u >= 1.0:
        return math.hypot(x - bx, y - by)
    return math.hypot(x - (ax + u * abx), y - (ay + u * aby))


def sed_point(
    x: float,
    y: float,
    t: float,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
) -> float:
    """SED of one point w.r.t. the chord ``a -> b`` travelled at constant speed."""
    span = bt - at
    if span == 0.0:
        return math.hypot(x - ax, y - ay)
    ratio = (t - at) / span
    return math.hypot(x - (ax + (bx - ax) * ratio), y - (ay + (by - ay) * ratio))


def anchored_ped_point(x: float, y: float, ax: float, ay: float, theta: float) -> float:
    """PED of one point to the line through ``(ax, ay)`` with direction ``theta``.

    This is OPERB's fitting-function distance: the maintained segment is
    ``(Ps, |L|, L.theta)`` and the distance depends only on the anchor and
    the direction.
    """
    return abs(math.cos(theta) * (y - ay) - math.sin(theta) * (x - ax))


# ---------------------------------------------------------------------- #
# Array kernels — vectorized with scalar fallback
# ---------------------------------------------------------------------- #
def _as_float_array(values) -> np.ndarray:
    return np.asarray(values, dtype=float)


def ped_to_chord(xs, ys, ax: float, ay: float, bx: float, by: float) -> np.ndarray:
    """PED of many points to the infinite line through ``(a, b)``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels():
        abx = bx - ax
        aby = by - ay
        norm = math.hypot(abx, aby)
        if norm == 0.0:
            return np.hypot(xs - ax, ys - ay)
        return np.abs(abx * (ys - ay) - aby * (xs - ax)) / norm
    return np.array(
        [ped_point_to_chord(float(x), float(y), ax, ay, bx, by) for x, y in zip(xs, ys)],
        dtype=float,
    )


def ped_to_segment(xs, ys, ax: float, ay: float, bx: float, by: float) -> np.ndarray:
    """PED of many points to the closed segment ``[a, b]``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels():
        abx = bx - ax
        aby = by - ay
        denom = abx * abx + aby * aby
        if denom == 0.0:
            return np.hypot(xs - ax, ys - ay)
        u = ((xs - ax) * abx + (ys - ay) * aby) / denom
        u = np.clip(u, 0.0, 1.0)
        return np.hypot(xs - (ax + u * abx), ys - (ay + u * aby))
    return np.array(
        [
            ped_point_to_segment(float(x), float(y), ax, ay, bx, by)
            for x, y in zip(xs, ys)
        ],
        dtype=float,
    )


def sed_to_chord(
    xs,
    ys,
    ts,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
) -> np.ndarray:
    """SED of many points w.r.t. the chord ``a -> b`` travelled at constant speed."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if use_vectorized_kernels():
        span = bt - at
        if span == 0.0:
            return np.hypot(xs - ax, ys - ay)
        # A subnormal span overflows the ratio to inf, and inf * 0 chords
        # produce nan — exactly the IEEE results the scalar fallback yields
        # silently; silence numpy's chatter rather than diverge from it.
        with np.errstate(over="ignore", invalid="ignore"):
            ratio = (ts - at) / span
            return np.hypot(xs - (ax + (bx - ax) * ratio), ys - (ay + (by - ay) * ratio))
    return np.array(
        [
            sed_point(float(x), float(y), float(t), ax, ay, at, bx, by, bt)
            for x, y, t in zip(xs, ys, ts)
        ],
        dtype=float,
    )


def anchored_ped(xs, ys, ax: float, ay: float, theta: float) -> np.ndarray:
    """PED of many points to the line through ``(ax, ay)`` with direction ``theta``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels():
        return np.abs(math.cos(theta) * (ys - ay) - math.sin(theta) * (xs - ax))
    return np.array(
        [anchored_ped_point(float(x), float(y), ax, ay, theta) for x, y in zip(xs, ys)],
        dtype=float,
    )


# ---------------------------------------------------------------------- #
# Fused reductions
# ---------------------------------------------------------------------- #
def max_ped_to_chord(
    xs, ys, ax: float, ay: float, bx: float, by: float
) -> tuple[float, int]:
    """Maximum PED to the chord and the (first) arg-max offset.

    Returns ``(0.0, -1)`` for empty inputs.  The arg-max ties resolve to the
    first occurrence in both backends, mirroring ``np.argmax``.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return 0.0, -1
    if use_vectorized_kernels():
        distances = ped_to_chord(xs, ys, ax, ay, bx, by)
        offset = int(np.argmax(distances))
        return float(distances[offset]), offset
    best = -math.inf
    best_offset = 0
    for offset in range(xs.shape[0]):
        d = ped_point_to_chord(float(xs[offset]), float(ys[offset]), ax, ay, bx, by)
        if d > best:
            best = d
            best_offset = offset
    return best, best_offset


def max_sed_to_chord(
    xs,
    ys,
    ts,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
) -> tuple[float, int]:
    """Maximum SED to the chord and the (first) arg-max offset."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if xs.size == 0:
        return 0.0, -1
    if use_vectorized_kernels():
        distances = sed_to_chord(xs, ys, ts, ax, ay, at, bx, by, bt)
        offset = int(np.argmax(distances))
        return float(distances[offset]), offset
    best = -math.inf
    best_offset = 0
    for offset in range(xs.shape[0]):
        d = sed_point(
            float(xs[offset]), float(ys[offset]), float(ts[offset]), ax, ay, at, bx, by, bt
        )
        if d > best:
            best = d
            best_offset = offset
    return best, best_offset


def all_within_chord(
    xs, ys, ax: float, ay: float, bx: float, by: float, epsilon: float
) -> bool:
    """Whether every point's PED to the chord is at most ``epsilon``.

    The scalar backend short-circuits on the first violation (the behaviour
    of a per-point loop); the vectorized backend checks the whole array in
    one pass.  Both return the same boolean.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return True
    if use_vectorized_kernels():
        return bool(np.all(ped_to_chord(xs, ys, ax, ay, bx, by) <= epsilon))
    for offset in range(xs.shape[0]):
        if ped_point_to_chord(float(xs[offset]), float(ys[offset]), ax, ay, bx, by) > epsilon:
            return False
    return True


def all_within_sed(
    xs,
    ys,
    ts,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
    epsilon: float,
) -> bool:
    """Whether every point's SED to the chord is at most ``epsilon``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if xs.size == 0:
        return True
    if use_vectorized_kernels():
        return bool(np.all(sed_to_chord(xs, ys, ts, ax, ay, at, bx, by, bt) <= epsilon))
    for offset in range(xs.shape[0]):
        d = sed_point(
            float(xs[offset]), float(ys[offset]), float(ts[offset]), ax, ay, at, bx, by, bt
        )
        if d > epsilon:
            return False
    return True


# ---------------------------------------------------------------------- #
# Angular kernels
# ---------------------------------------------------------------------- #
def direction_angles(dxs, dys) -> np.ndarray:
    """Directions of many vectors with the x-axis, normalized to ``[0, 2*pi)``.

    Zero vectors map to ``0.0`` by convention, matching
    :func:`repro.geometry.angles.angle_of`.
    """
    dxs = _as_float_array(dxs)
    dys = _as_float_array(dys)
    if use_vectorized_kernels():
        angles = np.arctan2(dys, dxs)
        angles = np.where(angles < 0.0, angles + TWO_PI, angles)
        # A tiny negative angle + 2*pi rounds to exactly 2*pi; fold it back
        # so the result stays in [0, 2*pi), as normalize_angle does.
        angles = np.where(angles >= TWO_PI, angles - TWO_PI, angles)
        return np.where((dxs == 0.0) & (dys == 0.0), 0.0, angles)
    out = np.empty(dxs.shape[0], dtype=float)
    for offset in range(dxs.shape[0]):
        dx = float(dxs[offset])
        dy = float(dys[offset])
        if dx == 0.0 and dy == 0.0:
            out[offset] = 0.0
            continue
        angle = math.atan2(dy, dx)
        if angle < 0.0:
            angle += TWO_PI
        if angle >= TWO_PI:
            angle -= TWO_PI
        out[offset] = angle
    return out


def _overlap_scalar(
    start_a: float, extent_a: float, start_b: float, extent_b: float
) -> bool:
    gap_ab = math.fmod(start_b - start_a, TWO_PI)
    if gap_ab < 0.0:
        gap_ab += TWO_PI
    if gap_ab <= extent_a:
        return True
    gap_ba = math.fmod(start_a - start_b, TWO_PI)
    if gap_ba < 0.0:
        gap_ba += TWO_PI
    return gap_ba <= extent_b


def angular_ranges_overlap(start_a, extent_a, start_b, extent_b):
    """Whether the arcs ``[start, start + extent]`` intersect on the circle.

    Arcs are described by a start direction (radians, any finite value) and a
    non-negative counter-clockwise ``extent`` in ``[0, 2*pi]``.  Accepts
    scalars or equal-length arrays (broadcast element-wise); returns a bool
    for scalar inputs and a boolean array otherwise.

    A zero-extent arc is a single direction, so
    ``angular_ranges_overlap(theta - w, 2 * w, phi, 0.0)`` expresses the
    turn-angle gate "``phi`` within ``w`` of ``theta``" (the batched form of
    OPERB-A's patching condition 3).
    """
    scalar_input = np.isscalar(start_a) and np.isscalar(start_b)
    start_a, extent_a, start_b, extent_b = np.broadcast_arrays(
        _as_float_array(start_a),
        _as_float_array(extent_a),
        _as_float_array(start_b),
        _as_float_array(extent_b),
    )
    if use_vectorized_kernels():
        gap_ab = np.mod(start_b - start_a, TWO_PI)
        gap_ba = np.mod(start_a - start_b, TWO_PI)
        overlap = (gap_ab <= extent_a) | (gap_ba <= extent_b)
    else:
        flat = [
            _overlap_scalar(
                float(start_a.flat[i]),
                float(extent_a.flat[i]),
                float(start_b.flat[i]),
                float(extent_b.flat[i]),
            )
            for i in range(start_a.size)
        ]
        overlap = np.array(flat, dtype=bool).reshape(start_a.shape)
    if scalar_input:
        return bool(overlap.reshape(-1)[0])
    return overlap


def angular_range_intersection(start_a, extent_a, start_b, extent_b):
    """Extent of the intersection of two arcs, element-wise.

    Returns the length (radians, ``>= 0``) of the overlap between the arcs
    ``[start_a, start_a + extent_a]`` and ``[start_b, start_b + extent_b]``;
    ``0.0`` where they only touch in a single direction and negative-free.
    When arcs intersect in two disjoint pieces (possible on a circle), the
    total overlapped length is returned.  Scalar inputs yield a float.
    """
    scalar_input = np.isscalar(start_a) and np.isscalar(start_b)
    start_a, extent_a, start_b, extent_b = np.broadcast_arrays(
        _as_float_array(start_a),
        _as_float_array(extent_a),
        _as_float_array(start_b),
        _as_float_array(extent_b),
    )
    gap_ab = np.mod(start_b - start_a, TWO_PI)
    gap_ba = np.mod(start_a - start_b, TWO_PI)
    # Overlap of B's start inside A, plus overlap of A's start inside B.
    piece_b_in_a = np.clip(np.minimum(extent_a - gap_ab, extent_b), 0.0, None)
    piece_a_in_b = np.clip(np.minimum(extent_b - gap_ba, extent_a), 0.0, None)
    # When the arcs start in the same direction the two pieces are the same
    # interval; count it once.
    same_start = gap_ab == 0.0
    total = np.where(
        same_start, np.minimum(extent_a, extent_b), piece_b_in_a + piece_a_in_b
    )
    total = np.minimum(total, np.minimum(extent_a, extent_b))
    if scalar_input:
        return float(total.reshape(-1)[0])
    return total
