"""Vectorized structure-of-arrays geometry kernels.

This module is the single home of the hot geometry primitives used by the
batch algorithms and the metrics:

* **PED** — perpendicular Euclidean distance of many points to the infinite
  line through a chord (:func:`ped_to_chord`) or to the closed segment
  (:func:`ped_to_segment`);
* **SED** — synchronised Euclidean distance of many points to a chord
  travelled at constant speed (:func:`sed_to_chord`);
* **anchored PED** — distance to the line through an anchor with a given
  direction, the form used by OPERB's fitting function
  (:func:`anchored_ped`);
* **angular range intersection** — overlap tests between arcs on the unit
  circle (:func:`angular_ranges_overlap`, :func:`angular_range_intersection`):
  the batched form of direction gates such as OPERB-A's patching condition 3
  (whose streaming path keeps its cheap two-line scalar check), for
  fleet-level analyses over many segment pairs at once.

Every array kernel has two implementations selected by a process-wide
*backend* flag: a NumPy structure-of-arrays implementation operating on whole
coordinate arrays at once, and a scalar per-point fallback that performs the
exact same floating-point operations with :mod:`math` one point at a time.
The scalar backend exists so results can be validated as (near) bit-identical
to the streaming one-point code paths, which always use the scalar point
kernels (:func:`ped_point_to_chord`, :func:`sed_point`,
:func:`anchored_ped_point`) regardless of the backend.

The flag is owned here (the geometry layer has no upward dependencies) and
re-exported by :mod:`repro.core.config` as the user-facing switch::

    from repro.core.config import kernel_backend

    with kernel_backend("scalar"):
        representation = douglas_peucker(trajectory, 40.0)

Reductions (:func:`max_ped_to_chord`, :func:`all_within_chord`, ...) are
fused into the kernels so the vectorized path performs a single NumPy pass
without materialising intermediate Python objects.

The *prefix kernels* (:func:`prefix_within_radius`,
:func:`operb_fitting_prefix`, :func:`chord_prefix_within`,
:func:`prediction_prefix_within`) power the block-based streaming ingest:
each answers "how many leading points of this block does the current
simplifier state absorb without changing?" in one array pass.  Their
floating-point operations are chosen to be *bit-identical* to the scalar
per-point streaming code (``sqrt(dx*dx + dy*dy)`` instead of ``hypot``,
cross/dot sign tests instead of ``atan2`` comparisons), which is what lets
``push_block`` produce byte-identical segments and checkpoints to per-point
``push`` — the scalar backend of each prefix kernel performs the identical
per-point arithmetic and serves as the equivalence oracle.
"""

from __future__ import annotations

import math
from contextlib import contextmanager
from typing import Iterator, Sequence

import numpy as np

from .angles import normalize_angle

__all__ = [
    "KERNEL_BACKENDS",
    "get_kernel_backend",
    "set_kernel_backend",
    "use_vectorized_kernels",
    "kernel_backend",
    "ped_point_to_chord",
    "ped_point_to_segment",
    "sed_point",
    "anchored_ped_point",
    "prediction_error_point",
    "radial_length_point",
    "rotation_sign_components",
    "zero_vector_rotation_sign",
    "ped_to_chord",
    "ped_to_segment",
    "sed_to_chord",
    "anchored_ped",
    "max_ped_to_chord",
    "max_sed_to_chord",
    "all_within_chord",
    "all_within_sed",
    "prefix_within_radius",
    "operb_fitting_prefix",
    "chord_prefix_within",
    "prediction_prefix_within",
    "quadrant_corner_screen",
    "direction_angles",
    "angular_ranges_overlap",
    "angular_range_intersection",
]

TWO_PI = 2.0 * math.pi

KERNEL_BACKENDS = ("vectorized", "scalar")
"""The recognised kernel backends, fastest first."""

_backend = "vectorized"


def get_kernel_backend() -> str:
    """The active kernel backend (``"vectorized"`` or ``"scalar"``)."""
    return _backend


def set_kernel_backend(backend: str) -> str:
    """Select the kernel backend process-wide; returns the previous backend."""
    global _backend
    if backend not in KERNEL_BACKENDS:
        raise ValueError(
            f"unknown kernel backend {backend!r}; expected one of {KERNEL_BACKENDS}"
        )
    previous = _backend
    _backend = backend
    return previous


def use_vectorized_kernels() -> bool:
    """Whether the vectorized NumPy kernel implementations are active."""
    return _backend == "vectorized"


@contextmanager
def kernel_backend(backend: str) -> Iterator[str]:
    """Context manager scoping a kernel-backend selection.

    >>> with kernel_backend("scalar"):
    ...     distances = ped_to_chord(xs, ys, 0.0, 0.0, 1.0, 0.0)
    """
    previous = set_kernel_backend(backend)
    try:
        yield backend
    finally:
        set_kernel_backend(previous)


# ---------------------------------------------------------------------- #
# Scalar point kernels — the streaming one-point path
# ---------------------------------------------------------------------- #
def ped_point_to_chord(
    x: float, y: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """PED of one point to the infinite line through ``(a, b)``.

    Degenerates to the distance to ``a`` when the chord has zero length,
    matching the convention used throughout the package.
    """
    abx = bx - ax
    aby = by - ay
    norm = math.hypot(abx, aby)
    if norm == 0.0:
        return math.hypot(x - ax, y - ay)
    return abs(abx * (y - ay) - aby * (x - ax)) / norm


def ped_point_to_segment(
    x: float, y: float, ax: float, ay: float, bx: float, by: float
) -> float:
    """PED of one point to the closed segment ``[a, b]``."""
    abx = bx - ax
    aby = by - ay
    apx = x - ax
    apy = y - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return math.hypot(apx, apy)
    u = (apx * abx + apy * aby) / denom
    if u <= 0.0:
        return math.hypot(apx, apy)
    if u >= 1.0:
        return math.hypot(x - bx, y - by)
    return math.hypot(x - (ax + u * abx), y - (ay + u * aby))


def sed_point(
    x: float,
    y: float,
    t: float,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
) -> float:
    """SED of one point w.r.t. the chord ``a -> b`` travelled at constant speed."""
    span = bt - at
    if span == 0.0:
        return math.hypot(x - ax, y - ay)
    ratio = (t - at) / span
    return math.hypot(x - (ax + (bx - ax) * ratio), y - (ay + (by - ay) * ratio))


def anchored_ped_point(x: float, y: float, ax: float, ay: float, theta: float) -> float:
    """PED of one point to the line through ``(ax, ay)`` with direction ``theta``.

    This is OPERB's fitting-function distance: the maintained segment is
    ``(Ps, |L|, L.theta)`` and the distance depends only on the anchor and
    the direction.
    """
    return abs(math.cos(theta) * (y - ay) - math.sin(theta) * (x - ax))


def radial_length_point(dx: float, dy: float) -> float:
    """Length of the vector ``(dx, dy)`` as ``sqrt(dx*dx + dy*dy)``.

    Deliberately *not* ``math.hypot``: NumPy's and libm's ``hypot`` may
    differ from CPython's in the last ulp, whereas ``sqrt`` of the explicit
    dot product performs the same IEEE operations scalar and vectorized.
    Every streaming radial-distance check routes through this form so the
    block kernels reproduce the per-point decisions bit for bit.
    """
    return math.sqrt(dx * dx + dy * dy)


def prediction_error_point(
    x: float, y: float, t: float, x0: float, y0: float, t0: float, vx: float, vy: float
) -> float:
    """Dead-reckoning prediction error of one fix.

    Distance between the observed position and the position linearly
    extrapolated from ``(x0, y0, t0)`` with velocity ``(vx, vy)``; uses the
    same operation order as the vectorized :func:`prediction_prefix_within`.
    """
    dt = t - t0
    ex = x - (x0 + vx * dt)
    ey = y - (y0 + vy * dt)
    return math.sqrt(ex * ex + ey * ey)


def zero_vector_rotation_sign(theta: float) -> int:
    """Rotation sign of a zero radial vector against direction ``theta``.

    A point that coincides with the anchor has the conventional direction
    ``0.0``; this replicates ``rotation_sign(0.0, theta)`` from the fitting
    layer without the upward import.
    """
    delta = normalize_angle(normalize_angle(0.0) - normalize_angle(theta))
    half_pi = 0.5 * math.pi
    if 0.0 <= delta <= half_pi or math.pi <= delta < 1.5 * math.pi:
        return 1
    return -1


def rotation_sign_components(
    cross: float, dot: float, dx: float, dy: float, theta: float
) -> int:
    """The fitting function's rotation sign from cross/dot components.

    ``cross``/``dot`` are the components of the radial vector ``(dx, dy)``
    perpendicular and parallel to the fitted direction ``theta``
    (``cross = cos(theta)*dy - sin(theta)*dx``, ``dot = cos(theta)*dx +
    sin(theta)*dy``).  Sign-testing them is equivalent to classifying the
    included angle ``delta = angle(R) - theta`` into the paper's quadrant
    rule (+1 for ``delta`` in ``[0, pi/2] U [pi, 3*pi/2)``), but avoids
    ``atan2`` entirely — which makes the decision bit-identical between the
    scalar streaming path and the vectorized block kernels.  A zero radial
    vector falls back to the ``angle(R) = 0`` convention.
    """
    if dx == 0.0 and dy == 0.0:
        return zero_vector_rotation_sign(theta)
    if dot > 0.0:
        return 1 if cross >= 0.0 else -1
    if dot < 0.0:
        return 1 if cross <= 0.0 else -1
    return 1 if cross > 0.0 else -1


# ---------------------------------------------------------------------- #
# Array kernels — vectorized with scalar fallback
# ---------------------------------------------------------------------- #
def _as_float_array(values) -> np.ndarray:
    return np.asarray(values, dtype=float)


def ped_to_chord(xs, ys, ax: float, ay: float, bx: float, by: float) -> np.ndarray:
    """PED of many points to the infinite line through ``(a, b)``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels():
        abx = bx - ax
        aby = by - ay
        norm = math.hypot(abx, aby)
        if norm == 0.0:
            return np.hypot(xs - ax, ys - ay)
        return np.abs(abx * (ys - ay) - aby * (xs - ax)) / norm
    return np.array(
        [ped_point_to_chord(float(x), float(y), ax, ay, bx, by) for x, y in zip(xs, ys)],
        dtype=float,
    )


def ped_to_segment(xs, ys, ax: float, ay: float, bx: float, by: float) -> np.ndarray:
    """PED of many points to the closed segment ``[a, b]``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels():
        abx = bx - ax
        aby = by - ay
        denom = abx * abx + aby * aby
        if denom == 0.0:
            return np.hypot(xs - ax, ys - ay)
        u = ((xs - ax) * abx + (ys - ay) * aby) / denom
        u = np.clip(u, 0.0, 1.0)
        return np.hypot(xs - (ax + u * abx), ys - (ay + u * aby))
    return np.array(
        [
            ped_point_to_segment(float(x), float(y), ax, ay, bx, by)
            for x, y in zip(xs, ys)
        ],
        dtype=float,
    )


def sed_to_chord(
    xs,
    ys,
    ts,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
) -> np.ndarray:
    """SED of many points w.r.t. the chord ``a -> b`` travelled at constant speed."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if use_vectorized_kernels():
        span = bt - at
        if span == 0.0:
            return np.hypot(xs - ax, ys - ay)
        # A subnormal span overflows the ratio to inf, and inf * 0 chords
        # produce nan — exactly the IEEE results the scalar fallback yields
        # silently; silence numpy's chatter rather than diverge from it.
        with np.errstate(over="ignore", invalid="ignore"):
            ratio = (ts - at) / span
            return np.hypot(xs - (ax + (bx - ax) * ratio), ys - (ay + (by - ay) * ratio))
    return np.array(
        [
            sed_point(float(x), float(y), float(t), ax, ay, at, bx, by, bt)
            for x, y, t in zip(xs, ys, ts)
        ],
        dtype=float,
    )


def anchored_ped(xs, ys, ax: float, ay: float, theta: float) -> np.ndarray:
    """PED of many points to the line through ``(ax, ay)`` with direction ``theta``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels():
        return np.abs(math.cos(theta) * (ys - ay) - math.sin(theta) * (xs - ax))
    return np.array(
        [anchored_ped_point(float(x), float(y), ax, ay, theta) for x, y in zip(xs, ys)],
        dtype=float,
    )


# ---------------------------------------------------------------------- #
# Fused reductions
# ---------------------------------------------------------------------- #
def max_ped_to_chord(
    xs, ys, ax: float, ay: float, bx: float, by: float
) -> tuple[float, int]:
    """Maximum PED to the chord and the (first) arg-max offset.

    Returns ``(0.0, -1)`` for empty inputs.  The arg-max ties resolve to the
    first occurrence in both backends, mirroring ``np.argmax``.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return 0.0, -1
    if use_vectorized_kernels():
        distances = ped_to_chord(xs, ys, ax, ay, bx, by)
        offset = int(np.argmax(distances))
        return float(distances[offset]), offset
    best = -math.inf
    best_offset = 0
    for offset in range(xs.shape[0]):
        d = ped_point_to_chord(float(xs[offset]), float(ys[offset]), ax, ay, bx, by)
        if d > best:
            best = d
            best_offset = offset
    return best, best_offset


def max_sed_to_chord(
    xs,
    ys,
    ts,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
) -> tuple[float, int]:
    """Maximum SED to the chord and the (first) arg-max offset."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if xs.size == 0:
        return 0.0, -1
    if use_vectorized_kernels():
        distances = sed_to_chord(xs, ys, ts, ax, ay, at, bx, by, bt)
        offset = int(np.argmax(distances))
        return float(distances[offset]), offset
    best = -math.inf
    best_offset = 0
    for offset in range(xs.shape[0]):
        d = sed_point(
            float(xs[offset]), float(ys[offset]), float(ts[offset]), ax, ay, at, bx, by, bt
        )
        if d > best:
            best = d
            best_offset = offset
    return best, best_offset


def all_within_chord(
    xs, ys, ax: float, ay: float, bx: float, by: float, epsilon: float
) -> bool:
    """Whether every point's PED to the chord is at most ``epsilon``.

    The scalar backend short-circuits on the first violation (the behaviour
    of a per-point loop); the vectorized backend checks the whole array in
    one pass.  Both return the same boolean.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return True
    if use_vectorized_kernels():
        return bool(np.all(ped_to_chord(xs, ys, ax, ay, bx, by) <= epsilon))
    for offset in range(xs.shape[0]):
        if ped_point_to_chord(float(xs[offset]), float(ys[offset]), ax, ay, bx, by) > epsilon:
            return False
    return True


def all_within_sed(
    xs,
    ys,
    ts,
    ax: float,
    ay: float,
    at: float,
    bx: float,
    by: float,
    bt: float,
    epsilon: float,
) -> bool:
    """Whether every point's SED to the chord is at most ``epsilon``."""
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if xs.size == 0:
        return True
    if use_vectorized_kernels():
        return bool(np.all(sed_to_chord(xs, ys, ts, ax, ay, at, bx, by, bt) <= epsilon))
    for offset in range(xs.shape[0]):
        d = sed_point(
            float(xs[offset]), float(ys[offset]), float(ts[offset]), ax, ay, at, bx, by, bt
        )
        if d > epsilon:
            return False
    return True


# ---------------------------------------------------------------------- #
# Streaming prefix kernels — the block-ingest hot path
# ---------------------------------------------------------------------- #
BLOCK_LOOKAHEAD = 1024
"""Maximum points a prefix-kernel probe examines at once.

Array element cost is tiny next to the per-call dispatch overhead, so
probes look far ahead — but not unboundedly, or a run-poor stream would pay
O(block²) element work re-scanning the remainder after every boundary.
"""

BLOCK_MIN_RUN = 8
"""Run length at which one prefix-kernel call beats per-point Python.

Below this, NumPy's per-call overhead exceeds the scalar loop it replaces;
probes that find shorter runs trigger the scalar backoff.
"""

BLOCK_PROBE_BACKOFF_MAX = 256
"""Cap on the scalar backoff after repeated unprofitable probes.

On a run-poor stream (sparse sampling relative to epsilon) the block path
doubles its probe spacing up to this cap, bounding its overhead versus
per-point ingest to one wasted kernel call per this many points while still
rediscovering dense phases (e.g. GeoLife's walking legs) quickly.
"""


def _prefix_from_mask(blocked: np.ndarray) -> int:
    """Index of the first True in ``blocked``, or its length when all False."""
    if not blocked.any():
        return int(blocked.shape[0])
    return int(np.argmax(blocked))


def prefix_within_radius(xs, ys, ax: float, ay: float, radius: float) -> int:
    """Length of the leading run of points within ``radius`` of the anchor.

    The radial length is ``sqrt(dx*dx + dy*dy)`` (see
    :func:`radial_length_point`); a point at exactly ``radius`` counts as
    within.  This is OPERB's pre-direction phase: points this close to the
    anchor are absorbed without fixing a segment direction.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return 0
    if use_vectorized_kernels():
        dxs = xs - ax
        dys = ys - ay
        with np.errstate(over="ignore", invalid="ignore"):
            lengths = np.sqrt(dxs * dxs + dys * dys)
        return _prefix_from_mask(lengths > radius)
    for offset in range(xs.shape[0]):
        if radial_length_point(float(xs[offset]) - ax, float(ys[offset]) - ay) > radius:
            return offset
    return int(xs.shape[0])


def operb_fitting_prefix(
    xs,
    ys,
    ax: float,
    ay: float,
    theta: float,
    last_theta: float,
    length: float,
    epsilon: float,
    quarter_epsilon: float,
    half_epsilon: float,
    two_sided: bool,
    d_plus: float,
    d_minus: float,
) -> tuple[int, float, float]:
    """Longest inactive-absorbable prefix for OPERB's fitting state.

    A point of the prefix is absorbed when, against the fitted line
    ``(anchor, theta, length)``, it is (a) not active
    (``r_len - length <= quarter_epsilon``), (b) within the deviation budget
    (two-sided ``d+ + d- <= epsilon`` or plain ``d <= half_epsilon``), and
    (c) within ``epsilon`` of the last-active line ``last_theta``.  Returns
    ``(count, new_d_plus, new_d_minus)`` — the run length and the one-sided
    deviation maxima after recording every absorbed point.  The first point
    that fails any condition is *not* classified here; the caller replays it
    through the scalar ``observe`` (which performs the identical arithmetic)
    to decide active versus violation.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return 0, d_plus, d_minus
    cos_t = math.cos(theta)
    sin_t = math.sin(theta)
    cos_l = math.cos(last_theta)
    sin_l = math.sin(last_theta)
    if use_vectorized_kernels():
        dxs = xs - ax
        dys = ys - ay
        with np.errstate(over="ignore", invalid="ignore"):
            r_len = np.sqrt(dxs * dxs + dys * dys)
            cross = cos_t * dys - sin_t * dxs
            dot = cos_t * dxs + sin_t * dys
            deviation = np.abs(cross)
            active = (r_len - length) > quarter_epsilon
            positive = np.where(
                dot > 0.0, cross >= 0.0, np.where(dot < 0.0, cross <= 0.0, cross > 0.0)
            )
            zero = (dxs == 0.0) & (dys == 0.0)
            if zero.any():
                positive = np.where(zero, zero_vector_rotation_sign(theta) > 0, positive)
            plus_run = np.maximum(
                np.maximum.accumulate(np.where(positive, deviation, -math.inf)), d_plus
            )
            minus_run = np.maximum(
                np.maximum.accumulate(np.where(positive, -math.inf, deviation)), d_minus
            )
            if two_sided:
                acceptable = (plus_run + minus_run) <= epsilon
            else:
                acceptable = deviation <= half_epsilon
            last_deviation = np.abs(cos_l * dys - sin_l * dxs)
            blocked = active | ~acceptable | (last_deviation > epsilon)
        count = _prefix_from_mask(blocked)
        if count == 0:
            return 0, d_plus, d_minus
        return count, float(plus_run[count - 1]), float(minus_run[count - 1])
    plus = d_plus
    minus = d_minus
    for offset in range(xs.shape[0]):
        dx = float(xs[offset]) - ax
        dy = float(ys[offset]) - ay
        r_len = radial_length_point(dx, dy)
        if (r_len - length) > quarter_epsilon:
            return offset, plus, minus
        cross = cos_t * dy - sin_t * dx
        deviation = abs(cross)
        sign = rotation_sign_components(cross, cos_t * dx + sin_t * dy, dx, dy, theta)
        if two_sided:
            candidate_plus = max(plus, deviation) if sign > 0 else plus
            candidate_minus = max(minus, deviation) if sign <= 0 else minus
            if candidate_plus + candidate_minus > epsilon:
                return offset, plus, minus
        elif deviation > half_epsilon:
            return offset, plus, minus
        if abs(cos_l * dy - sin_l * dx) > epsilon:
            return offset, plus, minus
        if sign > 0:
            if deviation > plus:
                plus = deviation
        elif deviation > minus:
            minus = deviation
    return int(xs.shape[0]), plus, minus


def chord_prefix_within(
    xs, ys, ax: float, ay: float, bx: float, by: float, epsilon: float
) -> int:
    """Length of the leading run whose PED to the chord is at most ``epsilon``.

    The absorption test of OPERB's optimisation 5: trailing points within
    ``epsilon`` of an already-finalised segment are absorbed into it.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if xs.size == 0:
        return 0
    abx = bx - ax
    aby = by - ay
    norm = math.hypot(abx, aby)
    # A zero-length chord degenerates to the distance to its start point,
    # which the scalar oracle computes with math.hypot — np.hypot may differ
    # in the last ulp, so the degenerate case stays on the scalar loop.
    if use_vectorized_kernels() and norm != 0.0:
        with np.errstate(over="ignore", invalid="ignore"):
            distances = np.abs(abx * (ys - ay) - aby * (xs - ax)) / norm
        return _prefix_from_mask(distances > epsilon)
    for offset in range(xs.shape[0]):
        if ped_point_to_chord(float(xs[offset]), float(ys[offset]), ax, ay, bx, by) > epsilon:
            return offset
    return int(xs.shape[0])


def prediction_prefix_within(
    xs,
    ys,
    ts,
    x0: float,
    y0: float,
    t0: float,
    vx: float,
    vy: float,
    epsilon: float,
) -> int:
    """Length of the leading run whose dead-reckoning error is within bound.

    Errors are measured against the position extrapolated from
    ``(x0, y0, t0)`` with velocity ``(vx, vy)`` — the sender-side prediction
    of the dead-reckoning scheme (see :func:`prediction_error_point`).
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    ts = _as_float_array(ts)
    if xs.size == 0:
        return 0
    if use_vectorized_kernels():
        with np.errstate(over="ignore", invalid="ignore"):
            dts = ts - t0
            exs = xs - (x0 + vx * dts)
            eys = ys - (y0 + vy * dts)
            errors = np.sqrt(exs * exs + eys * eys)
        return _prefix_from_mask(errors > epsilon)
    for offset in range(xs.shape[0]):
        error = prediction_error_point(
            float(xs[offset]), float(ys[offset]), float(ts[offset]), x0, y0, t0, vx, vy
        )
        if error > epsilon:
            return offset
    return int(xs.shape[0])


def quadrant_corner_screen(
    xs,
    ys,
    ax: float,
    ay: float,
    bounds: "Sequence[tuple[float, float, float, float]]",
    epsilon: float,
) -> bool:
    """Conservative bulk-accept screen for FBQS's bounded-quadrant window.

    ``bounds`` holds the current ``(min_x, max_x, min_y, max_y)`` box of each
    of the four anchor quadrants (``+inf``/``-inf`` sentinels when empty, in
    the quadrant order of ``BoundedQuadrantWindow``).  The screen folds every
    candidate point into its quadrant's box — using exactly the quadrant
    assignment ``add`` would use — and checks whether the farthest box corner
    of any occupied quadrant stays within ``epsilon`` of the anchor.

    When it returns True, *every* candidate in the slice passes FBQS's exact
    per-point check: each significant vertex lies inside its quadrant's box,
    whose corners bound its distance to the anchor, which in turn bounds its
    PED to any candidate line through the anchor.  A False result is merely
    inconclusive — the caller replays the points through the exact scalar
    path — so the screen's own floating-point slop can never change a
    decision, only how much work takes the fast path.
    """
    xs = _as_float_array(xs)
    ys = _as_float_array(ys)
    if use_vectorized_kernels() and xs.size > 1:
        dxs = xs - ax
        dys = ys - ay
        east = dxs >= 0.0
        north = dys >= 0.0
        masks = (east & north, ~east & north, ~east & ~north, east & ~north)
        worst = 0.0
        for mask, (min_x, max_x, min_y, max_y) in zip(masks, bounds):
            if mask.any():
                min_x = min(min_x, float(xs[mask].min()))
                max_x = max(max_x, float(xs[mask].max()))
                min_y = min(min_y, float(ys[mask].min()))
                max_y = max(max_y, float(ys[mask].max()))
            elif min_x > max_x:
                continue
            reach_x = max(abs(min_x - ax), abs(max_x - ax))
            reach_y = max(abs(min_y - ay), abs(max_y - ay))
            worst = max(worst, math.hypot(reach_x, reach_y))
        return worst <= epsilon
    boxes = [list(box) for box in bounds]
    for offset in range(xs.shape[0]):
        x = float(xs[offset])
        y = float(ys[offset])
        dx = x - ax
        dy = y - ay
        if dx >= 0.0 and dy >= 0.0:
            box = boxes[0]
        elif dx < 0.0 and dy >= 0.0:
            box = boxes[1]
        elif dx < 0.0 and dy < 0.0:
            box = boxes[2]
        else:
            box = boxes[3]
        box[0] = min(box[0], x)
        box[1] = max(box[1], x)
        box[2] = min(box[2], y)
        box[3] = max(box[3], y)
    worst = 0.0
    for min_x, max_x, min_y, max_y in boxes:
        if min_x > max_x:
            continue
        reach_x = max(abs(min_x - ax), abs(max_x - ax))
        reach_y = max(abs(min_y - ay), abs(max_y - ay))
        worst = max(worst, math.hypot(reach_x, reach_y))
    return worst <= epsilon


# ---------------------------------------------------------------------- #
# Angular kernels
# ---------------------------------------------------------------------- #
def direction_angles(dxs, dys) -> np.ndarray:
    """Directions of many vectors with the x-axis, normalized to ``[0, 2*pi)``.

    Zero vectors map to ``0.0`` by convention, matching
    :func:`repro.geometry.angles.angle_of`.
    """
    dxs = _as_float_array(dxs)
    dys = _as_float_array(dys)
    if use_vectorized_kernels():
        angles = np.arctan2(dys, dxs)
        angles = np.where(angles < 0.0, angles + TWO_PI, angles)
        # A tiny negative angle + 2*pi rounds to exactly 2*pi; fold it back
        # so the result stays in [0, 2*pi), as normalize_angle does.
        angles = np.where(angles >= TWO_PI, angles - TWO_PI, angles)
        return np.where((dxs == 0.0) & (dys == 0.0), 0.0, angles)
    out = np.empty(dxs.shape[0], dtype=float)
    for offset in range(dxs.shape[0]):
        dx = float(dxs[offset])
        dy = float(dys[offset])
        if dx == 0.0 and dy == 0.0:
            out[offset] = 0.0
            continue
        angle = math.atan2(dy, dx)
        if angle < 0.0:
            angle += TWO_PI
        if angle >= TWO_PI:
            angle -= TWO_PI
        out[offset] = angle
    return out


def _overlap_scalar(
    start_a: float, extent_a: float, start_b: float, extent_b: float
) -> bool:
    gap_ab = math.fmod(start_b - start_a, TWO_PI)
    if gap_ab < 0.0:
        gap_ab += TWO_PI
    if gap_ab <= extent_a:
        return True
    gap_ba = math.fmod(start_a - start_b, TWO_PI)
    if gap_ba < 0.0:
        gap_ba += TWO_PI
    return gap_ba <= extent_b


def angular_ranges_overlap(start_a, extent_a, start_b, extent_b):
    """Whether the arcs ``[start, start + extent]`` intersect on the circle.

    Arcs are described by a start direction (radians, any finite value) and a
    non-negative counter-clockwise ``extent`` in ``[0, 2*pi]``.  Accepts
    scalars or equal-length arrays (broadcast element-wise); returns a bool
    for scalar inputs and a boolean array otherwise.

    A zero-extent arc is a single direction, so
    ``angular_ranges_overlap(theta - w, 2 * w, phi, 0.0)`` expresses the
    turn-angle gate "``phi`` within ``w`` of ``theta``" (the batched form of
    OPERB-A's patching condition 3).
    """
    scalar_input = np.isscalar(start_a) and np.isscalar(start_b)
    start_a, extent_a, start_b, extent_b = np.broadcast_arrays(
        _as_float_array(start_a),
        _as_float_array(extent_a),
        _as_float_array(start_b),
        _as_float_array(extent_b),
    )
    if use_vectorized_kernels():
        gap_ab = np.mod(start_b - start_a, TWO_PI)
        gap_ba = np.mod(start_a - start_b, TWO_PI)
        overlap = (gap_ab <= extent_a) | (gap_ba <= extent_b)
    else:
        flat = [
            _overlap_scalar(
                float(start_a.flat[i]),
                float(extent_a.flat[i]),
                float(start_b.flat[i]),
                float(extent_b.flat[i]),
            )
            for i in range(start_a.size)
        ]
        overlap = np.array(flat, dtype=bool).reshape(start_a.shape)
    if scalar_input:
        return bool(overlap.reshape(-1)[0])
    return overlap


def angular_range_intersection(start_a, extent_a, start_b, extent_b):
    """Extent of the intersection of two arcs, element-wise.

    Returns the length (radians, ``>= 0``) of the overlap between the arcs
    ``[start_a, start_a + extent_a]`` and ``[start_b, start_b + extent_b]``;
    ``0.0`` where they only touch in a single direction and negative-free.
    When arcs intersect in two disjoint pieces (possible on a circle), the
    total overlapped length is returned.  Scalar inputs yield a float.
    """
    scalar_input = np.isscalar(start_a) and np.isscalar(start_b)
    start_a, extent_a, start_b, extent_b = np.broadcast_arrays(
        _as_float_array(start_a),
        _as_float_array(extent_a),
        _as_float_array(start_b),
        _as_float_array(extent_b),
    )
    gap_ab = np.mod(start_b - start_a, TWO_PI)
    gap_ba = np.mod(start_a - start_b, TWO_PI)
    # Overlap of B's start inside A, plus overlap of A's start inside B.
    piece_b_in_a = np.clip(np.minimum(extent_a - gap_ab, extent_b), 0.0, None)
    piece_a_in_b = np.clip(np.minimum(extent_b - gap_ba, extent_a), 0.0, None)
    # When the arcs start in the same direction the two pieces are the same
    # interval; count it once.
    same_start = gap_ab == 0.0
    total = np.where(
        same_start, np.minimum(extent_a, extent_b), piece_b_in_a + piece_a_in_b
    )
    total = np.minimum(total, np.minimum(extent_a, extent_b))
    if scalar_input:
        return float(total.reshape(-1)[0])
    return total
