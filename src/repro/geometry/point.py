"""Point primitives.

A trajectory data point is a triple ``P(x, y, t)`` (Section 3.1 of the
paper): planar coordinates plus a timestamp.  The algorithms themselves only
need ``(x, y)``; the timestamp is carried along for synchronised-Euclidean
distance variants and for I/O round-trips.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Iterator

__all__ = ["Point", "encode_point", "decode_point"]


@dataclass(frozen=True, slots=True)
class Point:
    """An immutable trajectory data point.

    Attributes
    ----------
    x:
        Planar x coordinate (metres in the projected frame, or longitude if
        the caller works in raw degrees).
    y:
        Planar y coordinate (metres or latitude).
    t:
        Timestamp in seconds.  Defaults to ``0.0`` for purely spatial use.
    """

    x: float
    y: float
    t: float = 0.0

    def distance_to(self, other: "Point") -> float:
        """Euclidean distance between this point and ``other``."""
        return math.hypot(self.x - other.x, self.y - other.y)

    def offset(self, dx: float, dy: float, dt: float = 0.0) -> "Point":
        """Return a new point translated by ``(dx, dy)`` and shifted in time."""
        return Point(self.x + dx, self.y + dy, self.t + dt)

    def with_time(self, t: float) -> "Point":
        """Return a copy of this point carrying a different timestamp."""
        return Point(self.x, self.y, t)

    def midpoint(self, other: "Point") -> "Point":
        """Midpoint of this point and ``other`` (timestamps averaged)."""
        return Point(
            0.5 * (self.x + other.x),
            0.5 * (self.y + other.y),
            0.5 * (self.t + other.t),
        )

    def is_finite(self) -> bool:
        """Whether all coordinates (and the timestamp) are finite numbers."""
        return math.isfinite(self.x) and math.isfinite(self.y) and math.isfinite(self.t)

    def as_xy(self) -> tuple[float, float]:
        """The ``(x, y)`` pair, dropping the timestamp."""
        return (self.x, self.y)

    def as_xyt(self) -> tuple[float, float, float]:
        """The full ``(x, y, t)`` triple."""
        return (self.x, self.y, self.t)

    def __iter__(self) -> Iterator[float]:
        """Iterate as ``(x, y, t)`` so ``tuple(point)`` round-trips."""
        yield self.x
        yield self.y
        yield self.t


def encode_point(point: "Point | None") -> list[float] | None:
    """``[x, y, t]`` wire form of a point (``None`` passes through).

    The single codec behind every snapshot/checkpoint payload: floats
    round-trip JSON exactly, so :func:`decode_point` reconstructs the point
    bit-identically.
    """
    return None if point is None else [point.x, point.y, point.t]


def decode_point(coords: "list[float] | None") -> "Point | None":
    """Inverse of :func:`encode_point`."""
    return None if coords is None else Point(coords[0], coords[1], coords[2])
