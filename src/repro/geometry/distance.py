"""Distance computations.

The paper adopts the Euclidean distance from a point to the *line* through a
segment's endpoints (Section 3.1), which is what all error-bounded checks use.
Point-to-segment and synchronised Euclidean distance (SED) are provided as
well: the former because it is the more common cartographic definition, the
latter because TD-TR / OPW-TR baselines use it.

Scalar helpers operate on plain floats / :class:`~repro.geometry.point.Point`
objects; vectorised helpers operate on NumPy arrays and are used by the batch
algorithms (DP) and the metric computations, where the per-call overhead of
Python-level loops would dominate.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .point import Point

__all__ = [
    "point_to_line_distance",
    "point_to_anchored_line_distance",
    "point_to_segment_distance",
    "synchronized_euclidean_distance",
    "points_to_line_distance",
    "points_to_segment_distance",
    "points_sed_distance",
    "max_distance_to_line",
]


def point_to_line_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``.

    If ``a`` and ``b`` coincide the distance degenerates to ``|p - a|``,
    matching the convention used by every algorithm in this package.
    """
    abx = b.x - a.x
    aby = b.y - a.y
    norm = math.hypot(abx, aby)
    if norm == 0.0:
        return math.hypot(p.x - a.x, p.y - a.y)
    return abs(abx * (p.y - a.y) - aby * (p.x - a.x)) / norm


def point_to_anchored_line_distance(p: Point, anchor: Point, theta: float) -> float:
    """Distance from ``p`` to the line through ``anchor`` with direction ``theta``.

    This is the form used by the OPERB fitting function, whose maintained
    segment is ``(Ps, |L|, L.theta)``: the distance only depends on the
    anchor and the direction, not on the segment length.
    """
    dx = p.x - anchor.x
    dy = p.y - anchor.y
    return abs(math.cos(theta) * dy - math.sin(theta) * dx)


def point_to_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the closed segment ``[a, b]``."""
    abx = b.x - a.x
    aby = b.y - a.y
    apx = p.x - a.x
    apy = p.y - a.y
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return math.hypot(apx, apy)
    u = (apx * abx + apy * aby) / denom
    if u <= 0.0:
        return math.hypot(apx, apy)
    if u >= 1.0:
        return math.hypot(p.x - b.x, p.y - b.y)
    projx = a.x + u * abx
    projy = a.y + u * aby
    return math.hypot(p.x - projx, p.y - projy)


def synchronized_euclidean_distance(p: Point, a: Point, b: Point) -> float:
    """Synchronised Euclidean distance (SED) of ``p`` w.r.t. segment ``a -> b``.

    The moving object is assumed to travel from ``a`` to ``b`` at constant
    speed; the SED of ``p`` is the distance between ``p`` and the position the
    object would occupy at time ``p.t``.  When the segment's time span is zero
    the plain distance to ``a`` is returned.
    """
    span = b.t - a.t
    if span == 0.0:
        return math.hypot(p.x - a.x, p.y - a.y)
    ratio = (p.t - a.t) / span
    sx = a.x + (b.x - a.x) * ratio
    sy = a.y + (b.y - a.y) * ratio
    return math.hypot(p.x - sx, p.y - sy)


def points_to_line_distance(
    xs: np.ndarray, ys: np.ndarray, ax: float, ay: float, bx: float, by: float
) -> np.ndarray:
    """Vectorised distance from many points to the line through ``(a, b)``.

    Parameters
    ----------
    xs, ys:
        Coordinate arrays of equal length.
    ax, ay, bx, by:
        Endpoints of the reference line.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    abx = bx - ax
    aby = by - ay
    norm = math.hypot(abx, aby)
    if norm == 0.0:
        return np.hypot(xs - ax, ys - ay)
    return np.abs(abx * (ys - ay) - aby * (xs - ax)) / norm


def points_to_segment_distance(
    xs: np.ndarray, ys: np.ndarray, ax: float, ay: float, bx: float, by: float
) -> np.ndarray:
    """Vectorised distance from many points to the closed segment ``[a, b]``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return np.hypot(xs - ax, ys - ay)
    u = ((xs - ax) * abx + (ys - ay) * aby) / denom
    u = np.clip(u, 0.0, 1.0)
    projx = ax + u * abx
    projy = ay + u * aby
    return np.hypot(xs - projx, ys - projy)


def points_sed_distance(
    xs: np.ndarray,
    ys: np.ndarray,
    ts: np.ndarray,
    a: Point,
    b: Point,
) -> np.ndarray:
    """Vectorised synchronised Euclidean distance w.r.t. segment ``a -> b``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    ts = np.asarray(ts, dtype=float)
    span = b.t - a.t
    if span == 0.0:
        return np.hypot(xs - a.x, ys - a.y)
    ratio = (ts - a.t) / span
    sx = a.x + (b.x - a.x) * ratio
    sy = a.y + (b.y - a.y) * ratio
    return np.hypot(xs - sx, ys - sy)


def max_distance_to_line(points: Sequence[Point], a: Point, b: Point) -> tuple[float, int]:
    """Maximum point-to-line distance over ``points`` and its arg-max index.

    Returns ``(0.0, -1)`` for an empty sequence.
    """
    best = 0.0
    best_index = -1
    for index, p in enumerate(points):
        d = point_to_line_distance(p, a, b)
        if d > best:
            best = d
            best_index = index
    return best, best_index
