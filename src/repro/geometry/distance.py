"""Distance computations.

The paper adopts the Euclidean distance from a point to the *line* through a
segment's endpoints (Section 3.1), which is what all error-bounded checks use.
Point-to-segment and synchronised Euclidean distance (SED) are provided as
well: the former because it is the more common cartographic definition, the
latter because TD-TR / OPW-TR baselines use it.

Scalar helpers operate on plain floats / :class:`~repro.geometry.point.Point`
objects and are thin wrappers over the scalar point kernels in
:mod:`repro.geometry.kernels` — one home for every distance formula, so the
scalar/vectorized backend equivalence cannot drift.  The vectorised helpers
operate on NumPy arrays and are used by the batch algorithms and the metric
computations, where the per-call overhead of Python-level loops would
dominate; unlike the kernel-layer dispatch functions they are *always*
vectorized, independent of the backend flag.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from .kernels import anchored_ped_point, ped_point_to_chord, ped_point_to_segment, sed_point
from .point import Point

__all__ = [
    "point_to_line_distance",
    "point_to_anchored_line_distance",
    "point_to_segment_distance",
    "synchronized_euclidean_distance",
    "points_to_line_distance",
    "points_to_segment_distance",
    "points_sed_distance",
    "max_distance_to_line",
]


def point_to_line_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the infinite line through ``a`` and ``b``.

    If ``a`` and ``b`` coincide the distance degenerates to ``|p - a|``,
    matching the convention used by every algorithm in this package.
    """
    return ped_point_to_chord(p.x, p.y, a.x, a.y, b.x, b.y)


def point_to_anchored_line_distance(p: Point, anchor: Point, theta: float) -> float:
    """Distance from ``p`` to the line through ``anchor`` with direction ``theta``.

    This is the form used by the OPERB fitting function, whose maintained
    segment is ``(Ps, |L|, L.theta)``: the distance only depends on the
    anchor and the direction, not on the segment length.
    """
    return anchored_ped_point(p.x, p.y, anchor.x, anchor.y, theta)


def point_to_segment_distance(p: Point, a: Point, b: Point) -> float:
    """Distance from ``p`` to the closed segment ``[a, b]``."""
    return ped_point_to_segment(p.x, p.y, a.x, a.y, b.x, b.y)


def synchronized_euclidean_distance(p: Point, a: Point, b: Point) -> float:
    """Synchronised Euclidean distance (SED) of ``p`` w.r.t. segment ``a -> b``.

    The moving object is assumed to travel from ``a`` to ``b`` at constant
    speed; the SED of ``p`` is the distance between ``p`` and the position the
    object would occupy at time ``p.t``.  When the segment's time span is zero
    the plain distance to ``a`` is returned.
    """
    return sed_point(p.x, p.y, p.t, a.x, a.y, a.t, b.x, b.y, b.t)


def points_to_line_distance(
    xs: np.ndarray, ys: np.ndarray, ax: float, ay: float, bx: float, by: float
) -> np.ndarray:
    """Vectorised distance from many points to the line through ``(a, b)``.

    Parameters
    ----------
    xs, ys:
        Coordinate arrays of equal length.
    ax, ay, bx, by:
        Endpoints of the reference line.
    """
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    abx = bx - ax
    aby = by - ay
    norm = math.hypot(abx, aby)
    if norm == 0.0:
        return np.hypot(xs - ax, ys - ay)
    return np.abs(abx * (ys - ay) - aby * (xs - ax)) / norm


def points_to_segment_distance(
    xs: np.ndarray, ys: np.ndarray, ax: float, ay: float, bx: float, by: float
) -> np.ndarray:
    """Vectorised distance from many points to the closed segment ``[a, b]``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    abx = bx - ax
    aby = by - ay
    denom = abx * abx + aby * aby
    if denom == 0.0:
        return np.hypot(xs - ax, ys - ay)
    u = ((xs - ax) * abx + (ys - ay) * aby) / denom
    u = np.clip(u, 0.0, 1.0)
    projx = ax + u * abx
    projy = ay + u * aby
    return np.hypot(xs - projx, ys - projy)


def points_sed_distance(
    xs: np.ndarray,
    ys: np.ndarray,
    ts: np.ndarray,
    a: Point,
    b: Point,
) -> np.ndarray:
    """Vectorised synchronised Euclidean distance w.r.t. segment ``a -> b``."""
    xs = np.asarray(xs, dtype=float)
    ys = np.asarray(ys, dtype=float)
    ts = np.asarray(ts, dtype=float)
    span = b.t - a.t
    if span == 0.0:
        return np.hypot(xs - a.x, ys - a.y)
    ratio = (ts - a.t) / span
    sx = a.x + (b.x - a.x) * ratio
    sy = a.y + (b.y - a.y) * ratio
    return np.hypot(xs - sx, ys - sy)


def max_distance_to_line(points: Sequence[Point], a: Point, b: Point) -> tuple[float, int]:
    """Maximum point-to-line distance over ``points`` and its arg-max index.

    Returns ``(0.0, -1)`` for an empty sequence.
    """
    best = 0.0
    best_index = -1
    for index, p in enumerate(points):
        d = point_to_line_distance(p, a, b)
        if d > best:
            best = d
            best_index = index
    return best, best_index
