"""Line intersection helpers.

OPERB-A's patch point ``G`` is the intersection of two infinite lines: the
line carrying the segment before an anomalous segment and the line carrying
the segment after it (Section 5.1 of the paper).  Both lines are naturally
expressed as an anchor point plus a direction angle.
"""

from __future__ import annotations

import math
from typing import Optional

from .point import Point

__all__ = ["intersect_lines", "intersect_point_directions", "project_onto_direction"]

# Two direction vectors whose cross product magnitude is below this threshold
# are treated as parallel; the patch-point computation then fails gracefully.
_PARALLEL_EPS = 1e-12


def intersect_lines(a1: Point, a2: Point, b1: Point, b2: Point) -> Optional[Point]:
    """Intersection of line ``a1-a2`` with line ``b1-b2``.

    Returns ``None`` when the lines are parallel (or either is degenerate).
    The timestamp of the returned point is interpolated along the first line
    when possible, otherwise copied from ``a1``.
    """
    dax = a2.x - a1.x
    day = a2.y - a1.y
    dbx = b2.x - b1.x
    dby = b2.y - b1.y
    denom = dax * dby - day * dbx
    scale = max(abs(dax), abs(day), abs(dbx), abs(dby), 1.0)
    if abs(denom) <= _PARALLEL_EPS * scale * scale:
        return None
    t = ((b1.x - a1.x) * dby - (b1.y - a1.y) * dbx) / denom
    x = a1.x + t * dax
    y = a1.y + t * day
    ts = a1.t + t * (a2.t - a1.t)
    return Point(x, y, ts)


def intersect_point_directions(
    anchor_a: Point, theta_a: float, anchor_b: Point, theta_b: float
) -> Optional[Point]:
    """Intersection of two lines given as (anchor, direction angle)."""
    a2 = Point(anchor_a.x + math.cos(theta_a), anchor_a.y + math.sin(theta_a), anchor_a.t)
    b2 = Point(anchor_b.x + math.cos(theta_b), anchor_b.y + math.sin(theta_b), anchor_b.t)
    return intersect_lines(anchor_a, a2, anchor_b, b2)


def project_onto_direction(p: Point, anchor: Point, theta: float) -> float:
    """Signed distance of ``p``'s projection onto the ray ``(anchor, theta)``.

    A positive value means the projection falls in front of the anchor (in
    the direction of ``theta``); a negative value means it falls behind.
    """
    return (p.x - anchor.x) * math.cos(theta) + (p.y - anchor.y) * math.sin(theta)
