"""Planar and geodetic geometry primitives used by every other subsystem.

The public surface mirrors the notation of the paper (Section 3.1): points,
directed line segments ``(Ps, |L|, L.theta)``, included angles and the
point-to-line distance ``d(P, L)``.
"""

from .angles import (
    TWO_PI,
    angle_between_directions,
    angle_of,
    degrees_to_radians,
    included_angle,
    normalize_angle,
    normalize_signed_angle,
    opposite_angle,
    radians_to_degrees,
)
from .clipping import bounding_box_polygon, clip_box_with_wedge, clip_polygon_halfplane
from .distance import (
    max_distance_to_line,
    point_to_anchored_line_distance,
    point_to_line_distance,
    point_to_segment_distance,
    points_sed_distance,
    points_to_line_distance,
    points_to_segment_distance,
    synchronized_euclidean_distance,
)
from .intersection import intersect_lines, intersect_point_directions, project_onto_direction
from .kernels import (
    KERNEL_BACKENDS,
    angular_range_intersection,
    angular_ranges_overlap,
    get_kernel_backend,
    kernel_backend,
    set_kernel_backend,
    use_vectorized_kernels,
)
from .point import Point
from .projection import EARTH_RADIUS_M, LocalProjection, haversine_distance
from .segment import DirectedSegment

__all__ = [
    "TWO_PI",
    "EARTH_RADIUS_M",
    "KERNEL_BACKENDS",
    "Point",
    "DirectedSegment",
    "LocalProjection",
    "angle_of",
    "angular_range_intersection",
    "angular_ranges_overlap",
    "get_kernel_backend",
    "kernel_backend",
    "set_kernel_backend",
    "use_vectorized_kernels",
    "angle_between_directions",
    "bounding_box_polygon",
    "clip_box_with_wedge",
    "clip_polygon_halfplane",
    "degrees_to_radians",
    "haversine_distance",
    "included_angle",
    "intersect_lines",
    "intersect_point_directions",
    "max_distance_to_line",
    "normalize_angle",
    "normalize_signed_angle",
    "opposite_angle",
    "point_to_anchored_line_distance",
    "point_to_line_distance",
    "point_to_segment_distance",
    "points_sed_distance",
    "points_to_line_distance",
    "points_to_segment_distance",
    "project_onto_direction",
    "radians_to_degrees",
    "synchronized_euclidean_distance",
]
