"""Convex polygon clipping used by the BQS / FBQS bounding structures.

BQS (Liu et al., ICDE 2015) bounds the points buffered in a quadrant with the
intersection of (a) their axis-aligned bounding box and (b) the angular wedge
between the two bounding lines anchored at the window start point.  The
result is a convex polygon with at most eight vertices (the paper's
"significant points"); the maximum distance from any buffered point to a
candidate line is bounded above by the maximum distance over these vertices.

This module provides a small Sutherland–Hodgman style clipper specialised to
half-planes, which is all BQS needs.
"""

from __future__ import annotations

from typing import Sequence

from .point import Point

__all__ = ["clip_polygon_halfplane", "bounding_box_polygon", "clip_box_with_wedge"]


def _side(p: Point, anchor: Point, nx: float, ny: float) -> float:
    """Signed distance of ``p`` from the half-plane boundary.

    The half-plane is ``{q : (q - anchor) . (nx, ny) >= 0}``.
    """
    return (p.x - anchor.x) * nx + (p.y - anchor.y) * ny


def _intersection_on_boundary(
    p: Point, q: Point, anchor: Point, nx: float, ny: float
) -> Point:
    """Intersection of segment ``p-q`` with the half-plane boundary line."""
    sp = _side(p, anchor, nx, ny)
    sq = _side(q, anchor, nx, ny)
    denom = sp - sq
    if denom == 0.0:
        return p
    t = sp / denom
    return Point(p.x + t * (q.x - p.x), p.y + t * (q.y - p.y), p.t + t * (q.t - p.t))


def clip_polygon_halfplane(
    polygon: Sequence[Point], anchor: Point, nx: float, ny: float
) -> list[Point]:
    """Clip a convex polygon against the half-plane ``(q - anchor).(nx, ny) >= 0``.

    Returns the (possibly empty) clipped polygon.  Vertices lying exactly on
    the boundary are kept.
    """
    if not polygon:
        return []
    result: list[Point] = []
    count = len(polygon)
    for index in range(count):
        current = polygon[index]
        nxt = polygon[(index + 1) % count]
        current_in = _side(current, anchor, nx, ny) >= 0.0
        next_in = _side(nxt, anchor, nx, ny) >= 0.0
        if current_in:
            result.append(current)
            if not next_in:
                result.append(_intersection_on_boundary(current, nxt, anchor, nx, ny))
        elif next_in:
            result.append(_intersection_on_boundary(current, nxt, anchor, nx, ny))
    return result


def bounding_box_polygon(
    min_x: float, min_y: float, max_x: float, max_y: float
) -> list[Point]:
    """Counter-clockwise rectangle polygon for a bounding box."""
    return [
        Point(min_x, min_y),
        Point(max_x, min_y),
        Point(max_x, max_y),
        Point(min_x, max_y),
    ]


def clip_box_with_wedge(
    box: Sequence[Point],
    apex: Point,
    low_dx: float,
    low_dy: float,
    high_dx: float,
    high_dy: float,
) -> list[Point]:
    """Clip a bounding-box polygon with the wedge between two rays from ``apex``.

    ``(low_dx, low_dy)`` is the direction of the lower bounding line and
    ``(high_dx, high_dy)`` the direction of the upper bounding line, in the
    sense that every buffered point ``p`` satisfies::

        cross(low, p - apex)  >= 0   (p is counter-clockwise of the low ray)
        cross(high, p - apex) <= 0   (p is clockwise of the high ray)

    The returned polygon has at most eight vertices and contains every point
    that lies both in the box and in the wedge.
    """
    # Half-plane 1: cross(low, q - apex) >= 0  <=>  (q - apex) . (-low_dy, low_dx) >= 0
    clipped = clip_polygon_halfplane(box, apex, -low_dy, low_dx)
    # Half-plane 2: cross(high, q - apex) <= 0 <=>  (q - apex) . (high_dy, -high_dx) >= 0
    clipped = clip_polygon_halfplane(clipped, apex, high_dy, -high_dx)
    return clipped
