"""Angle arithmetic used throughout the line-simplification algorithms.

The paper (Section 3.1) represents a directed line segment as the triple
``(Ps, |L|, L.theta)`` where ``L.theta`` is the angle of the segment with the
x-axis, taken in ``[0, 2*pi)``.  Included angles between two segments sharing
a start point live in ``(-2*pi, 2*pi)``.  The helpers in this module keep
those conventions in one place.
"""

from __future__ import annotations

import math

__all__ = [
    "TWO_PI",
    "normalize_angle",
    "normalize_signed_angle",
    "included_angle",
    "angle_of",
    "angle_between_directions",
    "opposite_angle",
    "degrees_to_radians",
    "radians_to_degrees",
]

TWO_PI = 2.0 * math.pi


def normalize_angle(theta: float) -> float:
    """Normalize an angle to the interval ``[0, 2*pi)``.

    Parameters
    ----------
    theta:
        Angle in radians, any finite value.

    Returns
    -------
    float
        The equivalent angle in ``[0, 2*pi)``.
    """
    theta = math.fmod(theta, TWO_PI)
    if theta < 0.0:
        theta += TWO_PI
    # Guard against the fmod result landing exactly on 2*pi after the add.
    if theta >= TWO_PI:
        theta -= TWO_PI
    return theta


def normalize_signed_angle(theta: float) -> float:
    """Normalize an angle to the symmetric interval ``(-pi, pi]``.

    This form is convenient for reasoning about turns: a positive value is a
    counter-clockwise turn, a negative value a clockwise turn.
    """
    theta = math.fmod(theta, TWO_PI)
    if theta > math.pi:
        theta -= TWO_PI
    elif theta <= -math.pi:
        theta += TWO_PI
    return theta


def included_angle(theta_from: float, theta_to: float) -> float:
    """Included angle from one direction to another, as used in the paper.

    Both inputs are expected in ``[0, 2*pi)`` (they are normalized anyway),
    and the result ``theta_to - theta_from`` lies in ``(-2*pi, 2*pi)``; this
    mirrors the paper's definition of ``angle(L1, L2) = L2.theta - L1.theta``.
    """
    return normalize_angle(theta_to) - normalize_angle(theta_from)


def angle_of(dx: float, dy: float) -> float:
    """Angle of the vector ``(dx, dy)`` with the x-axis, in ``[0, 2*pi)``.

    A zero vector maps to ``0.0`` by convention.
    """
    if dx == 0.0 and dy == 0.0:
        return 0.0
    return normalize_angle(math.atan2(dy, dx))


def angle_between_directions(theta_a: float, theta_b: float) -> float:
    """Smallest absolute angle between two undirected lines, in ``[0, pi/2]``.

    Useful when two directed segments should be compared as infinite lines
    (direction-insensitive), e.g. when deciding whether two lines are close
    to parallel before intersecting them.
    """
    delta = abs(normalize_signed_angle(theta_b - theta_a))
    if delta > math.pi / 2.0:
        delta = math.pi - delta
    return delta


def opposite_angle(theta: float) -> float:
    """Direction opposite to ``theta``, normalized to ``[0, 2*pi)``."""
    return normalize_angle(theta + math.pi)


def degrees_to_radians(degrees: float) -> float:
    """Convert degrees to radians (thin wrapper kept for API symmetry)."""
    return math.radians(degrees)


def radians_to_degrees(radians: float) -> float:
    """Convert radians to degrees (thin wrapper kept for API symmetry)."""
    return math.degrees(radians)
