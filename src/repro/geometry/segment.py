"""Directed line segments.

The paper treats a directed line segment ``L = Ps -> Pe`` interchangeably as
the pair of endpoints or as the triple ``(Ps, |L|, L.theta)``.  The class in
this module supports both views: it stores the start point, length and angle,
and derives the end point on demand.  The fitting function of OPERB operates
directly on the ``(start, length, theta)`` representation, because the end
point it maintains is *virtual* (not necessarily a trajectory point).
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from .angles import angle_of, included_angle, normalize_angle
from .point import Point

__all__ = ["DirectedSegment"]


@dataclass(frozen=True, slots=True)
class DirectedSegment:
    """A directed line segment ``(start, length, theta)``.

    Attributes
    ----------
    start:
        The fixed start point ``Ps``.
    length:
        Segment length ``|L| >= 0``.
    theta:
        Angle with the x-axis in ``[0, 2*pi)``.  For a zero-length segment
        the angle is conventionally ``0.0``.
    """

    start: Point
    length: float
    theta: float

    @classmethod
    def from_points(cls, start: Point, end: Point) -> "DirectedSegment":
        """Build the directed segment joining two points."""
        dx = end.x - start.x
        dy = end.y - start.y
        return cls(start=start, length=math.hypot(dx, dy), theta=angle_of(dx, dy))

    @classmethod
    def zero(cls, start: Point) -> "DirectedSegment":
        """The degenerate segment ``start -> start`` (used as ``L0 = R0``)."""
        return cls(start=start, length=0.0, theta=0.0)

    @property
    def end(self) -> Point:
        """The end point implied by ``(start, length, theta)``."""
        return Point(
            self.start.x + self.length * math.cos(self.theta),
            self.start.y + self.length * math.sin(self.theta),
            self.start.t,
        )

    @property
    def direction(self) -> tuple[float, float]:
        """Unit direction vector ``(cos(theta), sin(theta))``."""
        return (math.cos(self.theta), math.sin(self.theta))

    def is_degenerate(self) -> bool:
        """Whether the segment has (numerically) zero length."""
        return self.length <= 0.0

    def with_length(self, length: float) -> "DirectedSegment":
        """Copy of this segment with a different length."""
        return DirectedSegment(self.start, length, self.theta)

    def with_theta(self, theta: float) -> "DirectedSegment":
        """Copy of this segment with a different (normalized) angle."""
        return DirectedSegment(self.start, self.length, normalize_angle(theta))

    def rotated(self, delta: float) -> "DirectedSegment":
        """Copy of this segment rotated around its start point by ``delta``."""
        return DirectedSegment(self.start, self.length, normalize_angle(self.theta + delta))

    def included_angle_to(self, other: "DirectedSegment") -> float:
        """Included angle from this segment to ``other`` (paper Section 3.1)."""
        return included_angle(self.theta, other.theta)

    def point_at(self, distance: float) -> Point:
        """Point located ``distance`` from the start along the direction."""
        return Point(
            self.start.x + distance * math.cos(self.theta),
            self.start.y + distance * math.sin(self.theta),
            self.start.t,
        )
