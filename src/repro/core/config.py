"""Configuration objects for OPERB and OPERB-A, plus runtime switches.

The paper describes a basic algorithm (Raw-OPERB, Figure 7), five optimisation
techniques (Section 4.4) whose combination is called OPERB, and an aggressive
extension OPERB-A (Section 5) parameterised by the patch-angle threshold
``gamma_m``.  Each optimisation is an independent flag here so the ablation
experiments (Exp-1.3 and Exp-2.2) can toggle them exactly as the paper does.

This module is also the user-facing home of the **kernel backend flag**
(:func:`set_kernel_backend` / :func:`kernel_backend`): batch algorithms and
metrics route their distance computations through the structure-of-arrays
kernels in :mod:`repro.geometry.kernels`, and the flag switches between the
NumPy ``"vectorized"`` implementations and the per-point ``"scalar"``
fallbacks.  The scalar fallback performs the same floating-point operations
as the streaming one-point code paths, so results can be pinned bit-identical
where the paper's one-pass semantics require it.  The state itself lives in
the geometry layer (which has no upward dependencies) and is re-exported
here.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, replace

# Re-exported runtime switch; the state lives in the dependency-free
# geometry layer so kernels never import upwards.
from ..geometry.kernels import (
    KERNEL_BACKENDS,
    get_kernel_backend,
    kernel_backend,
    set_kernel_backend,
    use_vectorized_kernels,
)
from ..exceptions import InvalidParameterError

__all__ = [
    "OperbConfig",
    "OperbAConfig",
    "DEFAULT_MAX_POINTS_PER_SEGMENT",
    "KERNEL_BACKENDS",
    "get_kernel_backend",
    "kernel_backend",
    "set_kernel_backend",
    "use_vectorized_kernels",
]

DEFAULT_MAX_POINTS_PER_SEGMENT = 400_000
"""Per-segment point cap ``4 x 10^5`` from Theorem 2 / Figure 7 of the paper."""


@dataclass(frozen=True, slots=True)
class OperbConfig:
    """Parameters of the OPERB simplifier.

    Attributes
    ----------
    epsilon:
        The error bound ``zeta`` (same length unit as the coordinates,
        typically metres).
    opt_first_active_threshold:
        Optimisation 1 — choose the first active point after ``Ps`` as the
        first point farther than ``zeta`` (instead of ``zeta / 4``).
    opt_two_sided_deviation:
        Optimisation 2 — replace the per-point condition
        ``d(P, L) <= zeta / 2`` with ``d_plus_max + d_minus_max <= zeta``.
    opt_aggressive_rotation:
        Optimisation 3 — rotate the fitted segment using the running
        one-sided maximum deviation instead of the current point's deviation,
        capped so the rotation never exceeds ``arcsin(d / (j * zeta / 2))``.
    opt_missing_zone_compensation:
        Optimisation 4 — scale the rotation by the number of zones skipped
        between consecutive active points.
    opt_absorb_trailing_points:
        Optimisation 5 — after a segment is finalised, keep absorbing
        subsequent points that stay within ``zeta`` of the finalised segment
        line before starting the next segment.
    max_points_per_segment:
        Safety cap on the number of points represented by a single segment
        (the paper's ``4 x 10^5`` restriction).
    """

    epsilon: float
    opt_first_active_threshold: bool = True
    opt_two_sided_deviation: bool = True
    opt_aggressive_rotation: bool = True
    opt_missing_zone_compensation: bool = True
    opt_absorb_trailing_points: bool = True
    max_points_per_segment: int = DEFAULT_MAX_POINTS_PER_SEGMENT

    def __post_init__(self) -> None:
        if not (self.epsilon > 0.0 and math.isfinite(self.epsilon)):
            raise InvalidParameterError(
                f"error bound epsilon must be a positive finite number, got {self.epsilon!r}"
            )
        if self.max_points_per_segment < 2:
            raise InvalidParameterError("max_points_per_segment must be at least 2")

    # ------------------------------------------------------------------ #
    # Convenience constructors mirroring the paper's algorithm names
    # ------------------------------------------------------------------ #
    @classmethod
    def optimized(cls, epsilon: float, **overrides) -> "OperbConfig":
        """The full OPERB configuration (all five optimisations enabled)."""
        return cls(epsilon=epsilon, **overrides)

    @classmethod
    def raw(cls, epsilon: float, **overrides) -> "OperbConfig":
        """The Raw-OPERB configuration (no optimisations, Figure 7 only)."""
        defaults = dict(
            opt_first_active_threshold=False,
            opt_two_sided_deviation=False,
            opt_aggressive_rotation=False,
            opt_missing_zone_compensation=False,
            opt_absorb_trailing_points=False,
        )
        defaults.update(overrides)
        return cls(epsilon=epsilon, **defaults)

    @property
    def half_epsilon(self) -> float:
        """``zeta / 2`` — the step length of the fitting function."""
        return 0.5 * self.epsilon

    @property
    def quarter_epsilon(self) -> float:
        """``zeta / 4`` — the active-point threshold of the fitting function."""
        return 0.25 * self.epsilon

    @property
    def first_active_threshold(self) -> float:
        """Distance from ``Ps`` beyond which a first active point is accepted."""
        return self.epsilon if self.opt_first_active_threshold else self.quarter_epsilon

    def with_epsilon(self, epsilon: float) -> "OperbConfig":
        """Copy of this configuration with a different error bound."""
        return replace(self, epsilon=epsilon)

    def optimization_flags(self) -> dict[str, bool]:
        """Mapping of optimisation name to enabled flag (for reporting)."""
        return {
            "first_active_threshold": self.opt_first_active_threshold,
            "two_sided_deviation": self.opt_two_sided_deviation,
            "aggressive_rotation": self.opt_aggressive_rotation,
            "missing_zone_compensation": self.opt_missing_zone_compensation,
            "absorb_trailing_points": self.opt_absorb_trailing_points,
        }


@dataclass(frozen=True, slots=True)
class OperbAConfig:
    """Parameters of the aggressive OPERB-A simplifier.

    OPERB-A runs OPERB underneath (``base`` configuration) and additionally
    interpolates patch points at the intersection of the segments surrounding
    an anomalous segment, provided the direction change does not exceed
    ``pi - gamma_max`` (Section 5.1, condition 3; the paper's ``gamma_m``).
    """

    base: OperbConfig
    gamma_max: float = math.pi / 3.0
    enable_patching: bool = True

    def __post_init__(self) -> None:
        if not (0.0 <= self.gamma_max <= math.pi):
            raise InvalidParameterError(
                f"gamma_max must lie in [0, pi], got {self.gamma_max!r}"
            )

    @classmethod
    def optimized(cls, epsilon: float, *, gamma_max: float = math.pi / 3.0) -> "OperbAConfig":
        """The full OPERB-A configuration (all optimisations + patching)."""
        return cls(base=OperbConfig.optimized(epsilon), gamma_max=gamma_max)

    @classmethod
    def raw(cls, epsilon: float, *, gamma_max: float = math.pi / 3.0) -> "OperbAConfig":
        """Raw-OPERB-A: no OPERB optimisations, patching still enabled."""
        return cls(base=OperbConfig.raw(epsilon), gamma_max=gamma_max)

    @property
    def epsilon(self) -> float:
        """The error bound ``zeta`` of the underlying OPERB configuration."""
        return self.base.epsilon

    @property
    def max_turn_angle(self) -> float:
        """Largest allowed direction change ``pi - gamma_max`` for patching."""
        return math.pi - self.gamma_max
