"""OPERB — the one-pass error bounded trajectory simplifier (paper Section 4).

:class:`OPERBSimplifier` is a push-based state machine: points are fed one at
a time through :meth:`~OPERBSimplifier.push`, finalised line segments are
returned as soon as they are determined, and :meth:`~OPERBSimplifier.finish`
flushes the trailing segment(s).  This is the natural realisation of the
paper's one-pass claim — every data point is examined once, against a state of
constant size — and also what a sensor on a mobile device would run.

The batch convenience function :func:`operb` wraps the streaming machine for
whole :class:`~repro.trajectory.model.Trajectory` objects.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Iterator

from ..exceptions import SimplificationError
from ..geometry import kernels
from ..geometry.kernels import ped_point_to_chord
from ..geometry.point import Point, decode_point, encode_point
from ..trajectory.blocks import drive_block_steps
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import (
    PiecewiseRepresentation,
    SegmentCascadeMixin,
    SegmentRecord,
)
from .config import OperbConfig
from .fitting import FittingState, PointOutcome

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectory.soa import PointBlock

__all__ = ["OperbStatistics", "OPERBSimplifier", "operb", "raw_operb"]


@dataclass
class OperbStatistics:
    """Aggregate counters of a simplification run."""

    points_processed: int = 0
    segments_emitted: int = 0
    anomalous_segments: int = 0
    absorbed_points: int = 0
    forced_breaks: int = 0
    distance_computations: int = 0

    def merge_fitting(self, fitting: FittingState) -> None:
        """Fold the distance-computation counter of a finished fitting state."""
        self.distance_computations += fitting.stats.distance_computations


@dataclass
class _SegmentInProgress:
    """Book-keeping for the segment currently being grown."""

    anchor: Point
    anchor_index: int
    fitting: FittingState
    last_active: Point | None = None
    last_active_index: int = -1
    points_in_segment: int = 1


@dataclass
class _AbsorptionState:
    """Book-keeping for optimisation 5 (absorbing points after a break)."""

    segment: SegmentRecord
    absorbed: int = 0


class OPERBSimplifier(SegmentCascadeMixin):
    """Streaming OPERB simplifier.

    Parameters
    ----------
    config:
        An :class:`~repro.core.config.OperbConfig`.  Use
        ``OperbConfig.optimized(epsilon)`` for the paper's OPERB and
        ``OperbConfig.raw(epsilon)`` for Raw-OPERB.

    Examples
    --------
    >>> from repro import OperbConfig, OPERBSimplifier, Point
    >>> simplifier = OPERBSimplifier(OperbConfig.optimized(10.0))
    >>> emitted = []
    >>> for i in range(100):
    ...     emitted.extend(simplifier.push(Point(float(i), 0.0, float(i))))
    >>> emitted.extend(simplifier.finish())
    >>> len(emitted)
    1
    """

    name = "operb"

    # Not snapshot state (RPA001): ``config`` is immutable configuration the
    # restoring side supplies, ``_probe_backoff`` is block-ingest probe
    # spacing — pure acceleration state that never affects output.
    _SNAPSHOT_EXCLUDE = frozenset({"config", "_probe_backoff"})

    def __init__(self, config: OperbConfig) -> None:
        self.config = config
        self.stats = OperbStatistics()
        self._segment: _SegmentInProgress | None = None
        self._absorption: _AbsorptionState | None = None
        self._index = -1
        self._previous_point: Point | None = None
        self._finished = False
        # Block-ingest probe spacing (acceleration state only: never part of
        # a snapshot, never observable in segments or statistics).
        self._probe_backoff = 0

    # ------------------------------------------------------------------ #
    # Public streaming API
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """The error bound this simplifier enforces."""
        return self.config.epsilon

    @property
    def is_finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed the next trajectory point; return any finalised segments."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        self._index += 1
        index = self._index
        self.stats.points_processed += 1
        emitted: list[SegmentRecord] = []

        if self._segment is None and self._absorption is None:
            # Very first point of the stream.
            self._start_segment(point, index)
            self._previous_point = point
            return emitted

        if self._absorption is not None:
            if self._try_absorb(point, index):
                self._previous_point = point
                return emitted
            emitted.append(self._end_absorption())
            # Fall through: the point is processed in the fresh segment below.

        assert self._segment is not None  # for type-checkers; guaranteed above
        self._process_in_segment(point, index, emitted)
        self._previous_point = point
        return emitted

    def push_block(self, block: "PointBlock") -> list[SegmentRecord]:
        """Feed a whole SoA block of points; return the finalised segments.

        Byte-identical to pushing the block's points one at a time — same
        segments, same statistics, same :meth:`snapshot` — but runs of
        absorbed points (pre-direction points near the anchor, inactive
        points inside the deviation budget, trailing points absorbed by
        optimisation 5) are detected with one vectorized prefix-kernel call
        each instead of per-point Python.  Only the run-breaking points go
        through the scalar :meth:`push`.
        """
        emitted: list[SegmentRecord] = []
        for _, segments in self.push_block_steps(block):
            emitted.extend(segments)
        return emitted

    def push_block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced form of :meth:`push_block`: ``(count, segments)`` steps.

        Each step ingests ``count`` further points of the block; ``segments``
        are the ones finalised by the last of them (empty for bulk-absorbed
        runs).  Consumers that account per-push emission positions (the
        stream hub's lag counters) drive this instead of :meth:`push_block`.
        """
        if self._finished:
            raise SimplificationError("push() called after finish()")
        if len(block) == 0:
            return iter(())
        return self._block_steps(block)

    def _block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        xs = block.xs
        ys = block.ys
        n = xs.shape[0]
        config = self.config

        def probe(start: int) -> tuple[int, bool, bool]:
            if self._absorption is not None:
                absorbed = self._absorption.segment
                stop = start + min(n - start, kernels.BLOCK_LOOKAHEAD)
                count = kernels.chord_prefix_within(
                    xs[start:stop],
                    ys[start:stop],
                    absorbed.start.x,
                    absorbed.start.y,
                    absorbed.end.x,
                    absorbed.end.y,
                    config.epsilon,
                )
                if count:
                    self._bulk_absorb(block, start, count)
                return count, True, start + count == stop
            if self._segment is not None:
                room = config.max_points_per_segment - self._segment.points_in_segment
                if room > 0:
                    stop = start + min(n - start, room, kernels.BLOCK_LOOKAHEAD)
                    count = self._bulk_inactive(block, start, stop)
                    return count, True, start + count == stop
            # Segment cap exhausted (forced break) or the stream's very
            # first point: nothing to probe against.
            return 0, False, False

        return drive_block_steps(self, block, probe)

    def _bulk_absorb(self, block: "PointBlock", start: int, count: int) -> None:
        """Apply ``count`` successful absorptions (optimisation 5) at once."""
        absorption = self._absorption
        assert absorption is not None
        self._index += count
        self.stats.points_processed += count
        self.stats.distance_computations += count
        self.stats.absorbed_points += count
        absorption.absorbed += count
        absorption.segment = absorption.segment.with_point_count(
            absorption.segment.point_count + count
        ).with_covered_last_index(self._index)
        self._previous_point = block.point(start + count - 1)

    def _bulk_inactive(self, block: "PointBlock", start: int, stop: int) -> int:
        """Bulk-ingest the leading absorbed-inactive run of ``[start, stop)``.

        Returns the run length; all state a per-point loop would have touched
        for those points (fitting statistics, one-sided deviation maxima,
        indices, segment fill) is updated to the identical values.
        """
        segment = self._segment
        assert segment is not None
        fitting = segment.fitting
        config = self.config
        anchor = fitting.anchor
        xs = block.xs[start:stop]
        ys = block.ys[start:stop]
        if not fitting.has_direction:
            count = kernels.prefix_within_radius(
                xs, ys, anchor.x, anchor.y, config.first_active_threshold
            )
            if not count:
                return 0
            fitting.stats.points_observed += count
            fitting.stats.inactive_points += count
        else:
            count, d_plus, d_minus = kernels.operb_fitting_prefix(
                xs,
                ys,
                anchor.x,
                anchor.y,
                fitting.theta,
                fitting.last_active_theta,
                fitting.length,
                config.epsilon,
                config.quarter_epsilon,
                config.half_epsilon,
                config.opt_two_sided_deviation,
                fitting.d_plus_max,
                fitting.d_minus_max,
            )
            if not count:
                return 0
            fitting.d_plus_max = d_plus
            fitting.d_minus_max = d_minus
            fitting.stats.points_observed += count
            fitting.stats.inactive_points += count
            # One fitted-line and one last-active-line check per point.
            fitting.stats.distance_computations += 2 * count
        segment.points_in_segment += count
        self._index += count
        self.stats.points_processed += count
        self._previous_point = block.point(start + count - 1)
        return count

    def finish(self) -> list[SegmentRecord]:
        """Flush and return the remaining segment(s); further pushes are rejected."""
        if self._finished:
            return []
        self._finished = True
        emitted: list[SegmentRecord] = []

        if self._absorption is not None:
            segment = self._absorption.segment
            emitted.append(self._register(segment))
            if self._index > segment.last_index and self._previous_point is not None:
                emitted.append(
                    self._register(
                        SegmentRecord(
                            start=segment.end,
                            end=self._previous_point,
                            first_index=segment.last_index,
                            last_index=self._index,
                            point_count=2,
                        )
                    )
                )
            self._absorption = None
            return emitted

        segment = self._segment
        if segment is None:
            return emitted
        self.stats.merge_fitting(segment.fitting)
        if segment.last_active is not None:
            emitted.append(
                self._register(
                    SegmentRecord(
                        start=segment.anchor,
                        end=segment.last_active,
                        first_index=segment.anchor_index,
                        last_index=segment.last_active_index,
                        # Trailing inactive points were checked against this
                        # segment's lines, so they remain covered by it.
                        covered_last_index=self._index,
                    )
                )
            )
            if self._index > segment.last_active_index and self._previous_point is not None:
                emitted.append(
                    self._register(
                        SegmentRecord(
                            start=segment.last_active,
                            end=self._previous_point,
                            first_index=segment.last_active_index,
                            last_index=self._index,
                        )
                    )
                )
        elif self._index > segment.anchor_index and self._previous_point is not None:
            emitted.append(
                self._register(
                    SegmentRecord(
                        start=segment.anchor,
                        end=self._previous_point,
                        first_index=segment.anchor_index,
                        last_index=self._index,
                    )
                )
            )
        self._segment = None
        return emitted

    def simplify(self, trajectory: Trajectory) -> PiecewiseRepresentation:
        """Simplify a whole trajectory with this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("simplify() requires a fresh simplifier instance")
        segments: list[SegmentRecord] = []
        for point in trajectory:
            segments.extend(self.push(point))
        segments.extend(self.finish())
        return PiecewiseRepresentation(
            segments=segments, source_size=len(trajectory), algorithm=self.name
        )

    # ------------------------------------------------------------------ #
    # Checkpoint protocol
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serialisable state: resuming from it is byte-identical.

        The configuration is not included — :meth:`restore` must be called on
        a fresh simplifier built with the same :class:`OperbConfig`, which is
        the caller's (descriptor's/checkpoint's) responsibility.
        """
        segment = self._segment
        absorption = self._absorption
        return {
            "index": self._index,
            "finished": self._finished,
            "previous_point": encode_point(self._previous_point),
            "stats": vars(self.stats).copy(),
            "segment": None
            if segment is None
            else {
                "anchor": encode_point(segment.anchor),
                "anchor_index": segment.anchor_index,
                "fitting": segment.fitting.snapshot(),
                "last_active": encode_point(segment.last_active),
                "last_active_index": segment.last_active_index,
                "points_in_segment": segment.points_in_segment,
            },
            "absorption": None
            if absorption is None
            else {"segment": absorption.segment.to_dict(), "absorbed": absorption.absorbed},
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("restore() requires a fresh simplifier instance")
        self._index = int(state["index"])
        self._finished = bool(state["finished"])
        self._previous_point = decode_point(state["previous_point"])
        self.stats = OperbStatistics(**state["stats"])
        segment = state["segment"]
        if segment is None:
            self._segment = None
        else:
            self._segment = _SegmentInProgress(
                anchor=Point(*segment["anchor"]),
                anchor_index=int(segment["anchor_index"]),
                fitting=FittingState.from_snapshot(segment["fitting"], self.config),
                last_active=decode_point(segment["last_active"]),
                last_active_index=int(segment["last_active_index"]),
                points_in_segment=int(segment["points_in_segment"]),
            )
        absorption = state["absorption"]
        if absorption is None:
            self._absorption = None
        else:
            self._absorption = _AbsorptionState(
                segment=SegmentRecord.from_dict(absorption["segment"]),
                absorbed=int(absorption["absorbed"]),
            )

    # ------------------------------------------------------------------ #
    # Internal machinery
    # ------------------------------------------------------------------ #
    def _register(self, segment: SegmentRecord) -> SegmentRecord:
        """Account for an emitted segment in the run statistics."""
        self.stats.segments_emitted += 1
        if segment.is_anomalous:
            self.stats.anomalous_segments += 1
        return segment

    def _start_segment(self, anchor: Point, anchor_index: int) -> None:
        """Open a new segment anchored at ``anchor``."""
        self._segment = _SegmentInProgress(
            anchor=anchor,
            anchor_index=anchor_index,
            fitting=FittingState(anchor, self.config),
        )

    def _finalize_segment(self) -> SegmentRecord:
        """Close the current segment, returning its record."""
        segment = self._segment
        if segment is None:
            raise SimplificationError("no open segment to finalise")
        self.stats.merge_fitting(segment.fitting)
        if segment.last_active is not None:
            end_point = segment.last_active
            end_index = segment.last_active_index
        elif self._previous_point is not None and self._index - 1 > segment.anchor_index:
            # Extremely long runs of inactive points can exhaust the per-segment
            # cap before any active point appears; fall back to the previous point.
            end_point = self._previous_point
            end_index = self._index - 1
        else:
            end_point = segment.anchor
            end_index = segment.anchor_index
        # Inactive points observed after the last active point were checked
        # against this segment's lines (not the next segment's), so they stay
        # error-bounded by *this* segment: record them as covered by it.
        covered_last = max(end_index, self._index - 1)
        record = SegmentRecord(
            start=segment.anchor,
            end=end_point,
            first_index=segment.anchor_index,
            last_index=end_index,
            covered_last_index=covered_last,
        )
        self._segment = None
        return record

    def _process_in_segment(
        self, point: Point, index: int, emitted: list[SegmentRecord]
    ) -> None:
        """Feed ``point`` to the open segment, closing it if necessary."""
        segment = self._segment
        assert segment is not None
        cap_exceeded = segment.points_in_segment >= self.config.max_points_per_segment
        if cap_exceeded:
            self.stats.forced_breaks += 1
            outcome = PointOutcome.VIOLATION
        else:
            outcome = segment.fitting.observe(point)

        if outcome is PointOutcome.VIOLATION:
            record = self._finalize_segment()
            if self.config.opt_absorb_trailing_points:
                self._absorption = _AbsorptionState(segment=record)
                if self._try_absorb(point, index):
                    return
                emitted.append(self._end_absorption())
            else:
                emitted.append(self._register(record))
                self._start_segment(record.end, record.last_index)
            # The breaking point is the first point of the fresh segment; a
            # fresh fitting state can never report a violation for it.
            fresh = self._segment
            assert fresh is not None
            fresh_outcome = fresh.fitting.observe(point)
            if fresh_outcome is PointOutcome.VIOLATION:
                raise SimplificationError(
                    "fresh segment rejected its first point; this is a bug"
                )
            if fresh_outcome is PointOutcome.ACTIVE:
                fresh.last_active = point
                fresh.last_active_index = index
            fresh.points_in_segment += 1
            return

        if outcome is PointOutcome.ACTIVE:
            segment.last_active = point
            segment.last_active_index = index
        segment.points_in_segment += 1

    def _try_absorb(self, point: Point, index: int) -> bool:
        """Optimisation 5: try to absorb ``point`` into the pending segment."""
        absorption = self._absorption
        assert absorption is not None
        segment = absorption.segment
        self.stats.distance_computations += 1
        distance = ped_point_to_chord(
            point.x, point.y, segment.start.x, segment.start.y, segment.end.x, segment.end.y
        )
        if distance > self.config.epsilon:
            return False
        absorption.absorbed += 1
        self.stats.absorbed_points += 1
        absorption.segment = segment.with_point_count(
            segment.point_count + 1
        ).with_covered_last_index(index)
        return True

    def _end_absorption(self) -> SegmentRecord:
        """Stop absorbing, emit the pending segment, and open the next one."""
        absorption = self._absorption
        assert absorption is not None
        record = absorption.segment
        self._absorption = None
        self._start_segment(record.end, record.last_index)
        return self._register(record)


def operb(
    trajectory: Trajectory, epsilon: float, *, config: OperbConfig | None = None
) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with OPERB (all optimisations enabled).

    Parameters
    ----------
    trajectory:
        The trajectory to compress.
    epsilon:
        The error bound ``zeta``.
    config:
        Optional fully-specified configuration; when provided, ``epsilon`` is
        ignored in favour of ``config.epsilon``.
    """
    if config is None:
        config = OperbConfig.optimized(epsilon)
    return OPERBSimplifier(config).simplify(trajectory)


def raw_operb(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with Raw-OPERB (no optimisations, Figure 7 only)."""
    representation = OPERBSimplifier(OperbConfig.raw(epsilon)).simplify(trajectory)
    representation.algorithm = "raw-operb"
    return representation
