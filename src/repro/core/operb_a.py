"""OPERB-A — the aggressive one-pass simplifier with patch points (Section 5).

OPERB-A runs the OPERB engine underneath and post-processes its finalised
segments with the paper's *lazy output policy*: a segment is held back until
it is known whether the following segment is anomalous and, if so, whether
the anomaly can be removed by interpolating a patch point at the intersection
of the surrounding segment lines.  Because patching never changes the line of
any segment, OPERB-A keeps OPERB's error bound, one-pass behaviour and O(1)
space (the buffer holds at most two segments).
"""

from __future__ import annotations

from dataclasses import dataclass, replace
from typing import TYPE_CHECKING, Iterator

from ..exceptions import SimplificationError
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import (
    PiecewiseRepresentation,
    SegmentCascadeMixin,
    SegmentRecord,
)
from .config import OperbAConfig, OperbConfig
from .operb import OPERBSimplifier, OperbStatistics
from .patching import compute_patch_point

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectory.soa import PointBlock

__all__ = ["OperbAStatistics", "OPERBASimplifier", "operb_a", "raw_operb_a"]


@dataclass
class OperbAStatistics:
    """Patch-related counters of an OPERB-A run."""

    anomalous_segments: int = 0
    patches_applied: int = 0
    patches_rejected: int = 0
    rejection_reasons: dict[str, int] | None = None

    def __post_init__(self) -> None:
        if self.rejection_reasons is None:
            self.rejection_reasons = {}

    @property
    def patching_ratio(self) -> float:
        """``Np / Na`` — patched over encountered anomalous segments (Exp-4.1)."""
        if self.anomalous_segments == 0:
            return 0.0
        return self.patches_applied / self.anomalous_segments


class OPERBASimplifier(SegmentCascadeMixin):
    """Streaming OPERB-A simplifier.

    Parameters
    ----------
    config:
        An :class:`~repro.core.config.OperbAConfig`; use
        ``OperbAConfig.optimized(epsilon)`` for the paper's OPERB-A and
        ``OperbAConfig.raw(epsilon)`` for Raw-OPERB-A.
    """

    name = "operb-a"

    # Not snapshot state (RPA001): the config is immutable and supplied by
    # the restoring side.
    _SNAPSHOT_EXCLUDE = frozenset({"config"})

    def __init__(self, config: OperbAConfig) -> None:
        self.config = config
        self._engine = OPERBSimplifier(config.base)
        self._pending: list[SegmentRecord] = []
        self.stats = OperbAStatistics()
        self._finished = False

    # ------------------------------------------------------------------ #
    # Public streaming API
    # ------------------------------------------------------------------ #
    @property
    def epsilon(self) -> float:
        """The error bound this simplifier enforces."""
        return self.config.epsilon

    @property
    def engine_stats(self) -> OperbStatistics:
        """Statistics of the underlying OPERB engine."""
        return self._engine.stats

    @property
    def is_finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed the next trajectory point; return any finalised segments."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        emitted: list[SegmentRecord] = []
        for segment in self._engine.push(point):
            emitted.extend(self._accept(segment))
        return emitted

    def push_block(self, block: "PointBlock") -> list[SegmentRecord]:
        """Feed a whole SoA block of points; return the finalised segments.

        The OPERB engine underneath ingests the block through its vectorized
        fast path; every segment it finalises runs through the same lazy
        patching buffer as in per-point mode, so the output (and
        :meth:`snapshot`) is byte-identical to pushing point by point.
        """
        emitted: list[SegmentRecord] = []
        for _, segments in self.push_block_steps(block):
            emitted.extend(segments)
        return emitted

    def push_block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced form of :meth:`push_block` (see ``OPERBSimplifier``)."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        if len(block) == 0:
            return iter(())
        return self._block_steps(block)

    def _block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        silent = 0
        steps = self._engine.push_block_steps(block)
        while True:
            try:
                count, segments = next(steps)
                emitted: list[SegmentRecord] = []
                for segment in segments:
                    emitted.extend(self._accept(segment))
            except StopIteration:
                break
            except BaseException:
                # Deliver the coalesced silent prefix before the failure
                # surfaces, so traced consumers account the ingested points
                # exactly as per-point routing would (the engine has already
                # delivered its own pending prefix the same way).
                if silent:
                    yield silent, []
                raise
            # The lazy buffer may hold everything back, turning an emitting
            # engine step into a silent one at this level.
            if emitted:
                yield silent + count, emitted
                silent = 0
            else:
                silent += count
        if silent:
            yield silent, []

    def finish(self) -> list[SegmentRecord]:
        """Flush the engine and the lazy buffer."""
        if self._finished:
            return []
        emitted: list[SegmentRecord] = []
        for segment in self._engine.finish():
            emitted.extend(self._accept(segment))
        emitted.extend(self._pending)
        self._pending = []
        self._finished = True
        return emitted

    def simplify(self, trajectory: Trajectory) -> PiecewiseRepresentation:
        """Simplify a whole trajectory with this (fresh) simplifier instance."""
        if self._finished or self._pending or self._engine.stats.points_processed:
            raise SimplificationError("simplify() requires a fresh simplifier instance")
        segments: list[SegmentRecord] = []
        for point in trajectory:
            segments.extend(self.push(point))
        segments.extend(self.finish())
        return PiecewiseRepresentation(
            segments=segments, source_size=len(trajectory), algorithm=self.name
        )

    # ------------------------------------------------------------------ #
    # Checkpoint protocol
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serialisable state: engine snapshot plus the lazy buffer."""
        stats = vars(self.stats).copy()
        stats["rejection_reasons"] = dict(stats["rejection_reasons"] or {})
        return {
            "engine": self._engine.snapshot(),
            "pending": [segment.to_dict() for segment in self._pending],
            "stats": stats,
            "finished": self._finished,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) simplifier instance."""
        if self._finished or self._pending or self._engine.stats.points_processed:
            raise SimplificationError("restore() requires a fresh simplifier instance")
        self._engine.restore(state["engine"])
        self._pending = [SegmentRecord.from_dict(entry) for entry in state["pending"]]
        self.stats = OperbAStatistics(**state["stats"])
        self._finished = bool(state["finished"])

    # ------------------------------------------------------------------ #
    # Lazy output policy
    # ------------------------------------------------------------------ #
    def _accept(self, segment: SegmentRecord) -> list[SegmentRecord]:
        """Run one finalised segment through the lazy buffer."""
        if segment.is_anomalous:
            self.stats.anomalous_segments += 1

        if not self._pending:
            self._pending = [segment]
            return []

        if len(self._pending) == 1:
            previous = self._pending[0]
            # A segment may only be patched away when no other point relies on
            # it for its error bound: it must represent exactly its own two
            # endpoints and must not have absorbed any trailing points.
            patchable = (
                segment.is_anomalous
                and segment.covered_last_index == segment.last_index
                and self.config.enable_patching
            )
            if patchable:
                # Hold both: the patch decision needs the *next* segment too.
                self._pending = [previous, segment]
                return []
            self._pending = [segment]
            return [previous]

        previous, anomalous = self._pending
        decision = compute_patch_point(
            previous, segment, epsilon=self.config.epsilon, gamma_max=self.config.gamma_max
        )
        if decision.accepted:
            patch = decision.patch_point
            assert patch is not None
            patched_previous = replace(previous, end=patch, patched_end=True)
            patched_next = replace(segment, start=patch, patched_start=True)
            self.stats.patches_applied += 1
            self._pending = [patched_next]
            return [patched_previous]

        self.stats.patches_rejected += 1
        assert self.stats.rejection_reasons is not None
        self.stats.rejection_reasons[decision.reason] = (
            self.stats.rejection_reasons.get(decision.reason, 0) + 1
        )
        self._pending = [segment]
        return [previous, anomalous]


def operb_a(
    trajectory: Trajectory,
    epsilon: float,
    *,
    gamma_max: float | None = None,
    config: OperbAConfig | None = None,
) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with OPERB-A (all optimisations + patching)."""
    if config is None:
        if gamma_max is None:
            config = OperbAConfig.optimized(epsilon)
        else:
            config = OperbAConfig.optimized(epsilon, gamma_max=gamma_max)
    return OPERBASimplifier(config).simplify(trajectory)


def raw_operb_a(
    trajectory: Trajectory, epsilon: float, *, gamma_max: float | None = None
) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with Raw-OPERB-A (no optimisations, patching on)."""
    base = OperbConfig.raw(epsilon)
    if gamma_max is None:
        config = OperbAConfig(base=base)
    else:
        config = OperbAConfig(base=base, gamma_max=gamma_max)
    representation = OPERBASimplifier(config).simplify(trajectory)
    representation.algorithm = "raw-operb-a"
    return representation
