"""The paper's primary contribution: OPERB, OPERB-A and the fitting function."""

from .config import (
    DEFAULT_MAX_POINTS_PER_SEGMENT,
    KERNEL_BACKENDS,
    OperbAConfig,
    OperbConfig,
    get_kernel_backend,
    kernel_backend,
    set_kernel_backend,
    use_vectorized_kernels,
)
from .fitting import FittingState, PointOutcome, rotation_sign, zone_index
from .operb import OPERBSimplifier, OperbStatistics, operb, raw_operb
from .operb_a import OPERBASimplifier, OperbAStatistics, operb_a, raw_operb_a
from .patching import PatchDecision, compute_patch_point, turn_angle_between

__all__ = [
    "DEFAULT_MAX_POINTS_PER_SEGMENT",
    "KERNEL_BACKENDS",
    "FittingState",
    "get_kernel_backend",
    "kernel_backend",
    "set_kernel_backend",
    "use_vectorized_kernels",
    "OPERBASimplifier",
    "OPERBSimplifier",
    "OperbAConfig",
    "OperbAStatistics",
    "OperbConfig",
    "OperbStatistics",
    "PatchDecision",
    "PointOutcome",
    "compute_patch_point",
    "operb",
    "operb_a",
    "raw_operb",
    "raw_operb_a",
    "rotation_sign",
    "turn_angle_between",
    "zone_index",
]
