"""The fitting function ``F`` and its per-segment state (paper Section 4.1).

For the sub-trajectory starting at the anchor ``Ps``, the fitting function
maintains a single directed line segment ``L = (Ps, |L|, L.theta)`` that fits
all previously processed points.  Each incoming point ``P`` is compared with
``L`` (and with the line to the last active point) exactly once, which is what
makes OPERB one-pass:

* **inactive points** — ``|R| - |L| <= zeta / 4`` — leave ``L`` unchanged
  (case 1 of ``F``) and only need a distance check;
* **active points** — the remaining points — move ``L`` into the zone
  ``Z_j`` with ``j = ceil(2 |R| / zeta - 0.5)`` and rotate it towards the
  point by ``arcsin(d / (j zeta / 2)) / j`` (cases 2 and 3 of ``F``).

The five optimisations of Section 4.4 plug into this state: the first-active
threshold (opt. 1), the two-sided deviation budget (opt. 2), the aggressive
rotation (opt. 3) and the missing-zone compensation (opt. 4).  Optimisation 5
lives in the OPERB driver because it concerns already-finalised segments.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from enum import Enum

from ..geometry.angles import normalize_angle
from ..geometry.kernels import (
    anchored_ped_point,
    radial_length_point,
    rotation_sign_components,
)
from ..geometry.point import Point, decode_point, encode_point

__all__ = ["PointOutcome", "FittingState", "zone_index", "rotation_sign"]


class PointOutcome(Enum):
    """What happened when a point was offered to the fitting state."""

    ABSORBED = "absorbed"
    """The point is inactive and representable by the current segment."""

    ACTIVE = "active"
    """The point became the segment's new last active point."""

    VIOLATION = "violation"
    """The point cannot be represented; the current segment must be closed."""


def zone_index(r_len: float, epsilon: float) -> int:
    """Zone index ``j = ceil(2 |R| / zeta - 0.5)`` of a point at distance ``|R|``.

    Zone ``Z_j`` contains the points whose distance to the anchor lies in
    ``(j zeta/2 - zeta/4, j zeta/2 + zeta/4]``.
    """
    j = math.ceil(2.0 * r_len / epsilon - 0.5)
    return max(0, j)


def rotation_sign(r_theta: float, line_theta: float) -> int:
    """The paper's sign function ``f(R_i, L_{i-1})``.

    Returns ``+1`` when the included angle ``R_i.theta - L_{i-1}.theta`` falls
    in ``(-2pi, -3pi/2] U [-pi, -pi/2] U [0, pi/2] U [pi, 3pi/2)`` and ``-1``
    otherwise.  Geometrically this rotates the fitted *line* towards the line
    through the anchor and the new point by the smaller of the two possible
    rotations.
    """
    delta = normalize_angle(r_theta) - normalize_angle(line_theta)
    delta = normalize_angle(delta)  # fold into [0, 2*pi)
    half_pi = 0.5 * math.pi
    if 0.0 <= delta <= half_pi or math.pi <= delta < 1.5 * math.pi:
        return 1
    return -1


@dataclass
class FittingStatistics:
    """Counters describing how a fitting state processed its points."""

    points_observed: int = 0
    active_points: int = 0
    inactive_points: int = 0
    violations: int = 0
    distance_computations: int = 0


class FittingState:
    """Mutable per-segment state of the fitting function ``F``.

    Parameters
    ----------
    anchor:
        The segment start point ``Ps``.
    config:
        The OPERB configuration (error bound and optimisation flags).
    """

    __slots__ = (
        "anchor",
        "config",
        "length",
        "theta",
        "has_direction",
        "last_active_point",
        "last_active_theta",
        "last_active_zone",
        "d_plus_max",
        "d_minus_max",
        "stats",
    )

    # Not snapshot state (RPA001): the config is immutable and supplied by
    # the restoring simplifier, which owns it.
    _SNAPSHOT_EXCLUDE = frozenset({"config"})

    def __init__(self, anchor: Point, config) -> None:
        self.anchor = anchor
        self.config = config
        self.length = 0.0
        self.theta = 0.0
        self.has_direction = False
        self.last_active_point: Point | None = None
        self.last_active_theta = 0.0
        self.last_active_zone = 0
        self.d_plus_max = 0.0
        self.d_minus_max = 0.0
        self.stats = FittingStatistics()

    # ------------------------------------------------------------------ #
    # Checkpoint protocol
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serialisable state of the fitting function ``F``.

        The configuration is *not* part of the snapshot: a restored state is
        always rebuilt against the simplifier's own (identical) config, so a
        checkpoint never has to serialise optimisation flags.
        """
        return {
            "anchor": encode_point(self.anchor),
            "length": self.length,
            "theta": self.theta,
            "has_direction": self.has_direction,
            "last_active_point": encode_point(self.last_active_point),
            "last_active_theta": self.last_active_theta,
            "last_active_zone": self.last_active_zone,
            "d_plus_max": self.d_plus_max,
            "d_minus_max": self.d_minus_max,
            "stats": vars(self.stats).copy(),
        }

    @classmethod
    def from_snapshot(cls, payload: dict, config) -> "FittingState":
        """Rebuild a fitting state from :meth:`snapshot` output."""
        state = cls(Point(*payload["anchor"]), config)
        state.length = float(payload["length"])
        state.theta = float(payload["theta"])
        state.has_direction = bool(payload["has_direction"])
        state.last_active_point = decode_point(payload["last_active_point"])
        state.last_active_theta = float(payload["last_active_theta"])
        state.last_active_zone = int(payload["last_active_zone"])
        state.d_plus_max = float(payload["d_plus_max"])
        state.d_minus_max = float(payload["d_minus_max"])
        state.stats = FittingStatistics(**payload["stats"])
        return state

    # ------------------------------------------------------------------ #
    # Geometry helpers
    # ------------------------------------------------------------------ #
    def _distance_to_fitted_line(self, point: Point) -> float:
        """Distance from ``point`` to the line through the anchor along ``theta``.

        Routed through the scalar anchored-PED kernel — the streaming
        one-point path stays scalar by construction (O(1) state, one point
        at a time), independent of the kernel backend flag.
        """
        self.stats.distance_computations += 1
        return anchored_ped_point(
            point.x, point.y, self.anchor.x, self.anchor.y, self.theta
        )

    def _distance_to_last_active_line(self, point: Point) -> float:
        """Distance from ``point`` to the line anchor -> last active point (``R_a``)."""
        self.stats.distance_computations += 1
        return anchored_ped_point(
            point.x, point.y, self.anchor.x, self.anchor.y, self.last_active_theta
        )

    def _deviation_acceptable(self, deviation: float, sign: int) -> bool:
        """Check the per-point deviation budget (plain or optimisation 2)."""
        if self.config.opt_two_sided_deviation:
            plus = self.d_plus_max
            minus = self.d_minus_max
            if sign > 0:
                plus = max(plus, deviation)
            else:
                minus = max(minus, deviation)
            return plus + minus <= self.config.epsilon
        return deviation <= self.config.half_epsilon

    def _record_deviation(self, deviation: float, sign: int) -> None:
        """Update the running one-sided maxima used by optimisations 2 and 3."""
        if sign > 0:
            if deviation > self.d_plus_max:
                self.d_plus_max = deviation
        else:
            if deviation > self.d_minus_max:
                self.d_minus_max = deviation

    # ------------------------------------------------------------------ #
    # Main entry point
    # ------------------------------------------------------------------ #
    def observe(self, point: Point) -> PointOutcome:
        """Offer ``point`` to the fitting state and report the outcome.

        The point is examined exactly once; at most three scalar distance
        computations are performed, which is what gives OPERB its ``O(n)``
        time and ``O(1)`` space behaviour.

        The radial length uses ``sqrt(dx*dx + dy*dy)`` and the rotation sign
        is decided from the cross/dot components of the radial vector (see
        :func:`repro.geometry.kernels.rotation_sign_components`) rather than
        via ``hypot``/``atan2``: the block kernel
        :func:`repro.geometry.kernels.operb_fitting_prefix` performs the
        identical IEEE operations on whole arrays, so the batched ingest
        path reproduces these per-point decisions bit for bit.
        """
        self.stats.points_observed += 1
        dx = point.x - self.anchor.x
        dy = point.y - self.anchor.y
        r_len = radial_length_point(dx, dy)

        if not self.has_direction:
            # No active point yet: L is still the zero-length segment at Ps.
            if r_len > self.config.first_active_threshold:
                self._become_first_active(point, r_len, self._radial_direction(dx, dy))
                self.stats.active_points += 1
                return PointOutcome.ACTIVE
            # Every line through Ps is within r_len <= threshold <= zeta of P.
            self.stats.inactive_points += 1
            return PointOutcome.ABSORBED

        is_active = (r_len - self.length) > self.config.quarter_epsilon
        cos_t = math.cos(self.theta)
        sin_t = math.sin(self.theta)
        cross = cos_t * dy - sin_t * dx
        deviation = abs(cross)
        self.stats.distance_computations += 1
        sign = rotation_sign_components(
            cross, cos_t * dx + sin_t * dy, dx, dy, self.theta
        )

        if not is_active:
            if not self._deviation_acceptable(deviation, sign):
                self.stats.violations += 1
                return PointOutcome.VIOLATION
            if self._distance_to_last_active_line(point) > self.config.epsilon:
                self.stats.violations += 1
                return PointOutcome.VIOLATION
            self._record_deviation(deviation, sign)
            self.stats.inactive_points += 1
            return PointOutcome.ABSORBED

        if not self._deviation_acceptable(deviation, sign):
            self.stats.violations += 1
            return PointOutcome.VIOLATION
        self._record_deviation(deviation, sign)
        self._advance_active(point, r_len, self._radial_direction(dx, dy), deviation, sign)
        self.stats.active_points += 1
        return PointOutcome.ACTIVE

    @staticmethod
    def _radial_direction(dx: float, dy: float) -> float:
        """Direction of the radial vector in ``[0, 2*pi)`` (zero vector -> 0).

        Only active points need the actual angle (for the rotation update);
        absorbed points are classified without ``atan2``, which is what the
        block kernels vectorize.
        """
        r_theta = math.atan2(dy, dx) if (dx != 0.0 or dy != 0.0) else 0.0
        if r_theta < 0.0:
            r_theta += 2.0 * math.pi
        return r_theta

    # ------------------------------------------------------------------ #
    # Fitting function cases
    # ------------------------------------------------------------------ #
    def _become_first_active(self, point: Point, r_len: float, r_theta: float) -> None:
        """Case 2 of ``F``: the first active point fixes the initial direction."""
        j = max(1, zone_index(r_len, self.config.epsilon))
        self.length = j * self.config.half_epsilon
        self.theta = r_theta
        self.has_direction = True
        self.last_active_point = point
        self.last_active_theta = r_theta
        self.last_active_zone = j

    def _advance_active(
        self, point: Point, r_len: float, r_theta: float, deviation: float, sign: int
    ) -> None:
        """Case 3 of ``F``: rotate ``L`` towards the new active point.

        The rotation is ``arcsin(d / (j zeta/2)) / j`` in the raw algorithm;
        optimisation 3 may substitute the running one-sided maximum deviation
        (never rotating further than ``arcsin(d / (j zeta/2))``), and
        optimisation 4 multiplies by the number of zones skipped since the
        previous active point.
        """
        j = max(1, zone_index(r_len, self.config.epsilon))
        half_len = j * self.config.half_epsilon

        if self.config.opt_missing_zone_compensation:
            delta_zones = max(1, j - self.last_active_zone)
        else:
            delta_zones = 1

        if self.config.opt_aggressive_rotation:
            side_max = self.d_plus_max if sign > 0 else self.d_minus_max
            rotation_deviation = max(deviation, side_max)
        else:
            rotation_deviation = deviation

        ratio = min(1.0, rotation_deviation / half_len)
        base_ratio = min(1.0, deviation / half_len)
        rotation = math.asin(ratio) * (delta_zones / j)
        # Optimisation 3's cap: never rotate past the undivided arcsin of the
        # actual deviation of the current point.
        rotation = min(rotation, math.asin(base_ratio))

        self.theta = normalize_angle(self.theta + sign * rotation)
        self.length = half_len
        self.last_active_point = point
        self.last_active_theta = r_theta
        self.last_active_zone = j
