"""Patch-point computation for OPERB-A (paper Section 5.1).

An *anomalous* line segment represents only its own two endpoints.  When an
anomalous segment ``R_i`` sits between two segments ``R_{i-1}`` and
``R_{i+1}``, OPERB-A tries to replace the three segments' shared corner with a
single interpolated *patch point* ``G`` — the intersection of the lines
carrying ``R_{i-1}`` and ``R_{i+1}`` — subject to three practical
restrictions:

1. ``G`` lies on both lines, forward of ``R_{i-1}``'s start and behind
   ``R_{i+1}``'s start;
2. ``|Ps G| >= |Ps Pe| - zeta / 2`` where ``Ps``/``Pe`` are the endpoints of
   ``R_{i-1}`` (the patch point may retreat by at most half the error bound);
3. the direction change from ``R_{i-1}`` to ``R_{i+1}`` is at most
   ``pi - gamma_m`` (no near-U-turns), with ``gamma_m = pi / 3`` by default.

Patching never changes the line of any segment, so OPERB-A inherits OPERB's
error bound unchanged.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry.angles import angle_of, normalize_signed_angle
from ..geometry.intersection import intersect_lines, project_onto_direction
from ..geometry.point import Point
from ..trajectory.piecewise import SegmentRecord

__all__ = ["PatchDecision", "compute_patch_point", "turn_angle_between"]


@dataclass(frozen=True, slots=True)
class PatchDecision:
    """The result of a patch attempt.

    Attributes
    ----------
    patch_point:
        The interpolated point ``G`` when patching is possible, else ``None``.
    reason:
        A short machine-readable explanation when patching was rejected
        (useful for diagnostics and for the gamma-sweep experiment).
    """

    patch_point: Point | None
    reason: str = ""

    @property
    def accepted(self) -> bool:
        """Whether a patch point was produced."""
        return self.patch_point is not None


def turn_angle_between(previous: SegmentRecord, following: SegmentRecord) -> float:
    """Absolute direction change between two segments, in ``[0, pi]``."""
    theta_prev = angle_of(previous.end.x - previous.start.x, previous.end.y - previous.start.y)
    theta_next = angle_of(following.end.x - following.start.x, following.end.y - following.start.y)
    return abs(normalize_signed_angle(theta_next - theta_prev))


def compute_patch_point(
    previous: SegmentRecord,
    following: SegmentRecord,
    *,
    epsilon: float,
    gamma_max: float,
) -> PatchDecision:
    """Try to compute the patch point between ``previous`` and ``following``.

    ``previous`` is the segment before the anomalous one (``R_{i-1}``) and
    ``following`` the segment after it (``R_{i+1}``).  The anomalous segment
    itself is implicit: its endpoints are ``previous.end`` and
    ``following.start``.
    """
    if previous.length == 0.0 or following.length == 0.0:
        return PatchDecision(None, reason="degenerate-neighbour")

    theta_prev = angle_of(
        previous.end.x - previous.start.x, previous.end.y - previous.start.y
    )
    theta_next = angle_of(
        following.end.x - following.start.x, following.end.y - following.start.y
    )

    # Condition 3: the direction change must stay within pi - gamma_max.
    # This runs once per closed segment on the one-pass stream, so it stays
    # a scalar check; repro.geometry.kernels.angular_ranges_overlap is the
    # equivalent batched form for fleet-level analyses.
    turn = abs(normalize_signed_angle(theta_next - theta_prev))
    if turn > math.pi - gamma_max:
        return PatchDecision(None, reason="turn-angle")

    intersection = intersect_lines(
        previous.start, previous.end, following.start, following.end
    )
    if intersection is None:
        return PatchDecision(None, reason="parallel-lines")

    # Condition 1a: G lies forward of previous.start along previous' direction.
    forward_on_previous = project_onto_direction(intersection, previous.start, theta_prev)
    if forward_on_previous < 0.0:
        return PatchDecision(None, reason="behind-previous-start")

    # Condition 1b: following.start lies forward of G along following's
    # direction (so G -> following.start -> following.end are collinear and
    # ordered, i.e. G sits on the backward extension of the following segment).
    forward_to_following_start = project_onto_direction(
        following.start, intersection, theta_next
    )
    if forward_to_following_start < -1e-9:
        return PatchDecision(None, reason="beyond-following-start")

    # Condition 2: |Ps G| >= |Ps Pe| - zeta / 2.
    if forward_on_previous < previous.length - 0.5 * epsilon:
        return PatchDecision(None, reason="retreats-too-far")

    timestamp = 0.5 * (previous.end.t + following.start.t)
    patch = Point(intersection.x, intersection.y, timestamp)
    return PatchDecision(patch)
