"""``repro-traj`` — command-line interface to the OPERB reproduction.

Sub-commands
------------
``algorithms``
    Print the capability table of every registered algorithm (streaming?,
    one-pass?, error metric, accepted options).
``compress``
    Simplify one trajectory file (CSV or GeoLife PLT) with a chosen algorithm.
``evaluate``
    Compare several algorithms on one trajectory file.
``generate``
    Synthesise a dataset following one of the paper's profiles.
``experiment``
    Re-run one (or all) of the paper's tables/figures.
``perf``
    Run the performance harness (or diff two of its reports) and gate on
    throughput regressions.
``serve-replay``
    Replay a multi-device point log through the streaming hub with periodic
    checkpoints; ``--resume`` continues an interrupted replay byte-identically,
    ``--store`` persists the emitted segments into a queryable segment store,
    ``--epsilons`` serves a whole epsilon pyramid (multiple resolutions) in
    the same single pass.
``query``
    Query a segment store (``--device``, ``--window``, ``--bbox``,
    ``--epsilon``, or pyramid selectors ``--level``/``--max-deviation``)
    with zone-map data skipping, or compute sliding-window aggregates over
    the matches (served from zone-map sidecars alone when the windows fully
    cover the partitions).
``compact``
    Rewrite a store's multi-chunk partitions into single-chunk form —
    byte-identical query results, fewer chunk headers to decode — and
    repair any crash-salvaged partitions.
``lint``
    Run the AST-based invariant linter (:mod:`repro.analysis`) over the
    source tree, gated on the committed ``analysis_baseline.json``.
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from .._version import __version__
from ..exceptions import ReproError
from . import commands

__all__ = ["build_parser", "main"]


def build_parser() -> argparse.ArgumentParser:
    """Construct the top-level argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro-traj",
        description="One-pass error bounded trajectory simplification (OPERB/OPERB-A)",
    )
    parser.add_argument("--version", action="version", version=f"%(prog)s {__version__}")
    subparsers = parser.add_subparsers(dest="command", required=True)

    list_parser = subparsers.add_parser(
        "algorithms", help="print the algorithm capability table"
    )
    list_parser.add_argument(
        "--names", action="store_true", help="print bare algorithm names only"
    )
    list_parser.set_defaults(handler=commands.cmd_list_algorithms)

    compress = subparsers.add_parser("compress", help="simplify one trajectory file")
    compress.add_argument("input", help="input trajectory (.csv with x,y,t columns or .plt)")
    compress.add_argument("--epsilon", type=float, default=40.0, help="error bound in metres")
    compress.add_argument("--algorithm", default="operb", help="algorithm name (see 'algorithms')")
    compress.add_argument("--output", help="write the retained vertices to this CSV file")
    compress.set_defaults(handler=commands.cmd_compress)

    evaluate = subparsers.add_parser("evaluate", help="compare algorithms on one trajectory file")
    evaluate.add_argument("input", help="input trajectory (.csv or .plt)")
    evaluate.add_argument("--epsilon", type=float, default=40.0, help="error bound in metres")
    evaluate.add_argument(
        "--algorithms", nargs="*", default=None, help="algorithms to compare (default: paper set)"
    )
    evaluate.add_argument("--json", help="also write the reports to this JSON file")
    evaluate.set_defaults(handler=commands.cmd_evaluate)

    generate = subparsers.add_parser("generate", help="synthesise a dataset")
    generate.add_argument("profile", help="dataset profile: taxi, truck, sercar or geolife")
    generate.add_argument("output", help="output directory (CSV per trajectory) or .jsonl file")
    generate.add_argument("--trajectories", type=int, default=10, help="number of trajectories")
    generate.add_argument("--points", type=int, default=5000, help="points per trajectory")
    generate.add_argument("--seed", type=int, default=2017, help="random seed")
    generate.set_defaults(handler=commands.cmd_generate)

    experiment = subparsers.add_parser("experiment", help="re-run paper experiments")
    experiment.add_argument(
        "--id",
        default="all",
        help="experiment id (table1, fig12 ... fig19-2) or 'all'",
    )
    experiment.add_argument("--trajectories", type=int, default=2, help="trajectories per dataset")
    experiment.add_argument("--points", type=int, default=2000, help="points per trajectory")
    experiment.add_argument("--seed", type=int, default=2017, help="random seed")
    experiment.add_argument("--markdown", help="write a markdown report to this path")
    experiment.set_defaults(handler=commands.cmd_experiment)

    serve = subparsers.add_parser(
        "serve-replay",
        help="replay a multi-device point log through the streaming hub",
    )
    serve.add_argument(
        "input",
        nargs="?",
        help="JSONL point log ({'device','x','y','t'} per line); "
        "omit when using --synthetic",
    )
    serve.add_argument(
        "--synthetic",
        metavar="PROFILE",
        help="generate the log instead: taxi, truck, sercar or geolife",
    )
    serve.add_argument("--devices", type=int, default=64, help="synthetic device count")
    serve.add_argument(
        "--points", type=int, default=200, help="synthetic points per device"
    )
    serve.add_argument("--seed", type=int, default=2017, help="synthetic log seed")
    serve.add_argument("--epsilon", type=float, default=40.0, help="error bound in metres")
    serve.add_argument(
        "--epsilons",
        type=float,
        nargs="+",
        default=None,
        metavar="EPS",
        help="strictly ascending epsilon ladder for single-pass multi-"
        "resolution serving (first value is the finest level and overrides "
        "--epsilon; with --store every level is persisted level-tagged)",
    )
    serve.add_argument(
        "--algorithm", default="operb", help="default algorithm for every device"
    )
    serve.add_argument(
        "--shards",
        type=int,
        default=None,
        help="hub shard partitions (default 4; with --resume, re-shards the "
        "restored devices instead of keeping the checkpoint layout)",
    )
    serve.add_argument(
        "--backend",
        default="serial",
        choices=["serial", "thread", "process", "node"],
        help="execution backend driving the hub shards (default serial)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="worker count for the thread/process/node backends (default: CPU "
        "count, clamped to the shard count)",
    )
    serve.add_argument(
        "--block-size",
        type=int,
        default=4096,
        metavar="N",
        help="records per shipped ingest batch; shard workers regroup each "
        "batch into per-device SoA point blocks for the vectorized "
        "push_block path (default 4096; purely an execution knob — any "
        "value produces byte-identical output)",
    )
    serve.add_argument(
        "--checkpoint", metavar="PATH", help="write hub checkpoints to this JSON file"
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=0,
        metavar="N",
        help="checkpoint every N replayed points (0: only at the end)",
    )
    serve.add_argument(
        "--resume",
        metavar="PATH",
        help="resume from this checkpoint (skips the already-ingested points)",
    )
    serve.add_argument(
        "--output", help="stream finalised segments to this CSV file"
    )
    serve.add_argument(
        "--store",
        metavar="DIR",
        help="persist finalised segments into the segment store at this "
        "directory (created when missing; query it with 'repro-traj query')",
    )
    serve.add_argument(
        "--time-bucket",
        type=float,
        default=None,
        metavar="SECONDS",
        help="partition width on the time axis when --store creates a new "
        "store (default 3600; an existing store keeps its own)",
    )
    serve.set_defaults(handler=commands.cmd_serve_replay)

    query = subparsers.add_parser(
        "query",
        help="query a segment store with zone-map data skipping",
    )
    query.add_argument("store", help="segment store directory (see serve-replay --store)")
    query.add_argument("--device", help="exact device id to match")
    query.add_argument(
        "--window",
        metavar="T0:T1",
        help="time window; matches segments whose time span intersects [T0, T1]",
    )
    query.add_argument(
        "--bbox",
        metavar="XMIN,YMIN,XMAX,YMAX",
        help="spatial bounding box; matches segments whose endpoint box "
        "intersects it",
    )
    query.add_argument(
        "--epsilon",
        type=float,
        default=None,
        help="match only segments simplified under exactly this error bound",
    )
    query.add_argument(
        "--level",
        type=int,
        default=None,
        metavar="K",
        help="match the K-th level of the store's epsilon ladder (0 = finest; "
        "mutually exclusive with --epsilon/--max-deviation)",
    )
    query.add_argument(
        "--max-deviation",
        type=float,
        default=None,
        metavar="SLA",
        help="deviation SLA: match the coarsest stored level whose epsilon "
        "does not exceed SLA (mutually exclusive with --epsilon/--level)",
    )
    query.add_argument(
        "--aggregate",
        metavar="WIDTH[:STEP]",
        help="instead of listing segments, compute sliding-window aggregates "
        "of the matches (window WIDTH, advancing by STEP; default tumbling)",
    )
    query.add_argument(
        "--full-scan",
        action="store_true",
        help="bypass zone-map pruning and read every partition (results are "
        "identical; use to audit or measure data skipping)",
    )
    query.add_argument(
        "--limit",
        type=int,
        default=10,
        metavar="N",
        help="segments to print in text output (default 10; 0 prints all)",
    )
    query.add_argument(
        "--json", action="store_true", help="emit the full result as JSON"
    )
    query.set_defaults(handler=commands.cmd_query)

    compact = subparsers.add_parser(
        "compact",
        help="compact a segment store's partitions (many chunks -> one)",
    )
    compact.add_argument(
        "store", help="segment store directory (see serve-replay --store)"
    )
    compact.add_argument("--device", help="compact only this device's partitions")
    compact.add_argument(
        "--min-chunks",
        type=int,
        default=2,
        metavar="N",
        help="leave healthy partitions with fewer than N chunks untouched "
        "(default 2; crash-damaged partitions are always repaired)",
    )
    compact.add_argument(
        "--json", action="store_true", help="emit the compaction report as JSON"
    )
    compact.set_defaults(handler=commands.cmd_compact)

    lint = subparsers.add_parser(
        "lint", help="run the invariant linter over the source tree"
    )
    lint.add_argument(
        "paths",
        nargs="*",
        help="files or directories to lint (default: src/repro)",
    )
    lint.add_argument(
        "--rule",
        action="append",
        metavar="ID",
        help="run only this rule (repeatable; default: all registered rules)",
    )
    lint.add_argument(
        "--format",
        default="text",
        choices=["text", "json"],
        help="report format (default text)",
    )
    lint.add_argument(
        "--baseline",
        metavar="FILE",
        help="baseline allowlist of tracked findings "
        "(default: analysis_baseline.json when present)",
    )
    lint.set_defaults(handler=commands.cmd_lint)

    perf = subparsers.add_parser(
        "perf", help="run the performance harness / compare BENCH reports"
    )
    perf.add_argument(
        "--suite",
        default="quick",
        help="workload suite: smoke, quick, hub, fleet, blocks, pyramid or full",
    )
    perf.add_argument(
        "--list",
        action="store_true",
        help="print the registered suites and their cases instead of running",
    )
    perf.add_argument(
        "--output", help="write the report (BENCH_results.json format) to this path"
    )
    perf.add_argument(
        "--compare",
        metavar="BASELINE.json",
        help="gate against this baseline report; exit 1 past the threshold",
    )
    perf.add_argument(
        "--against",
        metavar="CURRENT.json",
        help="with --compare: diff the baseline against this existing report "
        "instead of running the suite",
    )
    perf.add_argument(
        "--threshold",
        type=float,
        default=2.0,
        help="allowed slowdown factor before the comparison fails (default 2.0)",
    )
    perf.add_argument(
        "--repeats", type=int, default=None, help="override the suite's timing repeats"
    )
    perf.add_argument(
        "--backend",
        default=None,
        choices=["serial", "thread", "process", "node"],
        help="override the execution backend of every hub/fleet case",
    )
    perf.add_argument(
        "--workers",
        type=int,
        default=None,
        help="override the worker count of every hub/fleet case",
    )
    perf.add_argument(
        "--block-size",
        type=int,
        default=None,
        metavar="N",
        help="override the hub ingest block size of every hub case",
    )
    perf.set_defaults(handler=commands.cmd_perf)

    return parser


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point."""
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        return int(args.handler(args))
    except ReproError as error:
        print(f"error: {error}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    sys.exit(main())
