"""Implementations of the ``repro-traj`` sub-commands.

Each function receives the parsed :mod:`argparse` namespace and returns a
process exit code.  They are kept separate from the argument-parser wiring in
:mod:`repro.cli.main` so they can be unit-tested directly.
"""

from __future__ import annotations

import itertools
import json
import os
import sys
import time
from pathlib import Path

from ..api import Simplifier, list_descriptors
from ..exceptions import ReproError
from ..datasets.generator import generate_dataset
from ..datasets.profiles import get_profile
from ..experiments import EXPERIMENTS, WorkloadScale, standard_datasets
from ..experiments.reporting import format_text_table
from ..metrics.summary import evaluate
from ..trajectory.io import read_csv, read_plt, write_csv, write_jsonl, write_piecewise_csv
from ..trajectory.model import Trajectory

__all__ = [
    "cmd_list_algorithms",
    "cmd_compress",
    "cmd_evaluate",
    "cmd_generate",
    "cmd_experiment",
    "cmd_perf",
    "cmd_query",
    "cmd_serve_replay",
    "cmd_lint",
    "load_trajectory",
]

DEFAULT_LINT_PATHS = ("src/repro",)
DEFAULT_BASELINE = "analysis_baseline.json"


class _TeeSink:
    """Fan one device's segments out to several sinks.

    Used by ``serve-replay --store`` to feed the per-device store sink and
    the shared CSV/statistics sink from one hub attachment.  Optional
    lifecycle calls are forwarded to every child that defines them; a
    shared child may be closed once per tee, which every provided sink
    tolerates.
    """

    def __init__(self, sinks) -> None:
        self._sinks = tuple(sinks)

    def accept(self, segment) -> None:
        for sink in self._sinks:
            sink.accept(segment)

    def flush(self) -> None:
        from ..streaming.sinks import flush_sink

        for sink in self._sinks:
            flush_sink(sink)

    def close(self) -> None:
        from ..streaming.sinks import close_sink

        for sink in self._sinks:
            close_sink(sink)


def cmd_lint(args) -> int:
    """``repro-traj lint`` — run the invariant linter (see :mod:`repro.analysis`).

    Lints the requested paths (default ``src/repro``) with the registered
    ``RPA...`` rules, subtracts the committed baseline, and exits non-zero
    when any *new* finding remains.  ``--rule`` restricts to specific rules,
    ``--format json`` emits a machine-readable report, ``--baseline`` points
    at an alternative allowlist (the default ``analysis_baseline.json`` is
    used only when it exists).
    """
    from .. import analysis

    paths = list(args.paths) if args.paths else list(DEFAULT_LINT_PATHS)
    rule_ids = list(args.rule) if args.rule else None
    findings = analysis.analyze_paths(paths, rule_ids=rule_ids)
    baseline_path = args.baseline
    if baseline_path is None and os.path.exists(DEFAULT_BASELINE):
        baseline_path = DEFAULT_BASELINE
    baseline = (
        analysis.load_baseline(baseline_path)
        if baseline_path is not None
        else analysis.Baseline()
    )
    new, baselined = baseline.split(findings)
    print(analysis.format_findings(new, fmt=args.format, baselined=len(baselined)))
    return 1 if new else 0


def load_trajectory(path: str) -> Trajectory:
    """Load a trajectory from a ``.csv`` or GeoLife ``.plt`` file."""
    file_path = Path(path)
    if file_path.suffix.lower() == ".plt":
        return read_plt(file_path)
    return read_csv(file_path, trajectory_id=file_path.stem)


def cmd_list_algorithms(args) -> int:
    """``repro-traj algorithms`` — print the descriptor capability table.

    One row per registered algorithm: streaming and one-pass capability, the
    error metric the bound constrains, and the accepted options — the
    operator's view of the unified registry.  ``--names`` prints bare names
    for scripting.
    """
    descriptors = list_descriptors()
    if getattr(args, "names", False):
        for descriptor in descriptors:
            print(descriptor.name)
        return 0
    columns = [
        "name", "streaming", "one-pass", "checkpoint", "batched",
        "error metric", "options", "summary",
    ]
    rows = []
    for descriptor in descriptors:
        options = sorted(descriptor.accepted_kwargs)
        streaming_only = set(descriptor.streaming_kwargs or ()) - set(descriptor.accepted_kwargs)
        if streaming_only:
            options.append(f"(+{len(streaming_only)} streaming)")
        rows.append(
            {
                "name": descriptor.name,
                "streaming": "yes" if descriptor.streaming else "no",
                "one-pass": "yes" if descriptor.one_pass else "no",
                # Batch-only algorithms checkpoint through the buffered
                # adapter: capable, at linear snapshot size.
                "checkpoint": "yes" if descriptor.checkpointable
                else ("buffered" if descriptor.snapshot_capable else "no"),
                # Likewise for block ingest: the adapter appends whole
                # blocks in O(1); non-batched streaming algorithms fall
                # back to a correct per-point loop.
                "batched": "yes" if descriptor.batched
                else ("buffered" if descriptor.block_capable else "fallback"),
                "error metric": descriptor.error_metric,
                "options": ", ".join(options) or "-",
                "summary": descriptor.summary,
            }
        )
    print(format_text_table(columns, rows))
    return 0


def cmd_compress(args) -> int:
    """``repro-traj compress`` — simplify one trajectory file."""
    trajectory = load_trajectory(args.input)
    representation = Simplifier(args.algorithm, args.epsilon).run(trajectory)
    if args.output:
        write_piecewise_csv(representation, args.output)
    report = evaluate(trajectory, representation, args.epsilon)
    print(
        f"{args.algorithm}: {len(trajectory)} points -> {representation.n_segments} segments "
        f"(ratio {report.compression_ratio:.4f}, avg error {report.average_error:.2f}, "
        f"max error {report.max_error:.2f}, bound "
        f"{'satisfied' if report.error_bound_satisfied else 'VIOLATED'})"
    )
    return 0


def cmd_evaluate(args) -> int:
    """``repro-traj evaluate`` — compare several algorithms on one file."""
    trajectory = load_trajectory(args.input)
    algorithms = args.algorithms or ["dp", "fbqs", "operb", "operb-a"]
    rows = []
    for name in algorithms:
        representation = Simplifier(name, args.epsilon).run(trajectory)
        report = evaluate(trajectory, representation, args.epsilon)
        rows.append(report.as_dict())
        print(
            f"{name:>12}: segments {representation.n_segments:>6} "
            f"ratio {report.compression_ratio:.4f} "
            f"avg err {report.average_error:8.3f} max err {report.max_error:8.3f} "
            f"bound {'ok' if report.error_bound_satisfied else 'VIOLATED'}"
        )
    if args.json:
        Path(args.json).write_text(json.dumps(rows, indent=2))
    return 0


def cmd_generate(args) -> int:
    """``repro-traj generate`` — synthesise a dataset to CSV/JSONL files."""
    profile = get_profile(args.profile)
    fleet = generate_dataset(
        profile,
        n_trajectories=args.trajectories,
        points_per_trajectory=args.points,
        seed=args.seed,
    )
    output = Path(args.output)
    if output.suffix.lower() == ".jsonl":
        write_jsonl(fleet, output)
        print(f"wrote {len(fleet)} trajectories to {output}")
        return 0
    output.mkdir(parents=True, exist_ok=True)
    for trajectory in fleet:
        write_csv(trajectory, output / f"{trajectory.trajectory_id}.csv")
    print(f"wrote {len(fleet)} trajectories to {output}/")
    return 0


def cmd_experiment(args) -> int:
    """``repro-traj experiment`` — run one (or all) paper experiments."""
    scale = WorkloadScale("cli", args.trajectories, args.points)
    datasets = standard_datasets(scale, seed=args.seed)
    identifiers = list(EXPERIMENTS) if args.id == "all" else [args.id]
    unknown = [identifier for identifier in identifiers if identifier not in EXPERIMENTS]
    if unknown:
        print(f"unknown experiment id(s): {', '.join(unknown)}", file=sys.stderr)
        print(f"available: {', '.join(EXPERIMENTS)}", file=sys.stderr)
        return 2
    outputs = []
    for identifier in identifiers:
        run = EXPERIMENTS[identifier]
        if identifier == "fig12":
            # Figure 12 generates its own per-size workload.
            result = run(seed=args.seed, sizes=(args.points // 2, args.points))
        else:
            result = run(datasets, seed=args.seed)
        results = result if isinstance(result, list) else [result]
        for item in results:
            print(item.to_text())
            print()
            outputs.append(item)
    if args.markdown:
        Path(args.markdown).write_text("\n\n".join(item.to_markdown() for item in outputs))
        print(f"wrote markdown report to {args.markdown}")
    return 0


def cmd_serve_replay(args) -> int:
    """``repro-traj serve-replay`` — replay a multi-device log through a hub.

    The ingest-service rehearsal: a JSONL point log (or the seeded synthetic
    traffic from ``--synthetic``) is routed through a
    :class:`repro.streaming.StreamHub`, optionally checkpointing every N
    points, with ``--resume`` picking an interrupted replay back up from a
    checkpoint — the downstream segment stream is byte-identical to an
    uninterrupted run.  ``--store DIR`` persists every finalised segment
    into the segment store at ``DIR`` (one :class:`repro.store.StoreSink`
    per device), ready for ``repro-traj query``.  ``--epsilons`` replaces
    the single error bound with a strictly ascending ladder served in the
    same single pass (a :class:`repro.streaming.PyramidSession` per
    device); with ``--store`` every coarse level is persisted level-tagged
    alongside the finest one.
    """
    from ..perf.workloads import build_device_log
    from ..streaming.checkpoint import (
        load_checkpoint,
        read_point_log,
        restore_hub,
        save_checkpoint,
    )
    from ..streaming.hub import StreamHub
    from ..streaming.pyramid import validate_epsilon_ladder
    from ..streaming.sinks import CsvSegmentSink, StatisticsSink

    if bool(args.input) == bool(args.synthetic):
        print(
            "error: pass either a point-log file or --synthetic PROFILE (not both)",
            file=sys.stderr,
        )
        return 2
    if args.resume and not args.checkpoint:
        # Resume without a checkpoint path would silently stop checkpointing.
        print("error: --resume requires --checkpoint to keep checkpointing", file=sys.stderr)
        return 2
    if args.checkpoint_every and not args.checkpoint:
        print("error: --checkpoint-every requires --checkpoint PATH", file=sys.stderr)
        return 2
    if args.epsilons and args.resume:
        # A resumed hub takes its ladder from the checkpoint; a divergent
        # flag here could only lie about what is being served.
        print(
            "error: --epsilons conflicts with --resume (the checkpoint "
            "carries the pyramid ladder)",
            file=sys.stderr,
        )
        return 2

    ladder: tuple[float, ...] | None = None
    if args.epsilons:
        ladder = validate_epsilon_ladder(args.epsilons)
    resume_payload: dict | None = None
    if args.resume:
        # Load the checkpoint up front: a pyramid checkpoint decides which
        # epsilon the store's finest-level sinks tag and whether coarse
        # level sinks must be attached.
        resume_payload = load_checkpoint(args.resume)
        hub_section = resume_payload.get("hub")
        stored_epsilons = hub_section.get("epsilons") if isinstance(hub_section, dict) else None
        if stored_epsilons is not None:
            ladder = validate_epsilon_ladder(stored_epsilons)

    if args.synthetic:
        records = iter(
            build_device_log(args.synthetic, args.devices, args.points, seed=args.seed)
        )
    else:
        # Streamed, not materialised: a fleet log can dwarf process memory
        # while the hub itself stays O(devices).
        records = read_point_log(args.input)

    if args.output:
        sink = CsvSegmentSink(args.output)
    else:
        sink = StatisticsSink()
    store = None
    if args.store:
        from ..store import open_store

        store = open_store(args.store, time_bucket=args.time_bucket)

    # With --store each device gets its own StoreSink teed with the shared
    # CSV/statistics sink; without it the shared sink serves every device.
    finest_epsilon = ladder[0] if ladder is not None else args.epsilon
    if store is not None:
        store_factory = store.sink_factory(epsilon=finest_epsilon)

        def sink_factory(device_id: str) -> _TeeSink:
            return _TeeSink((store_factory(device_id), sink))

        sinks: dict = {"sink_factory": sink_factory}
        if ladder is not None and len(ladder) > 1:
            sinks["level_sink_factory"] = store.pyramid_sink_factory(ladder)
    else:
        sinks = {"shared_sink": sink}
    hub = None
    replay_ok = False
    try:
        skip = 0
        if args.resume:
            # --shards re-shards the restored devices; omitted, the
            # checkpoint's own layout is kept.
            hub = restore_hub(
                resume_payload,
                shards=args.shards,
                backend=args.backend,
                workers=args.workers,
                block_size=args.block_size,
                **sinks,
            )
            skip = hub.points_pushed + hub.stats().dropped_points
            print(
                f"resumed {len(hub)} device stream(s) from {args.resume} onto "
                f"{hub.n_shards} shard(s) (skipping {skip} points)"
            )
        else:
            hub = StreamHub(
                algorithm=args.algorithm,
                epsilon=None if ladder is not None else args.epsilon,
                epsilons=ladder,
                shards=args.shards if args.shards is not None else 4,
                backend=args.backend,
                workers=args.workers,
                block_size=args.block_size,
                **sinks,
            )
        if skip:
            # Drain the already-ingested prefix outside the timed window so
            # a resume near the end of a large log reports honest throughput.
            next(itertools.islice(records, skip - 1, skip), None)
        replayed = 0
        started = time.perf_counter()
        # Records ship in batches: push_many lets the concurrent backends
        # ride chunked shard messages (regrouped worker-side into per-device
        # SoA blocks of up to --block-size points) instead of one message
        # per point.  The batch is capped so a huge --checkpoint-every
        # cannot buffer the log in memory (the hub must stay O(devices),
        # not O(points)); checkpoints land every --checkpoint-every
        # replayed points, to within one batch when the interval exceeds
        # the cap.
        batch_size = min(args.checkpoint_every or args.block_size, args.block_size)
        batch: list = []
        since_checkpoint = 0
        for record in records:
            batch.append(record)
            if len(batch) >= batch_size:
                hub.push_many(batch)
                replayed += len(batch)
                since_checkpoint += len(batch)
                batch.clear()
                if args.checkpoint_every and since_checkpoint >= args.checkpoint_every:
                    save_checkpoint(hub, args.checkpoint)
                    since_checkpoint = 0
        if batch:
            hub.push_many(batch)
            replayed += len(batch)
        hub.finish_all()
        elapsed = time.perf_counter() - started
        if args.checkpoint:
            save_checkpoint(hub, args.checkpoint)
            print(f"wrote final checkpoint to {args.checkpoint}")
        stats = hub.stats()
        replay_ok = True
    finally:
        try:
            if hub is not None:
                hub.close()
        except ReproError:
            # The hub closes with a library error (a worker that died, a
            # not-yet-surfaced device failure); when the replay already
            # failed it must neither mask the original exception nor keep
            # the sink from being closed.
            if replay_ok:
                raise
        finally:
            if args.output:
                sink.close()
            if store is not None:
                # Closing the hub flushed every StoreSink; release the
                # store's writer lock so this process can reopen it.
                store.close()

    throughput = replayed / elapsed if elapsed > 0.0 else float("inf")
    print(
        f"replayed {replayed} points from {stats.devices} device(s) across "
        f"{hub.n_shards} shard(s) in {elapsed:.3f}s ({throughput:,.0f} points/s)"
    )
    print(
        f"segments emitted: {stats.segments_emitted}  max open-segment lag: "
        f"{stats.max_lag}  failed devices: {stats.failed}  "
        f"sink failures: {stats.sink_failures}"
    )
    print(
        f"transport: batches shipped: {stats.batches_shipped}  "
        f"bytes shipped: {stats.bytes_shipped}  "
        f"frames decoded: {stats.frames_decoded}"
    )
    if stats.epsilons is not None and stats.segments_by_level is not None:
        per_level = "  ".join(
            f"L{index}(eps={epsilon:g}): {count}"
            for index, (epsilon, count) in enumerate(
                zip(stats.epsilons, stats.segments_by_level)
            )
        )
        print(f"pyramid levels: {per_level}")
    for error in hub.errors:
        print(f"  {error}", file=sys.stderr)
    if args.output:
        print(f"wrote segments to {args.output}")
    if store is not None:
        print(
            f"persisted {store.n_segments} segment(s) to store {args.store} "
            f"({len(store.devices())} device(s), {store.n_partitions} partition(s))"
        )
    return 0 if not hub.errors else 1


def _parse_window(text: str) -> tuple[float, float]:
    """Parse the CLI's ``T0:T1`` time-window syntax."""
    from ..exceptions import InvalidParameterError

    parts = text.split(":")
    if len(parts) != 2:
        raise InvalidParameterError(
            f"--window expects T0:T1 (two floats separated by ':'), got {text!r}"
        )
    try:
        return float(parts[0]), float(parts[1])
    except ValueError as error:
        raise InvalidParameterError(
            f"--window expects T0:T1 (two floats separated by ':'), got {text!r}"
        ) from error


def _parse_bbox(text: str) -> tuple[float, float, float, float]:
    """Parse the CLI's ``XMIN,YMIN,XMAX,YMAX`` bounding-box syntax."""
    from ..exceptions import InvalidParameterError

    parts = text.split(",")
    if len(parts) != 4:
        raise InvalidParameterError(
            f"--bbox expects XMIN,YMIN,XMAX,YMAX (four floats), got {text!r}"
        )
    try:
        x_min, y_min, x_max, y_max = (float(part) for part in parts)
    except ValueError as error:
        raise InvalidParameterError(
            f"--bbox expects XMIN,YMIN,XMAX,YMAX (four floats), got {text!r}"
        ) from error
    return x_min, y_min, x_max, y_max


def _parse_aggregate(text: str) -> tuple[float, float | None]:
    """Parse the CLI's ``WIDTH[:STEP]`` sliding-window syntax."""
    from ..exceptions import InvalidParameterError

    parts = text.split(":")
    if len(parts) not in (1, 2):
        raise InvalidParameterError(
            f"--aggregate expects WIDTH or WIDTH:STEP, got {text!r}"
        )
    try:
        width = float(parts[0])
        step = float(parts[1]) if len(parts) == 2 else None
    except ValueError as error:
        raise InvalidParameterError(
            f"--aggregate expects WIDTH or WIDTH:STEP, got {text!r}"
        ) from error
    return width, step


def cmd_query(args) -> int:
    """``repro-traj query`` — query a segment store with data skipping.

    Builds one :class:`repro.store.QuerySpec` from the flags and runs it
    through :meth:`repro.store.Store.query` (or
    :meth:`~repro.store.Store.window_aggregates` with ``--aggregate``).
    ``--level``/``--max-deviation`` select a resolution from the store's
    epsilon ladder (a pyramid store holds one level per served epsilon);
    the store resolves them to a concrete epsilon before scanning.
    Text output leads with the pruning accounting — how many partitions the
    zone maps let the query skip — because that number, not the match list,
    is what the store exists for; ``--json`` emits the full typed result.
    """
    from ..store import QuerySpec, open_store

    store = open_store(args.store, create=False)
    spec = QuerySpec(
        device=args.device,
        window=_parse_window(args.window) if args.window else None,
        bbox=_parse_bbox(args.bbox) if args.bbox else None,
        epsilon=args.epsilon,
        level=args.level,
        max_deviation=args.max_deviation,
    )

    def print_resolution(resolved_spec) -> None:
        # Show what the level/SLA selector resolved to: the result's spec
        # carries the concrete epsilon the store substituted (or none when
        # no stored level honours the SLA).
        if args.level is None and args.max_deviation is None:
            return
        ladder = store.levels()
        if resolved_spec.epsilon is not None:
            index = ladder.index(resolved_spec.epsilon)
            print(
                f"resolution: level {index} of ladder "
                f"{[f'{eps:g}' for eps in ladder]} -> epsilon "
                f"{resolved_spec.epsilon:g}"
            )
        else:
            print(
                f"resolution: no stored level within SLA "
                f"{args.max_deviation:g} (ladder "
                f"{[f'{eps:g}' for eps in ladder]}); nothing matches"
            )

    if args.aggregate:
        width, step = _parse_aggregate(args.aggregate)
        result = store.window_aggregates(spec, width=width, step=step)
        if args.json:
            print(json.dumps(result.as_dict(), indent=2))
            return 0
        print_resolution(result.spec)
        print(
            f"{len(result)} window(s) of width {width:g} over store "
            f"{args.store} ({store.n_partitions} partition(s))"
        )
        print(
            f"pushdown: {result.partitions_pushdown} partition(s) answered "
            f"from zone-map sidecars, {result.partitions_scanned} scanned, "
            f"{result.partitions_skipped} pruned "
            f"(scan fraction {result.scan_fraction:.1%})"
        )
        for aggregate in result.windows:
            print(
                f"  [{aggregate.t_start:g}, {aggregate.t_end:g}]: "
                f"{aggregate.segments} segment(s) from {aggregate.devices} "
                f"device(s), {aggregate.points} point(s), "
                f"length {aggregate.total_length:.3f}"
            )
        return 0

    result = store.query(spec, full_scan=args.full_scan)
    if args.json:
        print(json.dumps(result.as_dict(), indent=2))
        return 0
    print_resolution(result.spec)
    scan_note = "full scan (pruning bypassed)" if result.full_scan else (
        f"skipped {result.partitions_skipped} via zone maps"
    )
    print(
        f"store {args.store}: {store.n_partitions} partition(s), "
        f"{store.n_segments} segment(s), {len(store.devices())} device(s)"
    )
    print(
        f"matched {len(result)} segment(s) from {len(result.devices())} "
        f"device(s); read {result.partitions_scanned}/{result.partitions_total} "
        f"partition(s) ({result.scan_fraction:.1%}), {scan_note}"
    )
    shown = result.segments if args.limit == 0 else result.segments[: args.limit]
    for stored in shown:
        record = stored.record
        print(
            f"  {stored.device_id}  eps={stored.epsilon:g}  "
            f"t=[{record.start.t:g}, {record.end.t:g}]  "
            f"({record.start.x:.3f}, {record.start.y:.3f}) -> "
            f"({record.end.x:.3f}, {record.end.y:.3f})  "
            f"points={record.point_count}"
        )
    if len(result) > len(shown):
        print(f"  ... {len(result) - len(shown)} more (use --limit 0 or --json)")
    return 0


def cmd_compact(args) -> int:
    """``repro-traj compact`` — compact a segment store's partitions.

    Takes the store's single-writer lock, folds every multi-chunk (or
    crash-damaged) partition into single-chunk form with byte-identical
    query results, and prints what it reclaimed.  Doubles as the physical
    repair path after torn-tail recovery: salvaged partitions get their
    zone maps rewritten exact, restoring aggregate-pushdown eligibility.
    """
    from ..store import open_store

    with open_store(args.store, create=False, writer=True) as store:
        recovered = store.recovery
        report = store.compact(device=args.device, min_chunks=args.min_chunks)
    if args.json:
        payload = {"recovery": recovered.as_dict(), "compaction": report.as_dict()}
        print(json.dumps(payload, indent=2))
        return 0
    if recovered.damaged:
        print(
            f"recovered {recovered.damaged} torn partition(s) on open "
            f"({recovered.dropped_bytes} byte(s) of torn tail dropped)"
        )
    print(
        f"compacted {report.partitions_compacted}/{report.partitions_considered} "
        f"partition(s) in store {args.store}: {report.chunks_merged} chunk(s) "
        f"merged, {report.partitions_removed} empty partition(s) removed"
    )
    for item in report.compacted:
        action = "removed" if item.chunks_after == 0 else (
            f"{item.chunks_before} -> {item.chunks_after} chunk(s)"
        )
        note = ", repaired" if item.repaired else ""
        print(
            f"  {item.key.device_id} bucket {item.key.bucket}: {action}, "
            f"{item.segments} segment(s){note}"
        )
    return 0


def cmd_perf(args) -> int:
    """``repro-traj perf`` — run the harness and/or gate on regressions.

    Modes:

    * ``--list`` prints the registered suites and their cases, exit 0;
    * run a suite (optionally ``--output report.json``), exit 0;
    * run a suite and gate it against ``--compare BASELINE.json``, exit 1
      past the slowdown threshold;
    * pure diff: ``--compare BASELINE.json --against CURRENT.json`` skips
      running and compares the two files.
    """
    from ..perf import SUITES, compare_reports, get_suite, load_report, run_suite, write_report

    if args.list:
        for suite_name in sorted(SUITES):
            suite = SUITES[suite_name]
            print(
                f"{suite.name}: {len(suite.cases)} case(s) x "
                f"{len(suite.algorithms)} algorithm(s) "
                f"({', '.join(suite.algorithms)}), repeats {suite.repeats}"
            )
            for case in suite.cases:
                print(
                    f"  {case.name:<24} mode={case.mode:<6} "
                    f"backend={case.backend:<7} block_size={case.block_size}"
                )
        return 0

    def load_report_or_none(path: str):
        try:
            return load_report(path)
        except (OSError, ValueError) as error:  # ValueError covers bad JSON
            print(f"error: cannot load perf report {path!r}: {error}", file=sys.stderr)
            return None

    if args.against and not args.compare:
        print("error: --against requires --compare", file=sys.stderr)
        return 2

    if args.against:
        report = load_report_or_none(args.against)
        if report is None:
            return 2
    else:
        suite = get_suite(args.suite)
        report = run_suite(
            suite,
            repeats=args.repeats,
            progress=print,
            backend=args.backend,
            workers=args.workers,
            block_size=args.block_size,
        )
        print()
        print(report.to_text())
        if args.output:
            write_report(report, args.output)
            print(f"wrote perf report to {args.output}")

    if not args.compare:
        return 0
    baseline = load_report_or_none(args.compare)
    if baseline is None:
        return 2
    comparison = compare_reports(baseline, report, threshold=args.threshold)
    print()
    print(comparison.to_text())
    return 0 if comparison.ok else 1
