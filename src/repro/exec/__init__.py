"""One execution runtime for every parallel surface of the package.

``repro.exec`` is where *how work runs* is decided, exactly once: the fleet
executor (:meth:`repro.api.Simplifier.run_many`), the streaming hub
(:class:`repro.streaming.StreamHub`), the perf harness and the CLI all
resolve their ``backend=`` / ``--backend`` knobs through
:func:`resolve_backend` and execute through the same
:class:`ExecutionBackend` objects.

Two execution shapes are offered:

- **isolated task maps** (:meth:`ExecutionBackend.map_isolated`) for
  fleet-style batch fan-out with per-task error quarantine, and
- **actor groups** (:meth:`ExecutionBackend.start_actors`,
  :mod:`repro.exec.actors`) for long-lived stateful workers such as the
  hub's shards.

All four backends (``serial``, ``thread``, ``process``, ``node``) are
contractually equivalent: for deterministic work they produce byte-identical
results, a property the test suite locks in across both consumers.

``NodeBackend`` / ``NodeActorGroup`` (:mod:`repro.exec.node`) are exported
lazily: the node backend depends on the streaming wire codec, and importing
it eagerly here would cycle through ``repro.streaming`` → ``repro.exec``
during package init.
"""

from .actors import (
    ActorCrash,
    ActorGroup,
    ProcessActorGroup,
    SerialActorGroup,
    ThreadActorGroup,
)
from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    TaskFailure,
    TaskOutcome,
    ThreadBackend,
    resolve_backend,
)

__all__ = [
    "ActorCrash",
    "ActorGroup",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "NodeActorGroup",
    "NodeBackend",
    "ProcessActorGroup",
    "ProcessBackend",
    "SerialActorGroup",
    "SerialBackend",
    "TaskFailure",
    "TaskOutcome",
    "ThreadActorGroup",
    "ThreadBackend",
    "resolve_backend",
]

_LAZY_EXPORTS = {"NodeActorGroup", "NodeBackend"}


def __getattr__(name: str):  # noqa: ANN202 — PEP 562 lazy exports
    if name in _LAZY_EXPORTS:
        from . import node

        return getattr(node, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")


def __dir__() -> list[str]:
    return sorted(set(globals()) | _LAZY_EXPORTS)
