"""One execution runtime for every parallel surface of the package.

``repro.exec`` is where *how work runs* is decided, exactly once: the fleet
executor (:meth:`repro.api.Simplifier.run_many`), the streaming hub
(:class:`repro.streaming.StreamHub`), the perf harness and the CLI all
resolve their ``backend=`` / ``--backend`` knobs through
:func:`resolve_backend` and execute through the same
:class:`ExecutionBackend` objects.

Two execution shapes are offered:

- **isolated task maps** (:meth:`ExecutionBackend.map_isolated`) for
  fleet-style batch fan-out with per-task error quarantine, and
- **actor groups** (:meth:`ExecutionBackend.start_actors`,
  :mod:`repro.exec.actors`) for long-lived stateful workers such as the
  hub's shards.

All three backends (``serial``, ``thread``, ``process``) are contractually
equivalent: for deterministic work they produce byte-identical results, a
property the test suite locks in across both consumers.
"""

from .actors import (
    ActorCrash,
    ActorGroup,
    ProcessActorGroup,
    SerialActorGroup,
    ThreadActorGroup,
)
from .backends import (
    BACKEND_NAMES,
    ExecutionBackend,
    ProcessBackend,
    SerialBackend,
    TaskFailure,
    TaskOutcome,
    ThreadBackend,
    resolve_backend,
)

__all__ = [
    "ActorCrash",
    "ActorGroup",
    "BACKEND_NAMES",
    "ExecutionBackend",
    "ProcessActorGroup",
    "ProcessBackend",
    "SerialActorGroup",
    "SerialBackend",
    "TaskFailure",
    "TaskOutcome",
    "ThreadActorGroup",
    "ThreadBackend",
    "resolve_backend",
]
