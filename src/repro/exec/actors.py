"""Long-lived stateful workers ("actors") behind a uniform mailbox protocol.

The streaming hub needs something a task pool cannot give it: workers that
*own mutable state* (a shard's device streams) for the lifetime of the hub,
process messages strictly in order, and stream events (finalised segments,
device failures) back to the parent as they happen.  An
:class:`ActorGroup` provides exactly that, with one implementation per
execution backend:

``SerialActorGroup``
    Handlers live in the caller; ``tell``/``ask`` dispatch inline and
    handler exceptions propagate directly.  The reference semantics.
``ThreadActorGroup``
    One worker thread + FIFO queue per actor.  Handlers still share the
    caller's memory (``local_handlers``), but only their own thread touches
    them between barriers — single-owner state, no locks in handler code.
``ProcessActorGroup``
    One worker process + duplex pipe per actor; a parent-side router thread
    multiplexes replies and events.  Messages, replies and events must be
    picklable; exceptions are reduced to ``(type name, message)`` and
    revived by name on the parent side.

The handler contract is deliberately tiny: ``factory(emit) -> handler``
builds the handler inside its worker, ``handler.handle(message) -> reply``
processes one message, and ``emit(event)`` (usable mid-``handle``) routes an
event to the group's ``on_event(actor_index, event)`` callback.  ``on_event``
is always invoked under a group-wide lock, so callbacks never run
concurrently with each other.

Delivery guarantees: messages to one actor are processed FIFO; events an
actor emitted before replying to an ``ask`` (or acknowledging a
``barrier``) are delivered to ``on_event`` before that call returns.
Handler exceptions during a ``tell`` are recorded as crashes and re-raised
as :class:`~repro.exceptions.ExecutionError` at the next
``ask``/``barrier``/``close`` — a crashed handler never deadlocks the
group.
"""

from __future__ import annotations

import builtins
import itertools
import multiprocessing
import threading
from dataclasses import dataclass
from multiprocessing.connection import Connection
from multiprocessing.connection import wait as _connection_wait
from types import TracebackType
from typing import Callable, Sequence

from .. import exceptions as _exceptions
from ..exceptions import ExecutionError

__all__ = [
    "ActorCrash",
    "ActorGroup",
    "SerialActorGroup",
    "ThreadActorGroup",
    "ProcessActorGroup",
]

_BARRIER = "__barrier__"
_STOP = "__stop__"

_CTL = "__repro.exec.control__"
_STOP_MSG = (_CTL, "stop")
_BARRIER_MSG = (_CTL, "barrier")
"""Control messages crossing the process boundary travel as namespaced
tagged tuples: identity comparison does not survive pickling, and matching
bare strings with ``==`` would hijack legitimate string messages (the
in-process groups use the ``_STOP``/``_BARRIER`` sentinel objects with
``is``)."""

_MAILBOX_CAPACITY = 128
"""Bound on a thread actor's queued messages.  A full mailbox blocks the
producer (``tell`` waits), so a fast producer cannot balloon hub memory to
O(points) — the backpressure the process backend gets from its pipe buffer.
"""


@dataclass(frozen=True, slots=True)
class ActorCrash:
    """One unhandled handler exception that happened during a ``tell``."""

    actor: int
    error_type: str
    message: str
    exception: BaseException | None = None

    def __str__(self) -> str:
        return f"actor {self.actor}: {self.error_type}: {self.message}"


def _revive_exception(error_type: str, message: str) -> BaseException:
    """Best-effort reconstruction of an exception that crossed a process
    boundary: repro exceptions and builtins revive by name, everything else
    becomes an :class:`ExecutionError`."""
    cls = getattr(_exceptions, error_type, None) or getattr(builtins, error_type, None)
    if not (isinstance(cls, type) and issubclass(cls, BaseException)):
        return ExecutionError(f"{error_type}: {message}")
    try:
        return cls(message)
    except TypeError:
        # Exotic constructor signature (extra required arguments); RPA005
        # lints project exceptions against exactly this.
        return ExecutionError(f"{error_type}: {message}")


class _PendingSlot:
    """Parent-side wait state of one in-flight ``ask``/``barrier`` round trip."""

    __slots__ = ("event", "ok", "value", "actor")

    def __init__(self, actor: int = -1) -> None:
        self.event = threading.Event()
        self.ok = False
        self.value: object = None
        self.actor = actor

    def resolve(self, ok: bool, value: object) -> None:
        self.ok = ok
        self.value = value
        self.event.set()

    def result(self) -> object:
        """The reply, or re-raise the failure the worker shipped."""
        if self.ok:
            return self.value
        failure = self.value
        if isinstance(failure, BaseException):
            raise failure
        # A non-exception failure value would be a protocol bug; never lose it.
        raise ExecutionError(f"actor round trip failed: {failure!r}")


class ActorGroup:
    """Common bookkeeping for the three actor-group implementations."""

    #: Name of the backend that spawned this group.
    backend_name: str = "serial"

    def __init__(self, n_actors: int) -> None:
        if n_actors < 1:
            raise ExecutionError("an actor group needs at least one actor")
        self.n_actors = n_actors
        self.crashes: list[ActorCrash] = []
        self._closed = False

    # -- interface ------------------------------------------------------- #
    def tell(self, actor: int, message: object) -> None:
        """Fire-and-forget: enqueue ``message`` for ``actor``."""
        raise NotImplementedError

    def ask(self, actor: int, message: object) -> object:
        """Round trip: process ``message`` on ``actor`` and return the reply.

        Re-raises the handler's exception (revived by name when it crossed a
        process boundary).
        """
        raise NotImplementedError

    def barrier(self) -> None:
        """Block until every actor has processed all previously sent
        messages and their events have been delivered, then surface any
        crashes recorded since the last barrier."""
        raise NotImplementedError

    def close(self) -> None:
        """Stop every actor and release its worker (idempotent)."""
        raise NotImplementedError

    @property
    def local_handlers(self) -> list | None:
        """The live handler objects when they share the caller's memory
        (serial and thread groups); ``None`` for process groups.  Thread
        groups barrier first, so the handlers are quiescent."""
        return None

    def handler(self, actor: int) -> object | None:
        """One live handler *without* synchronisation (``None`` when handlers
        don't share the caller's memory).

        Unlike :attr:`local_handlers` this never barriers; the caller must
        ensure the state it reads has quiesced — e.g. by reading only what
        a just-completed ``ask`` round-trip produced.
        """
        return None

    @property
    def closed(self) -> bool:
        """Whether :meth:`close` has been called."""
        return self._closed

    # -- shared helpers -------------------------------------------------- #
    def _check_actor(self, actor: int) -> None:
        if self._closed:
            raise ExecutionError("actor group is closed")
        if not 0 <= actor < self.n_actors:
            raise ExecutionError(
                f"actor index {actor} out of range (group has {self.n_actors})"
            )

    def raise_crashes(self) -> None:
        """Raise :class:`ExecutionError` if any actor crashed on a ``tell``."""
        if not self.crashes:
            return
        crashes, self.crashes = list(self.crashes), []
        shown = "; ".join(str(crash) for crash in crashes[:3])
        more = f" (+{len(crashes) - 3} more)" if len(crashes) > 3 else ""
        failure = ExecutionError(
            f"{len(crashes)} actor message(s) crashed outside the isolation "
            f"contract: {shown}{more}"
        )
        cause = crashes[0].exception
        if cause is not None:
            raise failure from cause
        raise failure

    def __enter__(self) -> "ActorGroup":
        return self

    def __exit__(
        self,
        exc_type: type[BaseException] | None,
        exc: BaseException | None,
        tb: TracebackType | None,
    ) -> None:
        self.close()


class SerialActorGroup(ActorGroup):
    """Inline dispatch: the reference implementation of the protocol."""

    backend_name = "serial"

    def __init__(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> None:
        super().__init__(len(factories))
        self._handlers = [
            factory(self._make_emit(index)) for index, factory in enumerate(factories)
        ]
        self._on_event = on_event

    def _make_emit(self, index: int) -> Callable[[object], None]:
        def emit(event: object) -> None:
            if self._on_event is not None:
                self._on_event(index, event)

        return emit

    @property
    def local_handlers(self) -> list:
        return list(self._handlers)

    def handler(self, actor: int) -> object | None:
        self._check_actor(actor)
        return self._handlers[actor]

    def tell(self, actor: int, message: object) -> None:
        self._check_actor(actor)
        try:
            self._handlers[actor].handle(message)
        except Exception as error:  # noqa: BLE001 — uniform crash contract
            self.crashes.append(
                ActorCrash(actor, type(error).__name__, str(error), error)
            )

    def ask(self, actor: int, message: object) -> object:
        self._check_actor(actor)
        return self._handlers[actor].handle(message)

    def barrier(self) -> None:
        if self._closed:
            raise ExecutionError("actor group is closed")
        self.raise_crashes()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self.raise_crashes()


class ThreadActorGroup(ActorGroup):
    """One worker thread per actor; handlers share the caller's memory."""

    backend_name = "thread"

    def __init__(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> None:
        import queue

        super().__init__(len(factories))
        self._on_event = on_event
        self._event_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingSlot] = {}
        self._tokens = itertools.count()
        self._handlers: list = [None] * len(factories)
        self._queues = [queue.Queue(maxsize=_MAILBOX_CAPACITY) for _ in factories]
        self._threads = [
            threading.Thread(
                target=self._worker,
                args=(index, factory),
                name=f"repro-actor-{index}",
                daemon=True,
            )
            for index, factory in enumerate(factories)
        ]
        for thread in self._threads:
            thread.start()

    # -- worker side ----------------------------------------------------- #
    def _worker(self, index: int, factory: Callable) -> None:
        def emit(event: object) -> None:
            if self._on_event is None:
                return
            with self._event_lock:
                try:
                    self._on_event(index, event)
                except Exception as error:  # noqa: BLE001 — a broken event
                    # callback must not kill the worker (or, via an
                    # unwinding handler, wedge the group); surface it as a
                    # crash at the next barrier instead.
                    self._record_crash(index, error)

        try:
            handler = factory(emit)
            self._handlers[index] = handler
        except Exception as error:  # noqa: BLE001 — surfaced as a crash
            handler = None
            self._record_crash(index, error)
        while True:
            token, message = self._queues[index].get()
            if message is _STOP:
                break
            if message is _BARRIER:
                self._resolve(token, True, None)
                continue
            if handler is None:
                failure = ExecutionError(f"actor {index} failed to initialise")
                if token is None:
                    self._record_crash(index, failure)
                else:
                    self._resolve(token, False, failure)
                continue
            try:
                reply = handler.handle(message)
            except Exception as error:  # noqa: BLE001 — shipped to the caller
                if token is None:
                    self._record_crash(index, error)
                else:
                    self._resolve(token, False, error)
            else:
                if token is not None:
                    self._resolve(token, True, reply)

    def _record_crash(self, index: int, error: BaseException) -> None:
        with self._pending_lock:
            self.crashes.append(
                ActorCrash(index, type(error).__name__, str(error), error)
            )

    def _resolve(self, token: int, ok: bool, value: object) -> None:
        with self._pending_lock:
            slot = self._pending[token]
        slot.resolve(ok, value)

    # -- caller side ----------------------------------------------------- #
    @property
    def local_handlers(self) -> list:
        self.barrier()
        return list(self._handlers)

    def handler(self, actor: int) -> object | None:
        self._check_actor(actor)
        return self._handlers[actor]

    def tell(self, actor: int, message: object) -> None:
        self._check_actor(actor)
        self._queues[actor].put((None, message))

    def _ask_raw(self, actor: int, message: object) -> object:
        token = next(self._tokens)
        slot = _PendingSlot()
        with self._pending_lock:
            self._pending[token] = slot
        self._queues[actor].put((token, message))
        slot.event.wait()
        with self._pending_lock:
            del self._pending[token]
        return slot.result()

    def ask(self, actor: int, message: object) -> object:
        self._check_actor(actor)
        return self._ask_raw(actor, message)

    def barrier(self) -> None:
        if self._closed:
            raise ExecutionError("actor group is closed")
        tokens = []
        with self._pending_lock:
            for _ in range(self.n_actors):
                token = next(self._tokens)
                self._pending[token] = _PendingSlot()
                tokens.append(token)
        for actor, token in enumerate(tokens):
            self._queues[actor].put((token, _BARRIER))
        for token in tokens:
            with self._pending_lock:
                slot = self._pending[token]
            slot.event.wait()
            with self._pending_lock:
                del self._pending[token]
        self.raise_crashes()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        for queue_ in self._queues:
            queue_.put((None, _STOP))
        for thread in self._threads:
            thread.join(timeout=30.0)
        self.raise_crashes()


def _actor_process_main(factory: Callable, conn: Connection) -> None:
    """Entry point of one actor worker process."""

    def emit(event: object) -> None:
        conn.send(("event", event))

    try:
        handler = factory(emit)
    except Exception as error:  # noqa: BLE001 — surfaced as a crash
        handler = None
        conn.send(("crash", (type(error).__name__, str(error))))
    while True:
        try:
            token, message = conn.recv()
        except (EOFError, OSError):
            break
        if isinstance(message, tuple) and len(message) == 2 and message[0] == _CTL:
            if message[1] == "stop":
                break
            conn.send(("reply", token, True, None))
            continue
        if handler is None:
            info = ("ExecutionError", "actor failed to initialise")
            conn.send(("crash", info) if token is None else ("reply", token, False, info))
            continue
        try:
            reply = handler.handle(message)
        except Exception as error:  # noqa: BLE001 — shipped to the caller
            info = (type(error).__name__, str(error))
            conn.send(("crash", info) if token is None else ("reply", token, False, info))
        else:
            if token is None:
                continue
            try:
                conn.send(("reply", token, True, reply))
            except Exception as error:  # noqa: BLE001 — unpicklable reply
                conn.send(
                    ("reply", token, False, ("ExecutionError", f"reply not sendable: {error}"))
                )
    conn.close()


class ProcessActorGroup(ActorGroup):
    """One worker process per actor, multiplexed by a parent router thread."""

    backend_name = "process"

    def __init__(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> None:
        super().__init__(len(factories))
        self._on_event = on_event
        self._event_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingSlot] = {}
        self._tokens = itertools.count()
        self._dead: set[int] = set()
        self._closing = False
        context = multiprocessing.get_context()
        self._conns: list[Connection] = []
        self._processes = []
        for factory in factories:
            parent_conn, child_conn = context.Pipe(duplex=True)
            process = context.Process(
                target=_actor_process_main, args=(factory, child_conn), daemon=True
            )
            process.start()
            child_conn.close()
            self._conns.append(parent_conn)
            self._processes.append(process)
        self._conn_index = {conn: index for index, conn in enumerate(self._conns)}
        self._router_stop = threading.Event()
        self._router = threading.Thread(
            target=self._route, name="repro-actor-router", daemon=True
        )
        self._router.start()

    # -- router thread --------------------------------------------------- #
    def _route(self) -> None:
        live = list(self._conns)
        while live and not self._router_stop.is_set():
            for conn in _connection_wait(live, timeout=0.05):
                index = self._conn_index[conn]
                try:
                    payload = conn.recv()
                except (EOFError, OSError):
                    live.remove(conn)
                    self._mark_dead(index)
                    continue
                except Exception as error:  # noqa: BLE001 — e.g. a payload
                    # that unpickles only in the worker.  The router must
                    # survive (its death would hang every pending ask), and
                    # the lost payload may have been someone's reply — fail
                    # the actor over instead of guessing.
                    live.remove(conn)
                    with self._pending_lock:
                        self.crashes.append(
                            ActorCrash(index, type(error).__name__, str(error))
                        )
                    self._mark_dead(index)
                    continue
                kind = payload[0]
                if kind == "event":
                    if self._on_event is not None:
                        with self._event_lock:
                            try:
                                self._on_event(index, payload[1])
                            except Exception as error:  # noqa: BLE001
                                # The router must survive a broken event
                                # callback — its death would deadlock every
                                # pending and future ask.
                                with self._pending_lock:
                                    self.crashes.append(
                                        ActorCrash(
                                            index, type(error).__name__, str(error)
                                        )
                                    )
                elif kind == "reply":
                    _, token, ok, value = payload
                    if not ok:
                        value = _revive_exception(*value)
                    self._resolve(token, ok, value)
                elif kind == "crash":
                    error_type, message = payload[1]
                    with self._pending_lock:
                        self.crashes.append(ActorCrash(index, error_type, message))

    def _mark_dead(self, index: int) -> None:
        """Fail every pending ask so a dead worker never deadlocks callers."""
        self._dead.add(index)
        error = ExecutionError(f"actor {index} worker process died")
        with self._pending_lock:
            if not self._closing:  # EOF during close is a normal shutdown
                self.crashes.append(ActorCrash(index, "ExecutionError", str(error)))
            slots = [slot for slot in self._pending.values() if slot.actor == index]
        for slot in slots:
            slot.resolve(False, error)

    def _resolve(self, token: int, ok: bool, value: object) -> None:
        with self._pending_lock:
            slot = self._pending.get(token)
        if slot is None:  # already failed over by _mark_dead
            return
        slot.resolve(ok, value)

    # -- caller side ----------------------------------------------------- #
    def _send(self, actor: int, token: int | None, message: object) -> None:
        if actor in self._dead:
            raise ExecutionError(f"actor {actor} worker process died")
        try:
            self._conns[actor].send((token, message))
        except (OSError, BrokenPipeError) as error:
            self._mark_dead(actor)
            raise ExecutionError(f"actor {actor} is unreachable: {error}") from error

    def tell(self, actor: int, message: object) -> None:
        self._check_actor(actor)
        self._send(actor, None, message)

    def _ask_raw(self, actor: int, message: object) -> object:
        token = next(self._tokens)
        slot = _PendingSlot(actor)
        with self._pending_lock:
            self._pending[token] = slot
        try:
            self._send(actor, token, message)
        except BaseException:
            # Includes pickling errors from conn.send (unpicklable message):
            # the slot must not outlive the failed send.
            with self._pending_lock:
                del self._pending[token]
            raise
        slot.event.wait()
        with self._pending_lock:
            del self._pending[token]
        return slot.result()

    def ask(self, actor: int, message: object) -> object:
        self._check_actor(actor)
        return self._ask_raw(actor, message)

    def barrier(self) -> None:
        if self._closed:
            raise ExecutionError("actor group is closed")
        for actor in range(self.n_actors):
            if actor in self._dead:
                continue
            self._ask_raw(actor, _BARRIER_MSG)
        self.raise_crashes()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._closing = True
        for actor, conn in enumerate(self._conns):
            if actor in self._dead:
                continue
            try:
                conn.send((None, _STOP_MSG))
            except (OSError, BrokenPipeError):
                pass
        for process in self._processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover — defensive teardown
                process.terminate()
                process.join(timeout=5.0)
        # Let the router drain every pipe to EOF before it stops: events
        # (and crash reports) the workers sent just before exiting are still
        # buffered, and dropping them would lose finalised segments at the
        # hub's sinks.  The stop flag is only a fallback for a router wedged
        # on a connection that never reaches EOF.
        self._router.join(timeout=30.0)
        if self._router.is_alive():  # pragma: no cover — defensive teardown
            self._router_stop.set()
            self._router.join(timeout=5.0)
        for conn in self._conns:
            conn.close()
        for process in self._processes:
            process.close()
        self.raise_crashes()
