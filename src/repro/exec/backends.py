"""Pluggable execution backends: one runtime for every parallel surface.

Before this module existed the repository had two hand-rolled concurrency
layers: the fleet executor (:func:`repro.api.executor.run_many`) managed its
own ``ProcessPoolExecutor``, and the streaming hub partitioned devices across
purely in-process shards.  Both now delegate to an
:class:`ExecutionBackend`, which offers exactly two execution shapes:

- :meth:`ExecutionBackend.map_isolated` — run a picklable function over a
  sequence of tasks with **per-task error isolation**: every task yields a
  :class:`TaskOutcome` carrying either the result or a :class:`TaskFailure`,
  and one bad task can never sink its siblings.  This is the fleet
  executor's shape.
- :meth:`ExecutionBackend.start_actors` — spawn long-lived, stateful
  workers (see :mod:`repro.exec.actors`) with a tell/ask/barrier mailbox
  protocol and event routing back to the caller.  This is the streaming
  hub's shape: each actor owns a slice of the hub's shards.

Three backends implement both shapes:

``SerialBackend``
    Everything inline in the calling thread — zero overhead, the reference
    semantics every other backend must reproduce byte-identically.
``ThreadBackend``
    A thread per worker.  Python bytecode still serialises on the GIL, but
    the vectorized geometry kernels (and any I/O in sinks) release it, so
    shards overlap where it counts.
``ProcessBackend``
    A process per worker.  Functions, tasks, results and actor messages
    must be picklable; exceptions crossing the boundary are reduced to
    ``(type name, message)`` pairs.  On platforms whose multiprocessing
    start method is ``spawn`` (macOS, Windows), algorithms registered at
    runtime in the parent are only visible to workers when registration
    happens at import time; on Linux (``fork``) runtime registrations carry
    over.
``NodeBackend`` (:mod:`repro.exec.node`)
    A worker process per slot reached over a length-prefixed socket RPC
    with handshake, heartbeats and columnar wire frames — the distributed
    shard-fabric shape.  Same pickling contract as the process backend for
    generic messages; the hub's point batches cross as columnar frames.

:func:`resolve_backend` is the single factory every layer goes through, so
``"serial" | "thread" | "process" | "auto"`` mean the same thing in
``run_many``, ``StreamHub``, the perf harness and the CLI.
"""

from __future__ import annotations

import os
import traceback as _traceback
from abc import ABC, abstractmethod
from concurrent.futures import ProcessPoolExecutor, ThreadPoolExecutor
from dataclasses import dataclass, replace
from functools import partial
from typing import Callable, Sequence

from ..exceptions import InvalidParameterError
from .actors import ActorGroup, ProcessActorGroup, SerialActorGroup, ThreadActorGroup

__all__ = [
    "BACKEND_NAMES",
    "ExecutionBackend",
    "SerialBackend",
    "ThreadBackend",
    "ProcessBackend",
    "TaskFailure",
    "TaskOutcome",
    "resolve_backend",
]

BACKEND_NAMES = ("serial", "thread", "process", "node", "auto")
"""Accepted backend specifiers (``auto`` resolves by worker count)."""


@dataclass(frozen=True, slots=True)
class TaskFailure:
    """Why one isolated task failed.

    ``exception`` carries the original exception object when the failure
    happened in-process (serial and thread backends); failures crossing a
    process boundary are described by ``error_type``/``message`` only.
    ``traceback`` records the originally formatted traceback on every
    backend — unlike the exception object it is a plain string and
    survives the pickle boundary.
    """

    error_type: str
    message: str
    exception: BaseException | None = None
    traceback: str | None = None

    def __str__(self) -> str:
        return f"{self.error_type}: {self.message}"


@dataclass(frozen=True, slots=True)
class TaskOutcome:
    """Result slot of one task of a :meth:`map_isolated` run."""

    index: int
    value: object | None
    failure: TaskFailure | None = None

    @property
    def ok(self) -> bool:
        """Whether the task completed without raising."""
        return self.failure is None


def _isolated_call(fn: Callable, index: int, task: object) -> TaskOutcome:
    """Run one task, converting any exception into a :class:`TaskFailure`."""
    try:
        return TaskOutcome(index, fn(task))
    except Exception as error:  # noqa: BLE001 — isolation is the contract
        formatted = "".join(
            _traceback.format_exception(type(error), error, error.__traceback__)
        )
        return TaskOutcome(
            index, None, TaskFailure(type(error).__name__, str(error), error, formatted)
        )


def _isolated_call_remote(fn: Callable, pair: tuple[int, object]) -> TaskOutcome:
    """Pool wrapper: strip the exception object before it crosses the
    process boundary (arbitrary exceptions do not reliably pickle).  The
    formatted ``traceback`` string stays — it is the only record of the
    original failure site the parent ever sees."""
    index, task = pair
    outcome = _isolated_call(fn, index, task)
    if outcome.failure is not None and outcome.failure.exception is not None:
        outcome = replace(outcome, failure=replace(outcome.failure, exception=None))
    return outcome


class ExecutionBackend(ABC):
    """One way of executing work: serially, on threads, or on processes.

    Backends are cheap, stateless handles — pools and workers are created
    per call (``map_isolated``) or per group (``start_actors``), never held
    open between them.
    """

    #: Short name recorded in results and perf reports.
    name: str

    def __init__(self, workers: int = 1) -> None:
        if workers < 1:
            raise InvalidParameterError(f"workers must be at least 1, got {workers}")
        self.workers = workers

    def effective_workers(self, n_tasks: int) -> int:
        """Workers this backend would actually use for ``n_tasks`` tasks."""
        return max(1, min(self.workers, n_tasks))

    @abstractmethod
    def map_isolated(
        self, fn: Callable, tasks: Sequence, *, chunksize: int | None = None
    ) -> list[TaskOutcome]:
        """Run ``fn`` over ``tasks`` with per-task error isolation.

        Returns one :class:`TaskOutcome` per task, in input order.  The
        call itself never raises for a task failure; inspect
        ``outcome.failure``.  ``chunksize`` sizes the batches handed to each
        worker (process backend only; default gives each worker a handful).
        """

    @abstractmethod
    def start_actors(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> ActorGroup:
        """Spawn one long-lived actor per factory (see :mod:`.actors`).

        Each ``factory(emit)`` builds the actor's handler *inside* its
        worker, receiving an ``emit(event)`` callable that routes events to
        ``on_event(actor_index, event)`` in the caller's process.
        """

    def __repr__(self) -> str:
        return f"{type(self).__name__}(workers={self.workers})"


class SerialBackend(ExecutionBackend):
    """Everything inline: the reference semantics, zero concurrency."""

    name = "serial"

    def __init__(self, workers: int = 1) -> None:
        if workers != 1:
            raise InvalidParameterError(
                f"the serial backend runs exactly 1 worker, got workers={workers}"
            )
        super().__init__(1)

    def effective_workers(self, n_tasks: int) -> int:
        return 1

    def map_isolated(
        self, fn: Callable, tasks: Sequence, *, chunksize: int | None = None
    ) -> list[TaskOutcome]:
        return [_isolated_call(fn, index, task) for index, task in enumerate(tasks)]

    def start_actors(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> ActorGroup:
        return SerialActorGroup(factories, on_event=on_event)


class ThreadBackend(ExecutionBackend):
    """A worker thread per slot; shares memory with the caller."""

    name = "thread"

    def map_isolated(
        self, fn: Callable, tasks: Sequence, *, chunksize: int | None = None
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        with ThreadPoolExecutor(max_workers=self.effective_workers(len(tasks))) as pool:
            return list(pool.map(partial(_isolated_call_local, fn), enumerate(tasks)))

    def start_actors(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> ActorGroup:
        return ThreadActorGroup(factories, on_event=on_event)


def _isolated_call_local(fn: Callable, pair: tuple[int, object]) -> TaskOutcome:
    """Thread-pool wrapper (keeps the original exception object)."""
    index, task = pair
    return _isolated_call(fn, index, task)


class ProcessBackend(ExecutionBackend):
    """A worker process per slot; tasks and results cross pickle boundaries."""

    name = "process"

    def map_isolated(
        self, fn: Callable, tasks: Sequence, *, chunksize: int | None = None
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        pool_size = self.effective_workers(len(tasks))
        if chunksize is None:
            chunksize = max(1, len(tasks) // (pool_size * 4))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            return list(
                pool.map(
                    partial(_isolated_call_remote, fn),
                    enumerate(tasks),
                    chunksize=chunksize,
                )
            )

    def start_actors(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> ActorGroup:
        return ProcessActorGroup(factories, on_event=on_event)


def resolve_backend(
    spec: str | ExecutionBackend = "auto", *, workers: int | None = None
) -> ExecutionBackend:
    """Resolve a backend specifier to a configured :class:`ExecutionBackend`.

    Parameters
    ----------
    spec:
        ``"serial"``, ``"thread"``, ``"process"``, ``"node"``, ``"auto"``,
        or an already-constructed backend (returned unchanged, ``workers``
        ignored).  ``"auto"`` picks serial for ``workers in (None, 1)`` and
        process otherwise — the historical ``run_many`` behaviour.
    workers:
        Worker count for the concurrent backends; defaults to the CPU
        count.  The serial backend always runs exactly one worker and
        ignores this hint — so a ``for backend in (...)`` sweep can pass
        the same ``workers`` everywhere.
    """
    if isinstance(spec, ExecutionBackend):
        return spec
    if not isinstance(spec, str):
        raise InvalidParameterError(
            f"backend must be one of {BACKEND_NAMES} or an ExecutionBackend, "
            f"got {spec!r}"
        )
    name = spec.lower()
    if name not in BACKEND_NAMES:
        raise InvalidParameterError(
            f"unknown execution backend {spec!r}; available: {', '.join(BACKEND_NAMES)}"
        )
    if workers is not None and workers < 1:
        raise InvalidParameterError(f"workers must be at least 1, got {workers}")
    if name == "auto":
        name = "serial" if workers is None or workers == 1 else "process"
    if name == "serial":
        return SerialBackend()
    default_workers = workers if workers is not None else (os.cpu_count() or 2)
    if name == "thread":
        return ThreadBackend(default_workers)
    if name == "node":
        # Imported lazily: the node backend pulls in the streaming wire
        # codec, and importing it eagerly here would cycle through
        # ``repro.streaming`` → ``repro.exec`` during package init.
        from .node import NodeBackend

        return NodeBackend(default_workers)
    return ProcessBackend(default_workers)
