"""Distributed ``node`` backend: actor workers reached over sockets.

:class:`ProcessActorGroup` runs actors in child processes wired to the
parent by multiprocessing pipes — which works only because parent and
worker share a machine and an ancestry.  This module re-implements the
same tell/ask/barrier mailbox protocol over a length-prefixed socket RPC,
the shape a genuinely distributed shard fabric needs: workers *connect* to
the parent and complete a token handshake, liveness is observed through
heartbeats rather than process handles, and every payload crosses the
boundary as a :mod:`repro.streaming.wire` frame.

Today the workers are still local child processes (``127.0.0.1``), so the
backend is testable in CI and byte-identical to the serial reference; the
protocol itself never assumes locality.

Packet layout (one packet per mailbox operation)::

    u32 LE packet length | u8 op | i64 LE token | payload

``token`` is ``-1`` for fire-and-forget ops and a parent-issued correlation
id for ``ASK``/``BARRIER`` round trips.  The payload is a wire frame body:

- generic messages, replies and events travel as ``blob`` frames wrapping a
  pickle (the same contract as the process backend's pipes);
- the hub's hot-path ``("push_frame", <bytes>)`` tells travel as the raw
  columnar ``point-batch`` frame — zero pickling on the ingest path;
- shard segment events travel as columnar ``segment-batch`` frames;
- handshakes, crash reports and error replies are ``json`` frames, so a
  failure is never trapped behind an unpicklable payload.

Failure semantics: a worker that disconnects, dies, or goes silent past
the heartbeat timeout is *marked dead* — its pending round trips fail with
:class:`~repro.exceptions.ExecutionError`, a crash is recorded for the
next barrier, and the rest of the group keeps running.  Recovery is the
hub's checkpoint path: restore the last shipped checkpoint onto a fresh
(possibly smaller) group via ``restore_hub(..., backend="node")``.
"""

from __future__ import annotations

import itertools
import multiprocessing
import os
import pickle
import socket
import struct
import threading
import time
from functools import partial
from typing import Callable, Sequence

from ..exceptions import ExecutionError, InvalidParameterError, WireFormatError
from ..streaming.wire import decode_frame, encode_frame
from ..trajectory.piecewise import SegmentRecord
from .actors import ActorCrash, ActorGroup, _PendingSlot, _revive_exception
from .backends import ExecutionBackend, TaskOutcome, _isolated_call_remote

__all__ = [
    "NodeActorGroup",
    "NodeBackend",
    "NODE_PROTOCOL_VERSION",
]

NODE_PROTOCOL_VERSION = 1
"""Handshake version; parent and worker must agree exactly."""

_LENGTH = struct.Struct("<I")
_PACKET = struct.Struct("<Bq")

_OP_HELLO = 1
_OP_WELCOME = 2
_OP_TELL = 3
_OP_TELL_FRAME = 4
_OP_ASK = 5
_OP_BARRIER = 6
_OP_STOP = 7
_OP_REPLY = 8
_OP_EVENT = 9
_OP_CRASH = 10
_OP_HEARTBEAT = 11

_NO_TOKEN = -1

_LOCALHOST = "127.0.0.1"


# ---------------------------------------------------------------------- #
# Packet plumbing (shared by parent and worker)
# ---------------------------------------------------------------------- #
def _pack_packet(op: int, token: int, payload: bytes) -> bytes:
    header = _PACKET.pack(op, token)
    return _LENGTH.pack(len(header) + len(payload)) + header + payload


def _recv_exact(sock: socket.socket, size: int) -> bytes | None:
    """Read exactly ``size`` bytes; ``None`` on end-of-stream."""
    chunks: list[bytes] = []
    remaining = size
    while remaining:
        chunk = sock.recv(remaining)
        if not chunk:
            return None
        chunks.append(chunk)
        remaining -= len(chunk)
    return b"".join(chunks)


def _recv_packet(sock: socket.socket) -> tuple[int, int, bytes] | None:
    """Read one packet; ``None`` on end-of-stream (clean or mid-packet —
    either way the peer is gone)."""
    prefix = _recv_exact(sock, _LENGTH.size)
    if prefix is None:
        return None
    (length,) = _LENGTH.unpack(prefix)
    if length < _PACKET.size:
        raise WireFormatError(f"node packet too short ({length} bytes)")
    body = _recv_exact(sock, length)
    if body is None:
        return None
    op, token = _PACKET.unpack_from(body)
    return op, token, body[_PACKET.size :]


def _send_packet(
    sock: socket.socket, lock: threading.Lock, op: int, token: int, payload: bytes
) -> None:
    packet = _pack_packet(op, token, payload)
    with lock:
        sock.sendall(packet)


def _encode_value(value: object) -> bytes:
    """Encode a generic mailbox payload (pickle wrapped in a blob frame)."""
    return encode_frame("blob", pickle.dumps(value))


def _decode_value(body: bytes) -> object:
    """Inverse of :func:`_encode_value`; also accepts plain json frames."""
    name, payload = decode_frame(body)
    if name == "blob":
        return pickle.loads(payload)
    return payload


def _encode_error(error_type: str, message: str) -> bytes:
    return encode_frame("json", [error_type, message])


def _decode_error(body: bytes) -> tuple[str, str]:
    payload = decode_frame(body)[1]
    if (
        not isinstance(payload, list)
        or len(payload) != 2
        or not all(isinstance(part, str) for part in payload)
    ):
        raise WireFormatError(f"malformed node error payload: {payload!r}")
    return payload[0], payload[1]


def _is_segment_event(event: object) -> bool:
    """Whether ``event`` is a shard segment event the columnar
    ``segment-batch`` frame can carry faithfully."""
    if not (isinstance(event, tuple) and event and isinstance(event[0], str)):
        return False
    if event[0] == "segments" and len(event) == 3:
        _, device, records = event
        level = 0
    elif event[0] == "level_segments" and len(event) == 4:
        _, device, level, records = event
    else:
        return False
    return (
        isinstance(device, str)
        and isinstance(level, int)
        and not isinstance(level, bool)
        and 0 <= level <= 0xFFFFFFFF
        and isinstance(records, (list, tuple))
        and all(isinstance(record, SegmentRecord) for record in records)
    )


def _encode_event(event: object) -> bytes:
    """Encode one emitted event: segment events columnar, the rest pickled."""
    if _is_segment_event(event):
        assert isinstance(event, tuple)
        if event[0] == "segments":
            payload = ("segments", event[1], 0, list(event[2]))
        else:
            payload = ("level_segments", event[1], event[2], list(event[3]))
        return encode_frame("segment-batch", payload)
    return _encode_value(event)


def _decode_event(body: bytes) -> object:
    """Inverse of :func:`_encode_event`."""
    name, payload = decode_frame(body)
    if name == "segment-batch":
        tag, device, level, records = payload
        if tag == "segments":
            return (tag, device, records)
        return (tag, device, level, records)
    if name == "blob":
        return pickle.loads(payload)
    return payload


# ---------------------------------------------------------------------- #
# Worker side
# ---------------------------------------------------------------------- #
def _node_worker_main(
    factory: Callable,
    host: str,
    port: int,
    index: int,
    secret: str,
    heartbeat_interval: float,
) -> None:
    """Entry point of one node worker process: connect, handshake, serve."""
    deadline = time.monotonic() + 30.0
    while True:
        try:
            sock = socket.create_connection((host, port))
            break
        except OSError:
            if time.monotonic() > deadline:
                return
            time.sleep(0.05)
    send_lock = threading.Lock()

    def send(op: int, token: int, payload: bytes) -> None:
        _send_packet(sock, send_lock, op, token, payload)

    try:
        send(
            _OP_HELLO,
            _NO_TOKEN,
            encode_frame(
                "json",
                {"index": index, "secret": secret, "version": NODE_PROTOCOL_VERSION},
            ),
        )
        welcome = _recv_packet(sock)
        if welcome is None or welcome[0] != _OP_WELCOME:
            return

        stop_heartbeat = threading.Event()

        def heartbeat() -> None:
            while not stop_heartbeat.wait(heartbeat_interval):
                try:
                    send(_OP_HEARTBEAT, _NO_TOKEN, b"")
                except OSError:
                    return

        threading.Thread(
            target=heartbeat, name=f"repro-node-heartbeat-{index}", daemon=True
        ).start()

        def emit(event: object) -> None:
            send(_OP_EVENT, _NO_TOKEN, _encode_event(event))

        try:
            handler = factory(emit)
        except Exception as error:  # noqa: BLE001 — surfaced as a crash
            handler = None
            send(_OP_CRASH, _NO_TOKEN, _encode_error(type(error).__name__, str(error)))

        while True:
            packet = _recv_packet(sock)
            if packet is None:
                break
            op, token, payload = packet
            if op == _OP_STOP:
                break
            if op == _OP_BARRIER:
                send(_OP_REPLY, token, b"\x01" + encode_frame("json", None))
                continue
            if op not in (_OP_TELL, _OP_TELL_FRAME, _OP_ASK):
                continue
            try:
                message: object
                if op == _OP_TELL_FRAME:
                    message = ("push_frame", payload)
                else:
                    message = _decode_value(payload)
            except Exception as error:  # noqa: BLE001 — undecodable message
                info = _encode_error(type(error).__name__, str(error))
                if op == _OP_ASK:
                    send(_OP_REPLY, token, b"\x00" + info)
                else:
                    send(_OP_CRASH, _NO_TOKEN, info)
                continue
            if handler is None:
                info = _encode_error("ExecutionError", "actor failed to initialise")
                if op == _OP_ASK:
                    send(_OP_REPLY, token, b"\x00" + info)
                else:
                    send(_OP_CRASH, _NO_TOKEN, info)
                continue
            try:
                reply = handler.handle(message)
            except Exception as error:  # noqa: BLE001 — shipped to the caller
                info = _encode_error(type(error).__name__, str(error))
                if op == _OP_ASK:
                    send(_OP_REPLY, token, b"\x00" + info)
                else:
                    send(_OP_CRASH, _NO_TOKEN, info)
            else:
                if op != _OP_ASK:
                    continue
                try:
                    send(_OP_REPLY, token, b"\x01" + _encode_value(reply))
                except OSError:
                    raise
                except Exception as error:  # noqa: BLE001 — unpicklable reply
                    send(
                        _OP_REPLY,
                        token,
                        b"\x00"
                        + _encode_error(
                            "ExecutionError", f"reply not sendable: {error}"
                        ),
                    )
        stop_heartbeat.set()
    except OSError:
        pass  # the parent is gone; nothing left to report to
    finally:
        try:
            sock.close()
        except OSError:  # pragma: no cover — teardown best effort
            pass


# ---------------------------------------------------------------------- #
# Parent side
# ---------------------------------------------------------------------- #
class NodeActorGroup(ActorGroup):
    """Actor workers in child processes reached over a socket RPC.

    Implements the same mailbox contract as :class:`ProcessActorGroup`
    (FIFO per actor, events delivered before the triggering round trip
    returns, crashes surfaced at the next barrier) with socket transport,
    a token handshake, and heartbeat-based dead-worker detection.
    """

    backend_name = "node"

    def __init__(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        connect_timeout: float = 30.0,
    ) -> None:
        super().__init__(len(factories))
        self._on_event = on_event
        self._event_lock = threading.Lock()
        self._pending_lock = threading.Lock()
        self._pending: dict[int, _PendingSlot] = {}
        self._tokens = itertools.count()
        self._dead: set[int] = set()
        self._closing = False
        self._heartbeat_interval = heartbeat_interval
        self._heartbeat_timeout = heartbeat_timeout

        listener = socket.create_server((_LOCALHOST, 0))
        port = listener.getsockname()[1]
        secret = os.urandom(16).hex()
        context = multiprocessing.get_context()
        self._processes = []
        for index, factory in enumerate(factories):
            process = context.Process(
                target=_node_worker_main,
                args=(
                    factory,
                    _LOCALHOST,
                    port,
                    index,
                    secret,
                    heartbeat_interval,
                ),
                daemon=True,
            )
            process.start()
            self._processes.append(process)
        try:
            self._sockets = self._handshake(listener, secret, connect_timeout)
        except BaseException:
            for process in self._processes:
                process.terminate()
            listener.close()
            raise
        listener.close()

        now = time.monotonic()
        self._last_seen = [now] * self.n_actors
        self._send_locks = [threading.Lock() for _ in self._sockets]
        self._readers = [
            threading.Thread(
                target=self._read_loop,
                args=(index,),
                name=f"repro-node-reader-{index}",
                daemon=True,
            )
            for index in range(self.n_actors)
        ]
        self._monitor_stop = threading.Event()
        self._monitor = threading.Thread(
            target=self._monitor_loop, name="repro-node-monitor", daemon=True
        )
        for reader in self._readers:
            reader.start()
        self._monitor.start()

    # -- startup --------------------------------------------------------- #
    def _handshake(
        self, listener: socket.socket, secret: str, timeout: float
    ) -> list[socket.socket]:
        """Accept one authenticated connection per worker, in any order."""
        deadline = time.monotonic() + timeout
        sockets: dict[int, socket.socket] = {}
        listener.settimeout(0.1)
        try:
            while len(sockets) < self.n_actors:
                if time.monotonic() > deadline:
                    raise ExecutionError(
                        f"node worker handshake timed out after {timeout:.0f}s "
                        f"({len(sockets)}/{self.n_actors} workers connected)"
                    )
                for index, process in enumerate(self._processes):
                    if index not in sockets and not process.is_alive():
                        raise ExecutionError(
                            f"node worker {index} died before completing its handshake"
                        )
                try:
                    conn, _ = listener.accept()
                except TimeoutError:
                    continue
                conn.settimeout(5.0)
                index = self._validate_hello(conn, secret, sockets)
                _send_packet(
                    conn,
                    threading.Lock(),
                    _OP_WELCOME,
                    _NO_TOKEN,
                    encode_frame("json", {"version": NODE_PROTOCOL_VERSION}),
                )
                conn.settimeout(None)
                sockets[index] = conn
        except BaseException:
            for accepted in sockets.values():
                accepted.close()
            raise
        return [sockets[index] for index in range(self.n_actors)]

    def _validate_hello(
        self, conn: socket.socket, secret: str, sockets: dict[int, socket.socket]
    ) -> int:
        try:
            packet = _recv_packet(conn)
        except (TimeoutError, OSError, WireFormatError) as error:
            conn.close()
            raise ExecutionError(f"node worker handshake failed: {error}") from error
        if packet is None or packet[0] != _OP_HELLO:
            conn.close()
            raise ExecutionError("node worker handshake failed: no HELLO packet")
        try:
            hello = decode_frame(packet[2])[1]
        except WireFormatError as error:
            conn.close()
            raise ExecutionError(f"node worker handshake failed: {error}") from error
        if not isinstance(hello, dict) or hello.get("secret") != secret:
            conn.close()
            raise ExecutionError(
                "node worker handshake failed: bad or missing session token"
            )
        if hello.get("version") != NODE_PROTOCOL_VERSION:
            conn.close()
            raise ExecutionError(
                f"node worker handshake failed: protocol version "
                f"{hello.get('version')!r} (parent speaks {NODE_PROTOCOL_VERSION})"
            )
        index = hello.get("index")
        if not isinstance(index, int) or not 0 <= index < self.n_actors:
            conn.close()
            raise ExecutionError(
                f"node worker handshake failed: bad worker index {index!r}"
            )
        if index in sockets:
            conn.close()
            raise ExecutionError(
                f"node worker handshake failed: duplicate worker index {index}"
            )
        return index

    # -- reader / monitor threads ---------------------------------------- #
    def _read_loop(self, index: int) -> None:
        sock = self._sockets[index]
        while True:
            try:
                packet = _recv_packet(sock)
            except (OSError, WireFormatError):
                packet = None
            if packet is None:
                self._mark_dead(index, "connection lost")
                return
            self._last_seen[index] = time.monotonic()
            op, token, payload = packet
            if op == _OP_HEARTBEAT:
                continue
            if op == _OP_EVENT:
                self._handle_event(index, payload)
            elif op == _OP_REPLY:
                self._handle_reply(index, token, payload)
            elif op == _OP_CRASH:
                self._handle_crash(index, payload)

    def _handle_event(self, index: int, payload: bytes) -> None:
        if self._on_event is None:
            return
        try:
            event = _decode_event(payload)
        except Exception as error:  # noqa: BLE001 — a bad event frame must
            # not kill the reader (its death would wedge the group).
            with self._pending_lock:
                self.crashes.append(ActorCrash(index, type(error).__name__, str(error)))
            return
        with self._event_lock:
            try:
                self._on_event(index, event)
            except Exception as error:  # noqa: BLE001 — the reader must
                # survive a broken event callback; surface it at the next
                # barrier like every in-process group does.
                with self._pending_lock:
                    self.crashes.append(
                        ActorCrash(index, type(error).__name__, str(error))
                    )

    def _handle_reply(self, index: int, token: int, payload: bytes) -> None:
        try:
            if not payload:
                raise WireFormatError("empty reply payload")
            if payload[0]:
                self._resolve(token, True, _decode_value(payload[1:]))
            else:
                error_type, message = _decode_error(payload[1:])
                self._resolve(token, False, _revive_exception(error_type, message))
        except Exception as error:  # noqa: BLE001 — an undecodable reply
            # must still resolve the waiter, or the ask would hang forever.
            self._resolve(
                token,
                False,
                ExecutionError(f"actor {index} sent an undecodable reply: {error}"),
            )

    def _handle_crash(self, index: int, payload: bytes) -> None:
        try:
            error_type, message = _decode_error(payload)
        except Exception as error:  # noqa: BLE001 — keep the reader alive
            error_type, message = type(error).__name__, str(error)
        with self._pending_lock:
            self.crashes.append(ActorCrash(index, error_type, message))

    def _monitor_loop(self) -> None:
        while not self._monitor_stop.wait(self._heartbeat_interval):
            now = time.monotonic()
            for index in range(self.n_actors):
                if index in self._dead:
                    continue
                silent = now - self._last_seen[index]
                if silent > self._heartbeat_timeout:
                    self._mark_dead(
                        index,
                        f"no heartbeat for {silent:.1f}s "
                        f"(timeout {self._heartbeat_timeout:.1f}s)",
                    )

    def _mark_dead(self, index: int, reason: str) -> None:
        """Fail the worker over: record the crash, fail its pending round
        trips, close its socket.  Idempotent."""
        error = ExecutionError(f"actor {index} node worker died: {reason}")
        with self._pending_lock:
            if index in self._dead:
                return
            self._dead.add(index)
            if not self._closing:  # EOF during close is a normal shutdown
                self.crashes.append(ActorCrash(index, "ExecutionError", str(error)))
            slots = [slot for slot in self._pending.values() if slot.actor == index]
        for slot in slots:
            slot.resolve(False, error)
        try:
            self._sockets[index].close()
        except OSError:  # pragma: no cover — teardown best effort
            pass

    def _resolve(self, token: int, ok: bool, value: object) -> None:
        with self._pending_lock:
            slot = self._pending.get(token)
        if slot is None:  # already failed over by _mark_dead
            return
        slot.resolve(ok, value)

    # -- caller side ------------------------------------------------------ #
    def worker_pids(self) -> list[int | None]:
        """Worker process ids, by actor index (for chaos drills and ops)."""
        return [process.pid for process in self._processes]

    def _send(self, actor: int, op: int, token: int, payload: bytes) -> None:
        if actor in self._dead:
            raise ExecutionError(f"actor {actor} node worker died")
        try:
            _send_packet(self._sockets[actor], self._send_locks[actor], op, token, payload)
        except OSError as error:
            self._mark_dead(actor, f"send failed: {error}")
            raise ExecutionError(f"actor {actor} is unreachable: {error}") from error

    def tell(self, actor: int, message: object) -> None:
        self._check_actor(actor)
        if (
            isinstance(message, tuple)
            and len(message) == 2
            and message[0] == "push_frame"
            and isinstance(message[1], (bytes, bytearray))
        ):
            # The hub's hot path: the columnar frame is already encoded,
            # ship its bytes verbatim — no pickle anywhere on the route.
            self._send(actor, _OP_TELL_FRAME, _NO_TOKEN, bytes(message[1]))
            return
        self._send(actor, _OP_TELL, _NO_TOKEN, _encode_value(message))

    def _ask_raw(self, actor: int, op: int, payload: bytes) -> object:
        token = next(self._tokens)
        slot = _PendingSlot(actor)
        with self._pending_lock:
            self._pending[token] = slot
        try:
            self._send(actor, op, token, payload)
        except BaseException:
            # Includes pickling errors from _encode_value upstream callers:
            # the slot must not outlive the failed send.
            with self._pending_lock:
                del self._pending[token]
            raise
        slot.event.wait()
        with self._pending_lock:
            del self._pending[token]
        return slot.result()

    def ask(self, actor: int, message: object) -> object:
        self._check_actor(actor)
        return self._ask_raw(actor, _OP_ASK, _encode_value(message))

    def barrier(self) -> None:
        if self._closed:
            raise ExecutionError("actor group is closed")
        for actor in range(self.n_actors):
            if actor in self._dead:
                continue
            self._ask_raw(actor, _OP_BARRIER, b"")
        self.raise_crashes()

    def close(self) -> None:
        if self._closed:
            return
        self._closed = True
        self._closing = True
        self._monitor_stop.set()
        for actor in range(self.n_actors):
            if actor in self._dead:
                continue
            try:
                self._send(actor, _OP_STOP, _NO_TOKEN, b"")
            except ExecutionError:
                pass
        for process in self._processes:
            process.join(timeout=30.0)
            if process.is_alive():  # pragma: no cover — defensive teardown
                process.terminate()
                process.join(timeout=5.0)
        # Let every reader drain its socket to EOF before teardown: events
        # the workers sent just before exiting are still buffered, and
        # dropping them would lose finalised segments at the hub's sinks.
        for reader in self._readers:
            reader.join(timeout=30.0)
            if reader.is_alive():  # pragma: no cover — defensive teardown
                break
        for sock in self._sockets:
            try:
                sock.close()
            except OSError:  # pragma: no cover — teardown best effort
                pass
        self._monitor.join(timeout=5.0)
        for process in self._processes:
            process.close()
        self.raise_crashes()


# ---------------------------------------------------------------------- #
# Backend
# ---------------------------------------------------------------------- #
class _NodeTaskRunner:
    """Stateless actor handler that runs one isolated task per ``ask``."""

    def __init__(self, fn: Callable) -> None:
        self._fn = fn

    def handle(self, message: object) -> TaskOutcome:
        if not (isinstance(message, tuple) and len(message) == 3 and message[0] == "run"):
            raise ExecutionError(f"unexpected task-runner message: {message!r}")
        _, index, task = message
        return _isolated_call_remote(self._fn, (index, task))


def _task_runner_factory(fn: Callable, emit: Callable[[object], None]) -> _NodeTaskRunner:
    return _NodeTaskRunner(fn)


class NodeBackend(ExecutionBackend):
    """A socket-connected worker process per slot (see :class:`NodeActorGroup`).

    Functions, tasks, generic messages and results must be picklable, like
    the process backend; the hub's point batches bypass pickle entirely via
    the columnar wire frames.  ``heartbeat_timeout`` bounds how long a
    silent worker is trusted before the group fails it over.
    """

    name = "node"

    def __init__(
        self,
        workers: int = 1,
        *,
        heartbeat_interval: float = 0.5,
        heartbeat_timeout: float = 15.0,
        connect_timeout: float = 30.0,
    ) -> None:
        super().__init__(workers)
        if heartbeat_interval <= 0:
            raise InvalidParameterError(
                f"heartbeat_interval must be positive, got {heartbeat_interval}"
            )
        if heartbeat_timeout <= heartbeat_interval:
            raise InvalidParameterError(
                f"heartbeat_timeout must exceed heartbeat_interval, got "
                f"{heartbeat_timeout} <= {heartbeat_interval}"
            )
        if connect_timeout <= 0:
            raise InvalidParameterError(
                f"connect_timeout must be positive, got {connect_timeout}"
            )
        self.heartbeat_interval = heartbeat_interval
        self.heartbeat_timeout = heartbeat_timeout
        self.connect_timeout = connect_timeout

    def map_isolated(
        self, fn: Callable, tasks: Sequence, *, chunksize: int | None = None
    ) -> list[TaskOutcome]:
        if not tasks:
            return []
        n_workers = self.effective_workers(len(tasks))
        group = self.start_actors([partial(_task_runner_factory, fn)] * n_workers)
        results: list[TaskOutcome | None] = [None] * len(tasks)
        failures: list[BaseException] = []

        def drive(worker: int) -> None:
            try:
                for index in range(worker, len(tasks), n_workers):
                    outcome = group.ask(worker, ("run", index, tasks[index]))
                    if not isinstance(outcome, TaskOutcome):
                        raise ExecutionError(
                            f"task runner returned {type(outcome).__name__}, "
                            "expected TaskOutcome"
                        )
                    results[index] = outcome
            except BaseException as error:  # noqa: BLE001 — re-raised below
                failures.append(error)

        try:
            drivers = [
                threading.Thread(
                    target=drive, args=(worker,), name=f"repro-node-map-{worker}"
                )
                for worker in range(n_workers)
            ]
            for driver in drivers:
                driver.start()
            for driver in drivers:
                driver.join()
        finally:
            try:
                group.close()
            except ExecutionError:
                if not failures:
                    raise
        if failures:
            raise failures[0]
        missing = [index for index, outcome in enumerate(results) if outcome is None]
        if missing:  # pragma: no cover — drivers either fill or fail
            raise ExecutionError(f"tasks {missing} produced no outcome")
        return [outcome for outcome in results if outcome is not None]

    def start_actors(
        self,
        factories: Sequence[Callable],
        *,
        on_event: Callable[[int, object], None] | None = None,
    ) -> ActorGroup:
        return NodeActorGroup(
            factories,
            on_event=on_event,
            heartbeat_interval=self.heartbeat_interval,
            heartbeat_timeout=self.heartbeat_timeout,
            connect_timeout=self.connect_timeout,
        )
