"""The Douglas–Peucker family of batch simplification algorithms.

``DP`` (Douglas & Peucker, 1973) is the classic top-down batch algorithm and
the paper's reference point for compression quality: it recursively splits a
trajectory at the point farthest from the line joining the first and last
points until every point is within the error bound.  Worst-case time is
``O(n^2)``; the recursion is implemented iteratively (explicit stack) and the
inner distance computations are vectorised with NumPy.

``DP-SED`` (a.k.a. TD-TR, Meratnia & de By 2004) is the same algorithm with
the synchronised Euclidean distance, provided as an extension baseline.

The distance computations run on the trajectory's structure-of-arrays view
(:meth:`~repro.trajectory.model.Trajectory.soa`) through the geometry
kernels, so the ``vectorized``/``scalar`` backend flag of
:mod:`repro.core.config` applies to the whole recursion.
"""

from __future__ import annotations

from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .base import trivial_representation, validate_epsilon

__all__ = ["douglas_peucker", "douglas_peucker_sed", "dp_retained_indices"]


def dp_retained_indices(
    trajectory: Trajectory, epsilon: float, *, use_sed: bool = False
) -> list[int]:
    """Indices of the points Douglas–Peucker retains for ``trajectory``.

    The first and last indices are always retained.  The function is the
    shared core of :func:`douglas_peucker` and :func:`douglas_peucker_sed`.
    """
    validate_epsilon(epsilon)
    n = len(trajectory)
    if n < 3:
        return list(range(n))
    soa = trajectory.soa()
    retained = {0, n - 1}
    stack: list[tuple[int, int]] = [(0, n - 1)]
    while stack:
        first, last = stack.pop()
        if last - first < 2:
            continue
        max_distance, split = soa.max_chord_deviation(first, last, use_sed=use_sed)
        if max_distance <= epsilon:
            continue
        retained.add(split)
        stack.append((first, split))
        stack.append((split, last))
    return sorted(retained)


def douglas_peucker(
    trajectory: Trajectory, epsilon: float, *, use_sed: bool = False
) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with the Douglas–Peucker algorithm.

    Parameters
    ----------
    trajectory:
        The trajectory to compress.
    epsilon:
        The error bound ``zeta``.
    use_sed:
        Use the synchronised Euclidean distance instead of the perpendicular
        distance (this yields the TD-TR variant).
    """
    algorithm = "dp-sed" if use_sed else "dp"
    trivial = trivial_representation(trajectory, algorithm=algorithm)
    if trivial is not None:
        return trivial
    indices = dp_retained_indices(trajectory, epsilon, use_sed=use_sed)
    return PiecewiseRepresentation.from_retained_indices(
        trajectory, indices, algorithm=algorithm
    )


def douglas_peucker_sed(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """TD-TR: Douglas–Peucker with the synchronised Euclidean distance."""
    return douglas_peucker(trajectory, epsilon, use_sed=True)
