"""Bounded Quadrant System (BQS) and its fast variant FBQS (Liu et al., ICDE 2015).

BQS is the strongest *existing* online baseline in the paper.  For the open
window anchored at ``Ps`` it splits the plane into four quadrants; per
quadrant it maintains a bounding box and two bounding lines (the buffered
points with the largest and smallest angle seen from ``Ps``).  The convex
region obtained by clipping the box with the angular wedge has at most eight
vertices — the *significant points* — and the distance from any buffered
point to a candidate line is bounded above by the maximum distance over those
vertices, and below by the distances of the actual extreme points.

* **BQS** uses both bounds; when they are inconclusive it falls back to an
  exact scan of the buffered window, hence ``O(n^2)`` worst-case time.
* **FBQS** (implemented in :mod:`repro.algorithms.fbqs`) skips the fallback:
  as soon as the upper bound exceeds the error bound, the window is closed.
  This makes it linear time and is the fastest existing baseline the paper
  compares OPERB against.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

from ..geometry import kernels
from ..geometry.clipping import bounding_box_polygon, clip_box_with_wedge
from ..geometry.point import Point, decode_point, encode_point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .base import trivial_representation, validate_epsilon

__all__ = ["QuadrantBound", "BoundedQuadrantWindow", "bqs"]


@dataclass
class QuadrantBound:
    """Bounding structures of one quadrant of the open window."""

    anchor: Point
    min_x: float = math.inf
    max_x: float = -math.inf
    min_y: float = math.inf
    max_y: float = -math.inf
    low_angle: float = math.inf
    high_angle: float = -math.inf
    low_point: Point | None = None
    high_point: Point | None = None
    point_min_x: Point | None = None
    point_max_x: Point | None = None
    point_min_y: Point | None = None
    point_max_y: Point | None = None
    count: int = 0

    def add(self, point: Point) -> None:
        """Fold a buffered point into the quadrant's bounds."""
        self.count += 1
        if point.x < self.min_x:
            self.min_x = point.x
            self.point_min_x = point
        if point.x > self.max_x:
            self.max_x = point.x
            self.point_max_x = point
        if point.y < self.min_y:
            self.min_y = point.y
            self.point_min_y = point
        if point.y > self.max_y:
            self.max_y = point.y
            self.point_max_y = point
        dx = point.x - self.anchor.x
        dy = point.y - self.anchor.y
        angle = math.atan2(dy, dx)
        if angle < 0.0:
            angle += 2.0 * math.pi
        if angle < self.low_angle:
            self.low_angle = angle
            self.low_point = point
        if angle > self.high_angle:
            self.high_angle = angle
            self.high_point = point

    def significant_vertices(self) -> list[Point]:
        """The (at most eight) vertices bounding every buffered point."""
        if self.count == 0:
            return []
        box = bounding_box_polygon(self.min_x, self.min_y, self.max_x, self.max_y)
        if self.count == 1 or self.low_point is None or self.high_point is None:
            return box
        low_dx = math.cos(self.low_angle)
        low_dy = math.sin(self.low_angle)
        high_dx = math.cos(self.high_angle)
        high_dy = math.sin(self.high_angle)
        clipped = clip_box_with_wedge(box, self.anchor, low_dx, low_dy, high_dx, high_dy)
        return clipped if clipped else box

    def witness_points(self) -> list[Point]:
        """Actual trajectory points usable as a lower bound on the max distance."""
        witnesses = [
            self.low_point,
            self.high_point,
            self.point_min_x,
            self.point_max_x,
            self.point_min_y,
            self.point_max_y,
        ]
        return [p for p in witnesses if p is not None]

    def to_dict(self) -> dict | None:
        """JSON-serialisable state (``None`` for an untouched quadrant).

        An empty quadrant's bounds are the +/-inf sentinels, which strict
        JSON cannot carry — it is collapsed to ``None`` instead; every bound
        of a non-empty quadrant is finite.
        """
        if self.count == 0:
            return None
        return {
            "min_x": self.min_x,
            "max_x": self.max_x,
            "min_y": self.min_y,
            "max_y": self.max_y,
            "low_angle": self.low_angle,
            "high_angle": self.high_angle,
            "low_point": encode_point(self.low_point),
            "high_point": encode_point(self.high_point),
            "point_min_x": encode_point(self.point_min_x),
            "point_max_x": encode_point(self.point_max_x),
            "point_min_y": encode_point(self.point_min_y),
            "point_max_y": encode_point(self.point_max_y),
            "count": self.count,
        }

    @classmethod
    def from_dict(cls, payload: dict | None, anchor: Point) -> "QuadrantBound":
        """Rebuild a quadrant from :meth:`to_dict` output."""
        quadrant = cls(anchor)
        if payload is None:
            return quadrant
        quadrant.min_x = float(payload["min_x"])
        quadrant.max_x = float(payload["max_x"])
        quadrant.min_y = float(payload["min_y"])
        quadrant.max_y = float(payload["max_y"])
        quadrant.low_angle = float(payload["low_angle"])
        quadrant.high_angle = float(payload["high_angle"])
        quadrant.low_point = decode_point(payload["low_point"])
        quadrant.high_point = decode_point(payload["high_point"])
        quadrant.point_min_x = decode_point(payload["point_min_x"])
        quadrant.point_max_x = decode_point(payload["point_max_x"])
        quadrant.point_min_y = decode_point(payload["point_min_y"])
        quadrant.point_max_y = decode_point(payload["point_max_y"])
        quadrant.count = int(payload["count"])
        return quadrant


class BoundedQuadrantWindow:
    """The per-window bounding state shared by BQS and FBQS."""

    def __init__(self, anchor: Point) -> None:
        self.anchor = anchor
        self.quadrants = [QuadrantBound(anchor) for _ in range(4)]
        self.buffered = 0

    def _quadrant_of(self, point: Point) -> QuadrantBound:
        dx = point.x - self.anchor.x
        dy = point.y - self.anchor.y
        if dx >= 0.0 and dy >= 0.0:
            return self.quadrants[0]
        if dx < 0.0 and dy >= 0.0:
            return self.quadrants[1]
        if dx < 0.0 and dy < 0.0:
            return self.quadrants[2]
        return self.quadrants[3]

    def add(self, point: Point) -> None:
        """Buffer ``point`` (it becomes part of the window's bounded set)."""
        self.buffered += 1
        self._quadrant_of(point).add(point)

    def to_dict(self) -> dict:
        """JSON-serialisable state of the whole window."""
        return {
            "anchor": encode_point(self.anchor),
            "quadrants": [quadrant.to_dict() for quadrant in self.quadrants],
            "buffered": self.buffered,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "BoundedQuadrantWindow":
        """Rebuild a window from :meth:`to_dict` output."""
        window = cls(Point(*payload["anchor"]))
        window.quadrants = [
            QuadrantBound.from_dict(entry, window.anchor) for entry in payload["quadrants"]
        ]
        window.buffered = int(payload["buffered"])
        return window

    def distance_bounds(self, candidate: Point) -> tuple[float, float]:
        """Lower and upper bounds on the max distance of buffered points.

        The bounds refer to the distance from any buffered point to the line
        ``anchor -> candidate``.
        """
        if self.buffered == 0:
            return 0.0, 0.0
        if candidate.x == self.anchor.x and candidate.y == self.anchor.y:
            # Degenerate candidate line: treat as unbounded uncertainty.
            upper = 0.0
            lower = 0.0
            for quadrant in self.quadrants:
                for witness in quadrant.witness_points():
                    d = witness.distance_to(self.anchor)
                    lower = max(lower, d)
                    upper = max(upper, d)
            return lower, upper
        vertices: list[Point] = []
        witnesses: list[Point] = []
        for quadrant in self.quadrants:
            if quadrant.count == 0:
                continue
            vertices.extend(quadrant.significant_vertices())
            witnesses.extend(quadrant.witness_points())
        upper = self._max_distance_to_candidate_line(vertices, candidate)
        lower = self._max_distance_to_candidate_line(witnesses, candidate)
        return lower, upper

    def _max_distance_to_candidate_line(
        self, points: list[Point], candidate: Point
    ) -> float:
        """Max distance of ``points`` to the line ``anchor -> candidate``.

        At most ~14 points per quadrant reach this check and it runs once per
        streamed candidate, so the scalar point kernel beats NumPy's array
        dispatch overhead here; the shared formula still lives in
        :mod:`repro.geometry.kernels`.
        """
        best = 0.0
        for point in points:
            d = kernels.ped_point_to_chord(
                point.x, point.y, self.anchor.x, self.anchor.y, candidate.x, candidate.y
            )
            if d > best:
                best = d
        return best


def _exact_window_max(
    trajectory: Trajectory, anchor: int, candidate: int
) -> float:
    """Exact maximum distance of the buffered points to the candidate line."""
    if candidate - anchor < 2:
        return 0.0
    deviation, _ = trajectory.soa().max_chord_deviation(anchor, candidate)
    return deviation


def bqs(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with the (exact) Bounded Quadrant System.

    The significant-point bounds answer most distance checks in constant
    time; inconclusive cases fall back to an exact scan of the buffered
    window, so the output matches the open-window decision procedure while
    being much faster in practice.
    """
    validate_epsilon(epsilon)
    trivial = trivial_representation(trajectory, algorithm="bqs")
    if trivial is not None:
        return trivial

    n = len(trajectory)
    retained = [0]
    anchor = 0
    window = BoundedQuadrantWindow(trajectory[0])
    k = 1
    while k < n:
        candidate = trajectory[k]
        lower, upper = window.distance_bounds(candidate)
        if upper <= epsilon:
            window.add(candidate)
            k += 1
            continue
        if lower <= epsilon:
            # Inconclusive: fall back to the exact window scan (the BQS "case 2").
            if _exact_window_max(trajectory, anchor, k) <= epsilon:
                window.add(candidate)
                k += 1
                continue
        close_at = max(anchor + 1, k - 1)
        retained.append(close_at)
        anchor = close_at
        window = BoundedQuadrantWindow(trajectory[anchor])
        k = anchor + 1
    if retained[-1] != n - 1:
        retained.append(n - 1)
    return PiecewiseRepresentation.from_retained_indices(trajectory, retained, algorithm="bqs")
