"""Deprecated name-based registry — a thin shim over :mod:`repro.api`.

The historical API exposed a plain ``ALGORITHMS`` dict plus ``get_algorithm``
and ``simplify`` free functions.  Algorithms now live in the unified
descriptor registry (:mod:`repro.api.descriptors`); this module keeps the old
names working as deprecation shims:

- :data:`ALGORITHMS` is a live read-only view over the descriptor registry
  (item access warns),
- :func:`get_algorithm` and :func:`simplify` warn and dispatch through the
  descriptor / :class:`repro.api.Simplifier`.

New code should use::

    from repro.api import Simplifier, get_descriptor, register_algorithm
"""

from __future__ import annotations

from typing import Callable

from ..api._compat import DeprecatedRegistryView, warn_deprecated
from ..api.descriptors import algorithm_names, get_descriptor
from ..api.session import Simplifier
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation

__all__ = ["ALGORITHMS", "list_algorithms", "get_algorithm", "simplify"]

AlgorithmFunction = Callable[..., PiecewiseRepresentation]

ALGORITHMS = DeprecatedRegistryView(
    "repro.algorithms.registry.ALGORITHMS",
    "repro.api.get_descriptor(name).batch / repro.api.list_descriptors()",
    project=lambda descriptor: descriptor.batch,
)
"""Deprecated live view: algorithm name -> batch callable."""


def list_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted alphabetically."""
    return algorithm_names()


def get_algorithm(name: str) -> AlgorithmFunction:
    """Deprecated: look up an algorithm's batch callable by name.

    Use ``repro.api.get_descriptor(name).batch`` instead.

    Raises
    ------
    UnknownAlgorithmError
        If ``name`` is not registered.
    """
    warn_deprecated("repro.algorithms.get_algorithm", "repro.api.get_descriptor(name).batch")
    return get_descriptor(name).batch


def simplify(
    trajectory: Trajectory, epsilon: float, *, algorithm: str = "operb", **kwargs
) -> PiecewiseRepresentation:
    """Deprecated one-call entry point; use :class:`repro.api.Simplifier`::

        from repro import Simplifier
        compressed = Simplifier("operb-a", epsilon=40.0).run(trajectory)
    """
    warn_deprecated("repro.simplify", "repro.api.Simplifier(algorithm, epsilon).run(trajectory)")
    return Simplifier(algorithm, epsilon, **kwargs).run(trajectory)
