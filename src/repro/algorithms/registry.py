"""Name-based registry of every simplification algorithm in the package.

The experiment harness, the CLI and downstream users select algorithms by the
names the paper uses ("dp", "fbqs", "operb", "operb-a", ...).  Each entry is a
callable ``(trajectory, epsilon, **kwargs) -> PiecewiseRepresentation``.
"""

from __future__ import annotations

from typing import Callable

from ..core.operb import operb, raw_operb
from ..core.operb_a import operb_a, raw_operb_a
from ..exceptions import UnknownAlgorithmError
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .bqs import bqs
from .dead_reckoning import dead_reckoning
from .douglas_peucker import douglas_peucker, douglas_peucker_sed
from .fbqs import fbqs
from .opw import opw, opw_tr
from .uniform import uniform_sampling

__all__ = ["ALGORITHMS", "list_algorithms", "get_algorithm", "simplify"]

AlgorithmFunction = Callable[..., PiecewiseRepresentation]

ALGORITHMS: dict[str, AlgorithmFunction] = {
    "dp": douglas_peucker,
    "dp-sed": douglas_peucker_sed,
    "opw": opw,
    "opw-tr": opw_tr,
    "bqs": bqs,
    "fbqs": fbqs,
    "uniform": uniform_sampling,
    "dead-reckoning": dead_reckoning,
    "operb": operb,
    "raw-operb": raw_operb,
    "operb-a": operb_a,
    "raw-operb-a": raw_operb_a,
}
"""Mapping from algorithm name (as used in the paper/experiments) to callable."""


def list_algorithms() -> list[str]:
    """Names of all registered algorithms, sorted alphabetically."""
    return sorted(ALGORITHMS)


def get_algorithm(name: str) -> AlgorithmFunction:
    """Look up an algorithm by name.

    Raises
    ------
    UnknownAlgorithmError
        If ``name`` is not registered.
    """
    key = name.strip().lower()
    if key not in ALGORITHMS:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(list_algorithms())}"
        )
    return ALGORITHMS[key]


def simplify(
    trajectory: Trajectory, epsilon: float, *, algorithm: str = "operb", **kwargs
) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with the named algorithm.

    This is the main one-call entry point of the library::

        from repro import simplify
        compressed = simplify(trajectory, epsilon=40.0, algorithm="operb-a")
    """
    function = get_algorithm(algorithm)
    return function(trajectory, epsilon, **kwargs)
