"""Dead-reckoning online simplification.

A classic online sampling scheme used by tracking systems: the sender keeps
the last transmitted point and its velocity, predicts the current position by
linear extrapolation, and transmits a new point only when the prediction
error exceeds the threshold.  It is one-pass and O(1)-space like OPERB but
bounds the *prediction* error rather than the distance to the reconstructed
line, so its output quality on sharp turns is noticeably worse.  Included as
an extension baseline for the examples.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..exceptions import SimplificationError
from ..geometry import kernels
from ..geometry.point import Point, decode_point, encode_point
from ..trajectory.blocks import drive_block_steps
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord
from .base import trivial_representation, validate_epsilon

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectory.soa import PointBlock

__all__ = ["DeadReckoningSimplifier", "dead_reckoning"]


class DeadReckoningSimplifier:
    """Streaming dead-reckoning simplifier (push/finish interface)."""

    name = "dead-reckoning"

    # Not snapshot state (RPA001): ``epsilon`` is immutable configuration the
    # restoring side supplies, ``_probe_backoff`` is block-ingest probe
    # spacing — pure acceleration state that never affects output.
    _SNAPSHOT_EXCLUDE = frozenset({"epsilon", "_probe_backoff"})

    def __init__(self, epsilon: float) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._last_kept: Point | None = None
        self._last_kept_index = -1
        self._velocity = (0.0, 0.0)
        self._previous: Point | None = None
        self._index = -1
        self._finished = False
        # Block-ingest probe spacing (acceleration state only; not part of
        # the snapshot protocol).
        self._probe_backoff = 0

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed the next point; return the segment closed by it, if any."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        self._index += 1
        emitted: list[SegmentRecord] = []

        if self._last_kept is None:
            self._last_kept = point
            self._last_kept_index = self._index
            self._previous = point
            return emitted

        # Routed through the scalar prediction kernel so the vectorized
        # block path (prediction_prefix_within) makes bit-identical
        # keep/transmit decisions.
        error = kernels.prediction_error_point(
            point.x,
            point.y,
            point.t,
            self._last_kept.x,
            self._last_kept.y,
            self._last_kept.t,
            self._velocity[0],
            self._velocity[1],
        )
        if error > self.epsilon:
            emitted.append(
                SegmentRecord(
                    start=self._last_kept,
                    end=point,
                    first_index=self._last_kept_index,
                    last_index=self._index,
                )
            )
            previous = self._previous if self._previous is not None else self._last_kept
            step_dt = point.t - previous.t
            if step_dt > 0.0:
                self._velocity = (
                    (point.x - previous.x) / step_dt,
                    (point.y - previous.y) / step_dt,
                )
            else:
                self._velocity = (0.0, 0.0)
            self._last_kept = point
            self._last_kept_index = self._index
        self._previous = point
        return emitted

    def push_block(self, block: "PointBlock") -> list[SegmentRecord]:
        """Feed a whole SoA block of points; return the finalised segments.

        Between transmissions the sender state (last kept point, velocity)
        is frozen, so a whole run of within-bound fixes is detected with one
        vectorized prediction-error kernel call; only the fixes that force a
        transmission take the scalar :meth:`push`.  Byte-identical to
        per-point ingest.
        """
        emitted: list[SegmentRecord] = []
        for _, segments in self.push_block_steps(block):
            emitted.extend(segments)
        return emitted

    def push_block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced form of :meth:`push_block` (see ``OPERBSimplifier``)."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        if len(block) == 0:
            return iter(())
        return self._block_steps(block)

    def _block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        xs = block.xs
        ys = block.ys
        ts = block.ts
        n = xs.shape[0]

        def probe(start: int) -> tuple[int, bool, bool]:
            kept = self._last_kept
            if kept is None:
                return 0, False, False
            stop = start + min(n - start, kernels.BLOCK_LOOKAHEAD)
            count = kernels.prediction_prefix_within(
                xs[start:stop],
                ys[start:stop],
                ts[start:stop],
                kept.x,
                kept.y,
                kept.t,
                self._velocity[0],
                self._velocity[1],
                self.epsilon,
            )
            if count:
                # Within-bound fixes leave the sender state untouched.
                self._index += count
                self._previous = block.point(start + count - 1)
            return count, True, start + count == stop

        return drive_block_steps(self, block, probe)

    def finish(self) -> list[SegmentRecord]:
        """Flush the final segment up to the last seen point."""
        if self._finished:
            return []
        self._finished = True
        if (
            self._last_kept is None
            or self._previous is None
            or self._index <= self._last_kept_index
        ):
            return []
        return [
            SegmentRecord(
                start=self._last_kept,
                end=self._previous,
                first_index=self._last_kept_index,
                last_index=self._index,
            )
        ]

    def simplify(self, trajectory: Trajectory) -> PiecewiseRepresentation:
        """Simplify a whole trajectory with this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("simplify() requires a fresh simplifier instance")
        segments: list[SegmentRecord] = []
        for point in trajectory:
            segments.extend(self.push(point))
        segments.extend(self.finish())
        return PiecewiseRepresentation(
            segments=segments, source_size=len(trajectory), algorithm=self.name
        )

    def snapshot(self) -> dict:
        """JSON-serialisable state (last kept point, velocity, counters)."""
        return {
            "last_kept": encode_point(self._last_kept),
            "last_kept_index": self._last_kept_index,
            "velocity": list(self._velocity),
            "previous": encode_point(self._previous),
            "index": self._index,
            "finished": self._finished,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("restore() requires a fresh simplifier instance")
        self._last_kept = decode_point(state["last_kept"])
        self._last_kept_index = int(state["last_kept_index"])
        velocity = state["velocity"]
        self._velocity = (float(velocity[0]), float(velocity[1]))
        self._previous = decode_point(state["previous"])
        self._index = int(state["index"])
        self._finished = bool(state["finished"])


def dead_reckoning(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with dead reckoning (prediction-error threshold)."""
    trivial = trivial_representation(trajectory, algorithm="dead-reckoning")
    if trivial is not None:
        return trivial
    return DeadReckoningSimplifier(epsilon).simplify(trajectory)
