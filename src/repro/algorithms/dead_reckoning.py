"""Dead-reckoning online simplification.

A classic online sampling scheme used by tracking systems: the sender keeps
the last transmitted point and its velocity, predicts the current position by
linear extrapolation, and transmits a new point only when the prediction
error exceeds the threshold.  It is one-pass and O(1)-space like OPERB but
bounds the *prediction* error rather than the distance to the reconstructed
line, so its output quality on sharp turns is noticeably worse.  Included as
an extension baseline for the examples.
"""

from __future__ import annotations

import math

from ..exceptions import SimplificationError
from ..geometry.point import Point, decode_point, encode_point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord
from .base import trivial_representation, validate_epsilon

__all__ = ["DeadReckoningSimplifier", "dead_reckoning"]


class DeadReckoningSimplifier:
    """Streaming dead-reckoning simplifier (push/finish interface)."""

    name = "dead-reckoning"

    def __init__(self, epsilon: float) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._last_kept: Point | None = None
        self._last_kept_index = -1
        self._velocity = (0.0, 0.0)
        self._previous: Point | None = None
        self._index = -1
        self._finished = False

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed the next point; return the segment closed by it, if any."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        self._index += 1
        emitted: list[SegmentRecord] = []

        if self._last_kept is None:
            self._last_kept = point
            self._last_kept_index = self._index
            self._previous = point
            return emitted

        dt = point.t - self._last_kept.t
        predicted_x = self._last_kept.x + self._velocity[0] * dt
        predicted_y = self._last_kept.y + self._velocity[1] * dt
        error = math.hypot(point.x - predicted_x, point.y - predicted_y)
        if error > self.epsilon:
            emitted.append(
                SegmentRecord(
                    start=self._last_kept,
                    end=point,
                    first_index=self._last_kept_index,
                    last_index=self._index,
                )
            )
            previous = self._previous if self._previous is not None else self._last_kept
            step_dt = point.t - previous.t
            if step_dt > 0.0:
                self._velocity = (
                    (point.x - previous.x) / step_dt,
                    (point.y - previous.y) / step_dt,
                )
            else:
                self._velocity = (0.0, 0.0)
            self._last_kept = point
            self._last_kept_index = self._index
        self._previous = point
        return emitted

    def finish(self) -> list[SegmentRecord]:
        """Flush the final segment up to the last seen point."""
        if self._finished:
            return []
        self._finished = True
        if (
            self._last_kept is None
            or self._previous is None
            or self._index <= self._last_kept_index
        ):
            return []
        return [
            SegmentRecord(
                start=self._last_kept,
                end=self._previous,
                first_index=self._last_kept_index,
                last_index=self._index,
            )
        ]

    def simplify(self, trajectory: Trajectory) -> PiecewiseRepresentation:
        """Simplify a whole trajectory with this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("simplify() requires a fresh simplifier instance")
        segments: list[SegmentRecord] = []
        for point in trajectory:
            segments.extend(self.push(point))
        segments.extend(self.finish())
        return PiecewiseRepresentation(
            segments=segments, source_size=len(trajectory), algorithm=self.name
        )

    def snapshot(self) -> dict:
        """JSON-serialisable state (last kept point, velocity, counters)."""
        return {
            "last_kept": encode_point(self._last_kept),
            "last_kept_index": self._last_kept_index,
            "velocity": list(self._velocity),
            "previous": encode_point(self._previous),
            "index": self._index,
            "finished": self._finished,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("restore() requires a fresh simplifier instance")
        self._last_kept = decode_point(state["last_kept"])
        self._last_kept_index = int(state["last_kept_index"])
        velocity = state["velocity"]
        self._velocity = (float(velocity[0]), float(velocity[1]))
        self._previous = decode_point(state["previous"])
        self._index = int(state["index"])
        self._finished = bool(state["finished"])


def dead_reckoning(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with dead reckoning (prediction-error threshold)."""
    trivial = trivial_representation(trajectory, algorithm="dead-reckoning")
    if trivial is not None:
        return trivial
    return DeadReckoningSimplifier(epsilon).simplify(trajectory)
