"""Line-simplification baselines and the shared algorithm registry."""

from .base import SimplificationFunction, StreamingSimplifier, validate_epsilon
from .bqs import BoundedQuadrantWindow, QuadrantBound, bqs
from .dead_reckoning import DeadReckoningSimplifier, dead_reckoning
from .douglas_peucker import douglas_peucker, douglas_peucker_sed, dp_retained_indices
from .fbqs import FBQSSimplifier, fbqs
from .opw import opw, opw_tr
from .registry import ALGORITHMS, get_algorithm, list_algorithms, simplify
from .uniform import uniform_sampling

__all__ = [
    "ALGORITHMS",
    "BoundedQuadrantWindow",
    "DeadReckoningSimplifier",
    "FBQSSimplifier",
    "QuadrantBound",
    "SimplificationFunction",
    "StreamingSimplifier",
    "bqs",
    "dead_reckoning",
    "douglas_peucker",
    "douglas_peucker_sed",
    "dp_retained_indices",
    "fbqs",
    "get_algorithm",
    "list_algorithms",
    "opw",
    "opw_tr",
    "simplify",
    "uniform_sampling",
    "validate_epsilon",
]
