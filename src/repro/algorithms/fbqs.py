"""FBQS — the fast (linear-time) variant of the Bounded Quadrant System.

FBQS is the strongest efficiency baseline in the paper: it keeps BQS's
per-quadrant bounding structures but never falls back to an exact window
scan.  Whenever the conservative upper bound derived from the significant
points exceeds the error bound, the current window is closed at the previous
point and a new window starts.  Each point is therefore examined against a
constant number of significant points, giving ``O(n)`` time.

The implementation is push-based (:class:`FBQSSimplifier`) so that it can be
used in the same streaming pipelines as OPERB; :func:`fbqs` is the batch
wrapper used by the experiments.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator

from ..exceptions import SimplificationError
from ..geometry import kernels
from ..geometry.point import Point, decode_point, encode_point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import (
    PiecewiseRepresentation,
    SegmentCascadeMixin,
    SegmentRecord,
)
from ..trajectory.blocks import drive_block_steps
from .base import trivial_representation, validate_epsilon
from .bqs import BoundedQuadrantWindow

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectory.soa import PointBlock

__all__ = ["FBQSSimplifier", "fbqs"]


class FBQSSimplifier(SegmentCascadeMixin):
    """Streaming FBQS simplifier (push/finish interface)."""

    name = "fbqs"

    # Not snapshot state (RPA001): ``epsilon`` is immutable configuration the
    # restoring side supplies, ``_probe_backoff`` is block-ingest probe
    # spacing — pure acceleration state that never affects output.
    _SNAPSHOT_EXCLUDE = frozenset({"epsilon", "_probe_backoff"})

    def __init__(self, epsilon: float) -> None:
        self.epsilon = validate_epsilon(epsilon)
        self._window: BoundedQuadrantWindow | None = None
        self._anchor: Point | None = None
        self._anchor_index = -1
        self._previous: Point | None = None
        self._previous_index = -1
        self._index = -1
        self._finished = False
        # Block-ingest probe spacing (acceleration state only; not part of
        # the snapshot protocol).
        self._probe_backoff = 0

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed the next point; return the segment closed by it, if any."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        self._index += 1
        emitted: list[SegmentRecord] = []

        if self._anchor is None:
            self._anchor = point
            self._anchor_index = self._index
            self._window = BoundedQuadrantWindow(point)
            self._previous = point
            self._previous_index = self._index
            return emitted

        assert self._window is not None
        _, upper = self._window.distance_bounds(point)
        if upper <= self.epsilon:
            self._window.add(point)
            self._previous = point
            self._previous_index = self._index
            return emitted

        # Close the window at the previous point and restart from there.
        close_point = self._previous if self._previous is not None else self._anchor
        close_index = self._previous_index if self._previous_index >= 0 else self._anchor_index
        if close_index > self._anchor_index:
            emitted.append(
                SegmentRecord(
                    start=self._anchor,
                    end=close_point,
                    first_index=self._anchor_index,
                    last_index=close_index,
                )
            )
            self._anchor = close_point
            self._anchor_index = close_index
        self._window = BoundedQuadrantWindow(self._anchor)
        self._window.add(point)
        self._previous = point
        self._previous_index = self._index
        return emitted

    def push_block(self, block: "PointBlock") -> list[SegmentRecord]:
        """Feed a whole SoA block of points; return the finalised segments.

        Runs of candidates are bulk-accepted through the vectorized
        corner-radius screen
        (:func:`repro.geometry.kernels.quadrant_corner_screen`): when the
        window's quadrant boxes — extended by a whole slice of points — stay
        within ``epsilon`` of the anchor, every candidate in the slice is
        provably acceptable and only the cheap ``add`` bookkeeping runs.
        Inconclusive slices replay through the scalar :meth:`push`, so
        decisions and state — including :meth:`snapshot` — are
        byte-identical to per-point ingest.
        """
        emitted: list[SegmentRecord] = []
        for _, segments in self.push_block_steps(block):
            emitted.extend(segments)
        return emitted

    def push_block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced form of :meth:`push_block` (see ``OPERBSimplifier``)."""
        if self._finished:
            raise SimplificationError("push() called after finish()")
        if len(block) == 0:
            return iter(())
        return self._block_steps(block)

    def _block_steps(
        self, block: "PointBlock"
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        xs = block.xs
        ys = block.ys
        n = len(block)

        def probe(start: int) -> tuple[int, bool, bool]:
            window = self._window
            if window is None:
                return 0, False, False
            width = min(n - start, kernels.BLOCK_LOOKAHEAD)
            anchor = window.anchor
            bounds = tuple(
                (q.min_x, q.max_x, q.min_y, q.max_y) for q in window.quadrants
            )
            # Shrink the slice on an inconclusive screen: a run that ends
            # inside the lookahead is still bulk-accepted in chunks.
            while width >= kernels.BLOCK_MIN_RUN:
                stop = start + width
                if kernels.quadrant_corner_screen(
                    xs[start:stop], ys[start:stop], anchor.x, anchor.y, bounds, self.epsilon
                ):
                    self._bulk_accept(block, start, stop)
                    return width, True, True
                width //= 8
            # Inconclusive at every width: the window is near its bound (or
            # the stream is leaving the anchor) — the exact scalar path
            # decides, with the driver's growing probe spacing.
            return 0, True, False

        return drive_block_steps(self, block, probe)

    def _bulk_accept(self, block: "PointBlock", start: int, stop: int) -> None:
        """Accept ``[start, stop)`` into the open window (screen-verified).

        Performs exactly the state updates of :meth:`push`'s accept branch
        for each point, in order — the window's quadrant bounds, witness
        points and angles evolve identically to per-point ingest.
        """
        window = self._window
        assert window is not None
        add = window.add
        for offset in range(start, stop):
            point = block.point(offset)
            self._index += 1
            add(point)
            self._previous = point
            self._previous_index = self._index

    def finish(self) -> list[SegmentRecord]:
        """Flush the final open window."""
        if self._finished:
            return []
        self._finished = True
        if self._anchor is None or self._previous is None:
            return []
        if self._previous_index <= self._anchor_index:
            return []
        return [
            SegmentRecord(
                start=self._anchor,
                end=self._previous,
                first_index=self._anchor_index,
                last_index=self._previous_index,
            )
        ]

    def simplify(self, trajectory: Trajectory) -> PiecewiseRepresentation:
        """Simplify a whole trajectory with this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("simplify() requires a fresh simplifier instance")
        segments: list[SegmentRecord] = []
        for point in trajectory:
            segments.extend(self.push(point))
        segments.extend(self.finish())
        return PiecewiseRepresentation(
            segments=segments, source_size=len(trajectory), algorithm=self.name
        )

    def snapshot(self) -> dict:
        """JSON-serialisable state, including the open window's bounds."""
        return {
            "window": None if self._window is None else self._window.to_dict(),
            "anchor": encode_point(self._anchor),
            "anchor_index": self._anchor_index,
            "previous": encode_point(self._previous),
            "previous_index": self._previous_index,
            "index": self._index,
            "finished": self._finished,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) simplifier instance."""
        if self._index >= 0 or self._finished:
            raise SimplificationError("restore() requires a fresh simplifier instance")
        window = state["window"]
        self._window = None if window is None else BoundedQuadrantWindow.from_dict(window)
        self._anchor = decode_point(state["anchor"])
        self._anchor_index = int(state["anchor_index"])
        self._previous = decode_point(state["previous"])
        self._previous_index = int(state["previous_index"])
        self._index = int(state["index"])
        self._finished = bool(state["finished"])


def fbqs(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with FBQS (linear-time bounded quadrant system)."""
    trivial = trivial_representation(trajectory, algorithm="fbqs")
    if trivial is not None:
        return trivial
    return FBQSSimplifier(epsilon).simplify(trajectory)
