"""Open-window online simplification (Meratnia & de By, EDBT 2004).

``OPW`` grows a window ``[Ps, ..., Pk]`` one point at a time and checks all
buffered points against the line ``Ps -> Pk``; when a point violates the
bound, the segment ``Ps -> P_{k-1}`` is emitted and a new window starts at
``P_{k-1}``.  Because the whole window is re-checked for every new point, the
worst-case running time is ``O(n^2)`` — this is exactly the behaviour OPERB's
local distance checking is designed to avoid.

``OPW-TR`` is the same algorithm with the synchronised Euclidean distance.

The window re-checks run on the trajectory's structure-of-arrays view
through the geometry kernels (see :mod:`repro.geometry.kernels`), honouring
the ``vectorized``/``scalar`` backend flag.
"""

from __future__ import annotations

from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .base import trivial_representation, validate_epsilon

__all__ = ["opw", "opw_tr"]


def opw(
    trajectory: Trajectory, epsilon: float, *, use_sed: bool = False
) -> PiecewiseRepresentation:
    """Simplify ``trajectory`` with the normal opening-window algorithm."""
    validate_epsilon(epsilon)
    algorithm = "opw-tr" if use_sed else "opw"
    trivial = trivial_representation(trajectory, algorithm=algorithm)
    if trivial is not None:
        return trivial

    soa = trajectory.soa()
    n = len(trajectory)
    retained = [0]
    anchor = 0
    k = anchor + 1
    while k < n:
        if soa.window_within(anchor, k, epsilon, use_sed=use_sed):
            k += 1
            continue
        # The window broke at k: close the segment at the previous point.
        close_at = max(anchor + 1, k - 1)
        retained.append(close_at)
        anchor = close_at
        k = anchor + 1
    if retained[-1] != n - 1:
        retained.append(n - 1)
    return PiecewiseRepresentation.from_retained_indices(
        trajectory, retained, algorithm=algorithm
    )


def opw_tr(trajectory: Trajectory, epsilon: float) -> PiecewiseRepresentation:
    """OPW with the synchronised Euclidean distance (time-ratio variant)."""
    return opw(trajectory, epsilon, use_sed=True)
