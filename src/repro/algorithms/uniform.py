"""Uniform (nth-point) sampling — the simplest possible baseline.

Uniform sampling keeps every ``k``-th point regardless of geometry.  It has no
error bound at all, which is precisely why error-bounded line simplification
exists; it is included so examples and tests can show what an error-bounded
method buys over naive decimation at the same compression ratio.
"""

from __future__ import annotations

from ..exceptions import InvalidParameterError
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .base import trivial_representation

__all__ = ["uniform_sampling"]


def uniform_sampling(
    trajectory: Trajectory, epsilon: float = 0.0, *, step: int = 10
) -> PiecewiseRepresentation:
    """Keep every ``step``-th point (plus the first and the last).

    Parameters
    ----------
    trajectory:
        The trajectory to decimate.
    epsilon:
        Ignored; accepted so uniform sampling can be called through the same
        registry interface as the error-bounded algorithms.
    step:
        Sampling stride; ``step=10`` keeps roughly 10% of the points.
    """
    if step < 1:
        raise InvalidParameterError(f"step must be at least 1, got {step}")
    trivial = trivial_representation(trajectory, algorithm="uniform")
    if trivial is not None:
        return trivial
    indices = list(range(0, len(trajectory), step))
    if indices[-1] != len(trajectory) - 1:
        indices.append(len(trajectory) - 1)
    return PiecewiseRepresentation.from_retained_indices(
        trajectory, indices, algorithm="uniform"
    )
