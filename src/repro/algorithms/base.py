"""Common interfaces shared by all line-simplification algorithms.

Every algorithm in this package — the paper's OPERB/OPERB-A and the
baselines it is compared against — consumes a
:class:`~repro.trajectory.model.Trajectory` and an error bound and produces a
:class:`~repro.trajectory.piecewise.PiecewiseRepresentation`.  Batch
algorithms are exposed as plain functions with that signature; streaming
algorithms additionally implement the :class:`StreamingSimplifier` protocol
(``push`` / ``finish``).

Block ingest
------------
Streaming simplifiers may additionally implement the *batched* ingest
protocol over :class:`~repro.trajectory.soa.PointBlock`:

``push_block(block) -> list[SegmentRecord]``
    Feed a whole SoA block of points; byte-identical (segments, statistics,
    snapshots) to pushing the same points one at a time, but with the inner
    loops running the vectorized prefix kernels of
    :mod:`repro.geometry.kernels`.

``push_block_steps(block) -> Iterator[tuple[int, list[SegmentRecord]]]``
    The traced form the streaming hub consumes: each ``(count, segments)``
    step means "``count`` further points were ingested and the last of them
    emitted ``segments``".  Driving the steps reproduces the exact per-push
    emission positions, which is what keeps per-device lag accounting (and
    therefore hub checkpoints) byte-identical to per-point ingest.

:func:`iter_block_steps` bridges the two worlds: it uses a simplifier's
native ``push_block_steps`` when present and otherwise falls back to a
correct (if slow) per-point loop, so *every* streaming simplifier — including
third-party ones that predate the protocol — accepts blocks.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterator, Protocol, runtime_checkable

from ..exceptions import InvalidParameterError
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import (
    PiecewiseRepresentation,
    SegmentCascadeMixin,
    SegmentRecord,
)

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectory.soa import PointBlock

__all__ = [
    "SegmentCascadeMixin",
    "SimplificationFunction",
    "StreamingSimplifier",
    "validate_epsilon",
    "trivial_representation",
    "iter_block_steps",
]


@runtime_checkable
class SimplificationFunction(Protocol):
    """A batch simplification callable ``(trajectory, epsilon, **kwargs)``."""

    def __call__(
        self, trajectory: Trajectory, epsilon: float, **kwargs
    ) -> PiecewiseRepresentation:  # pragma: no cover - protocol signature only
        ...


@runtime_checkable
class StreamingSimplifier(Protocol):
    """A push-based simplifier (OPERB, OPERB-A, and the streaming adapters)."""

    def push(self, point: Point) -> list[SegmentRecord]:  # pragma: no cover
        ...

    def finish(self) -> list[SegmentRecord]:  # pragma: no cover
        ...


def _per_point_steps(
    simplifier: StreamingSimplifier, block: "PointBlock"
) -> Iterator[tuple[int, list[SegmentRecord]]]:
    """Generic per-point fallback for :func:`iter_block_steps`."""
    for i in range(len(block)):
        yield 1, list(simplifier.push(block.point(i)))


def iter_block_steps(
    simplifier: object, block: "PointBlock"
) -> Iterator[tuple[int, list[SegmentRecord]]]:
    """Traced block ingest over any streaming simplifier.

    Uses the simplifier's native ``push_block_steps`` when it implements the
    batched protocol; otherwise pushes the block point by point (one step per
    point) — correct for every push/finish simplifier, just without the
    vectorized fast path.
    """
    native = getattr(simplifier, "push_block_steps", None)
    if native is not None:
        return native(block)
    return _per_point_steps(simplifier, block)


def validate_epsilon(epsilon: float) -> float:
    """Validate and return a positive error bound."""
    if not epsilon > 0.0:
        raise InvalidParameterError(f"error bound must be positive, got {epsilon!r}")
    return float(epsilon)


def trivial_representation(
    trajectory: Trajectory, *, algorithm: str
) -> PiecewiseRepresentation | None:
    """Handle trajectories too small to simplify.

    Returns a finished representation for trajectories with fewer than three
    points, or ``None`` when the caller should run its real algorithm.
    """
    n = len(trajectory)
    if n >= 3:
        return None
    if n < 2:
        return PiecewiseRepresentation(segments=[], source_size=n, algorithm=algorithm)
    return PiecewiseRepresentation(
        segments=[SegmentRecord.from_indices(trajectory, 0, n - 1)],
        source_size=n,
        algorithm=algorithm,
    )
