"""Common interfaces shared by all line-simplification algorithms.

Every algorithm in this package — the paper's OPERB/OPERB-A and the
baselines it is compared against — consumes a
:class:`~repro.trajectory.model.Trajectory` and an error bound and produces a
:class:`~repro.trajectory.piecewise.PiecewiseRepresentation`.  Batch
algorithms are exposed as plain functions with that signature; streaming
algorithms additionally implement the :class:`StreamingSimplifier` protocol
(``push`` / ``finish``).
"""

from __future__ import annotations

from typing import Protocol, runtime_checkable

from ..exceptions import InvalidParameterError
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord

__all__ = ["SimplificationFunction", "StreamingSimplifier", "validate_epsilon", "trivial_representation"]


@runtime_checkable
class SimplificationFunction(Protocol):
    """A batch simplification callable ``(trajectory, epsilon, **kwargs)``."""

    def __call__(
        self, trajectory: Trajectory, epsilon: float, **kwargs
    ) -> PiecewiseRepresentation:  # pragma: no cover - protocol signature only
        ...


@runtime_checkable
class StreamingSimplifier(Protocol):
    """A push-based simplifier (OPERB, OPERB-A, and the streaming adapters)."""

    def push(self, point: Point) -> list[SegmentRecord]:  # pragma: no cover
        ...

    def finish(self) -> list[SegmentRecord]:  # pragma: no cover
        ...


def validate_epsilon(epsilon: float) -> float:
    """Validate and return a positive error bound."""
    if not epsilon > 0.0:
        raise InvalidParameterError(f"error bound must be positive, got {epsilon!r}")
    return float(epsilon)


def trivial_representation(
    trajectory: Trajectory, *, algorithm: str
) -> PiecewiseRepresentation | None:
    """Handle trajectories too small to simplify.

    Returns a finished representation for trajectories with fewer than three
    points, or ``None`` when the caller should run its real algorithm.
    """
    n = len(trajectory)
    if n >= 3:
        return None
    if n < 2:
        return PiecewiseRepresentation(segments=[], source_size=n, algorithm=algorithm)
    return PiecewiseRepresentation(
        segments=[SegmentRecord.from_indices(trajectory, 0, n - 1)],
        source_size=n,
        algorithm=algorithm,
    )
