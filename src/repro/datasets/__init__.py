"""Workload generation: dataset profiles, synthetic generators, GeoLife loader."""

from .generator import dataset_statistics, generate_dataset, generate_trajectory
from .geolife import geolife_available, iter_geolife_files, load_geolife, load_geolife_user
from .noise import add_gps_noise, inject_duplicates, inject_out_of_order, inject_outliers
from .profiles import GEOLIFE, PROFILES, SERCAR, TAXI, TRUCK, DatasetProfile, get_profile
from .roadnet import GridRoadNetwork, road_network_trajectory
from .synthetic import correlated_random_walk, straight_line_trajectory, waypoint_trajectory

__all__ = [
    "GEOLIFE",
    "PROFILES",
    "SERCAR",
    "TAXI",
    "TRUCK",
    "DatasetProfile",
    "GridRoadNetwork",
    "add_gps_noise",
    "correlated_random_walk",
    "dataset_statistics",
    "generate_dataset",
    "generate_trajectory",
    "geolife_available",
    "get_profile",
    "inject_duplicates",
    "inject_out_of_order",
    "inject_outliers",
    "iter_geolife_files",
    "load_geolife",
    "load_geolife_user",
    "road_network_trajectory",
    "straight_line_trajectory",
    "waypoint_trajectory",
]
