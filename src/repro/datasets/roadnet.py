"""A grid road-network mobility simulator.

The paper's Taxi and SerCar datasets are urban fleets whose movement is
constrained by road networks: long straight stretches punctuated by sharp
turns at crossroads.  That turn structure is exactly what produces the
anomalous line segments OPERB-A's patch points remove (Section 5, Figure 9),
so a faithful workload generator must reproduce it.

:class:`GridRoadNetwork` builds a rectangular street grid as a ``networkx``
graph; :func:`road_network_trajectory` drives a simulated vehicle along
shortest-path routes between random intersections, samples its position at
the requested rate and adds GPS noise.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import networkx as nx
import numpy as np

from ..exceptions import DatasetError, InvalidParameterError
from ..trajectory.model import Trajectory
from .synthetic import waypoint_trajectory

__all__ = ["GridRoadNetwork", "road_network_trajectory"]


@dataclass
class GridRoadNetwork:
    """A rectangular street grid.

    Attributes
    ----------
    rows, cols:
        Number of intersections along each axis.
    block_size:
        Edge length (metres) of one city block.
    """

    rows: int = 12
    cols: int = 12
    block_size: float = 400.0

    def __post_init__(self) -> None:
        if self.rows < 2 or self.cols < 2:
            raise InvalidParameterError("the grid needs at least 2x2 intersections")
        if self.block_size <= 0.0:
            raise InvalidParameterError("block_size must be positive")
        self._graph = nx.grid_2d_graph(self.rows, self.cols)

    @property
    def graph(self) -> nx.Graph:
        """The underlying ``networkx`` graph (nodes are ``(row, col)`` tuples)."""
        return self._graph

    def node_position(self, node: tuple[int, int]) -> tuple[float, float]:
        """Planar position (metres) of an intersection."""
        row, col = node
        return (col * self.block_size, row * self.block_size)

    def random_node(self, rng: np.random.Generator) -> tuple[int, int]:
        """A uniformly random intersection."""
        return (int(rng.integers(0, self.rows)), int(rng.integers(0, self.cols)))

    def shortest_route(
        self, rng: np.random.Generator, *, min_hops: int = 4
    ) -> list[tuple[float, float]]:
        """Waypoints (metres) of a shortest-path route between two random nodes.

        Routes shorter than ``min_hops`` intersections are re-drawn so a
        route always contains at least a few potential turns.
        """
        for _ in range(64):
            origin = self.random_node(rng)
            destination = self.random_node(rng)
            if origin == destination:
                continue
            path = nx.shortest_path(self._graph, origin, destination)
            if len(path) >= min_hops:
                return [self.node_position(node) for node in path]
        raise DatasetError("could not draw a route of the requested length")

    def random_route(
        self,
        rng: np.random.Generator,
        *,
        hops: int = 20,
        straight_bias: float = 0.7,
        start: tuple[int, int] | None = None,
    ) -> list[tuple[float, float]]:
        """Waypoints of a turn-rich route (biased random walk on the grid).

        Shortest paths on a grid contain very few turns, which is unlike the
        behaviour of taxis and service cars that criss-cross a city all day.
        The walk therefore continues straight with probability
        ``straight_bias`` and otherwise turns at the intersection; it never
        immediately backtracks unless it reaches the edge of the grid.
        """
        node = start if start is not None else self.random_node(rng)
        route = [node]
        previous: tuple[int, int] | None = None
        for _ in range(hops):
            neighbours = list(self._graph.neighbors(node))
            if previous is not None and len(neighbours) > 1 and previous in neighbours:
                neighbours.remove(previous)
            straight: tuple[int, int] | None = None
            if previous is not None:
                candidate = (2 * node[0] - previous[0], 2 * node[1] - previous[1])
                if candidate in neighbours:
                    straight = candidate
            if straight is not None and rng.random() < straight_bias:
                chosen = straight
            else:
                chosen = neighbours[int(rng.integers(0, len(neighbours)))]
            previous = node
            node = chosen
            route.append(node)
        return [self.node_position(n) for n in route]


def road_network_trajectory(
    n_points: int,
    *,
    network: GridRoadNetwork | None = None,
    sampling_interval: float | tuple[float, float] = 5.0,
    speed_range: tuple[float, float] = (4.0, 15.0),
    noise_std: float = 4.0,
    seed: int | np.random.Generator | None = None,
    trajectory_id: str = "",
) -> Trajectory:
    """Simulate an urban vehicle trajectory on a street grid.

    The vehicle repeatedly picks a random destination, drives the shortest
    path to it along the grid, and continues with a new destination until
    ``n_points`` samples have been collected.
    """
    if n_points < 2:
        raise InvalidParameterError("n_points must be at least 2")
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    network = network or GridRoadNetwork()

    pieces: list[Trajectory] = []
    produced = 0
    clock_offset = 0.0
    last_node: tuple[int, int] | None = None

    if isinstance(sampling_interval, tuple):
        mean_interval = 0.5 * (sampling_interval[0] + sampling_interval[1])
    else:
        mean_interval = float(sampling_interval)
    mean_speed = 0.5 * (speed_range[0] + speed_range[1])
    points_per_hop = max(network.block_size / max(mean_speed * mean_interval, 1e-9), 0.2)

    while produced < n_points:
        hops = int(math.ceil((n_points - produced) / points_per_hop)) + 4
        waypoints = network.random_route(rng, hops=min(hops, 4 * n_points), start=last_node)
        piece = waypoint_trajectory(
            waypoints,
            sampling_interval=sampling_interval,
            speed_range=speed_range,
            noise_std=0.0,
            n_points=n_points - produced,
            seed=rng,
        )
        if len(piece) == 0:
            continue
        shifted = Trajectory(
            piece.xs,
            piece.ys,
            piece.ts + clock_offset,
            trajectory_id=trajectory_id,
        )
        pieces.append(shifted)
        produced += len(shifted)
        clock_offset = float(shifted.ts[-1]) + (
            sampling_interval[0]
            if isinstance(sampling_interval, tuple)
            else sampling_interval
        )
        last_node = (
            int(round(piece.ys[-1] / network.block_size)),
            int(round(piece.xs[-1] / network.block_size)),
        )
        last_node = (
            min(max(last_node[0], 0), network.rows - 1),
            min(max(last_node[1], 0), network.cols - 1),
        )

    xs = np.concatenate([piece.xs for piece in pieces])[:n_points]
    ys = np.concatenate([piece.ys for piece in pieces])[:n_points]
    ts = np.concatenate([piece.ts for piece in pieces])[:n_points]
    if noise_std > 0.0:
        xs = xs + rng.normal(0.0, noise_std, size=xs.shape[0])
        ys = ys + rng.normal(0.0, noise_std, size=ys.shape[0])
    return Trajectory(xs, ys, ts, trajectory_id=trajectory_id)
