"""Profile-driven dataset generation.

:func:`generate_trajectory` synthesises one trajectory matching a
:class:`~repro.datasets.profiles.DatasetProfile`; :func:`generate_dataset`
builds a whole (laptop-scale) fleet.  The mapping from the paper's datasets
to generators is:

* **Taxi / SerCar** (urban fleets) — the grid road-network simulator, which
  produces the long straights and sharp crossroad turns the patching
  experiments rely on; Taxi's 60 s sampling makes its trajectories much
  sparser than SerCar's 3–5 s sampling, exactly as in Table 1.
* **Truck** (inter-city haulage) — a correlated random walk with low heading
  volatility and rare turns (highway driving), 1–60 s sampling.
* **GeoLife** (people, mixed modes) — alternating walking (slow, wiggly) and
  driving (fast, straighter) legs at 1–5 s sampling.
"""

from __future__ import annotations

import math

import numpy as np

from ..exceptions import DatasetError
from ..trajectory.model import Trajectory
from ..trajectory.operations import concatenate
from .noise import inject_dropouts
from .profiles import DatasetProfile, get_profile
from .roadnet import GridRoadNetwork, road_network_trajectory
from .synthetic import correlated_random_walk

__all__ = ["generate_trajectory", "generate_dataset", "dataset_statistics"]


def _interval(profile: DatasetProfile) -> float | tuple[float, float]:
    low, high = profile.sampling_interval
    if low == high:
        return low
    return (low, high)


def _urban_network(profile: DatasetProfile) -> GridRoadNetwork:
    """Street grid whose block length suits the profile's sampling density.

    Blocks are sized so a vehicle produces roughly eight samples per block,
    which reproduces the corner-cutting behaviour of the paper's urban fleets:
    sparse sampling (Taxi, 60 s) regularly skips crossroad apexes and creates
    anomalous segments, while dense sampling (SerCar, 3-5 s) traces corners.
    """
    mean_interval = 0.5 * (profile.sampling_interval[0] + profile.sampling_interval[1])
    mean_speed = 0.5 * (profile.speed_range[0] + profile.speed_range[1])
    block = float(np.clip(mean_speed * mean_interval * 2.0, 400.0, 2000.0))
    return GridRoadNetwork(rows=16, cols=16, block_size=block)


def _mixed_mode_trajectory(
    profile: DatasetProfile, n_points: int, rng: np.random.Generator, trajectory_id: str
) -> Trajectory:
    """GeoLife-style trajectory alternating walking and driving legs."""
    pieces = []
    produced = 0
    clock = 0.0
    position = (0.0, 0.0)
    while produced < n_points:
        walking = rng.random() < 0.5
        leg_points = int(min(n_points - produced, rng.integers(200, 800)))
        if leg_points < 2:
            leg_points = n_points - produced
        speed_range = (0.7, 2.0) if walking else (5.0, profile.speed_range[1])
        volatility = 0.25 if walking else 0.05
        leg = correlated_random_walk(
            leg_points,
            sampling_interval=_interval(profile),
            speed_range=speed_range,
            heading_volatility=volatility,
            turn_probability=0.05 if walking else 0.01,
            noise_std=profile.noise_std,
            start=position,
            seed=rng,
            trajectory_id=trajectory_id,
        )
        shifted = Trajectory(leg.xs, leg.ys, leg.ts + clock, trajectory_id=trajectory_id)
        pieces.append(shifted)
        produced += len(shifted)
        clock = float(shifted.ts[-1]) + profile.sampling_interval[0]
        position = (float(leg.xs[-1]), float(leg.ys[-1]))
    merged = concatenate(pieces, trajectory_id=trajectory_id)
    return merged.slice(0, n_points)


def generate_trajectory(
    profile: DatasetProfile | str,
    n_points: int,
    *,
    seed: int | np.random.Generator | None = None,
    trajectory_id: str = "",
    network: GridRoadNetwork | None = None,
) -> Trajectory:
    """Generate one trajectory following a dataset profile."""
    if isinstance(profile, str):
        profile = get_profile(profile)
    rng = seed if isinstance(seed, np.random.Generator) else np.random.default_rng(seed)
    if not trajectory_id:
        trajectory_id = f"{profile.name.lower()}-{rng.integers(0, 1_000_000_000)}"

    if profile.mobility == "urban":
        # Generate ~9% extra samples, then emulate urban-canyon GPS dropouts:
        # densely sampled fleets (SerCar) regain the long inter-fix jumps that
        # real data exhibits, which is where anomalous segments come from.
        raw_points = int(math.ceil(n_points / 0.92)) + 1
        trajectory = road_network_trajectory(
            raw_points,
            network=network if network is not None else _urban_network(profile),
            sampling_interval=_interval(profile),
            speed_range=profile.speed_range,
            noise_std=profile.noise_std,
            seed=rng,
            trajectory_id=trajectory_id,
        )
        trajectory = inject_dropouts(trajectory, rate=0.012, min_length=3, max_length=12, seed=rng)
        return trajectory.slice(0, n_points)
    if profile.mobility == "highway":
        return correlated_random_walk(
            n_points,
            sampling_interval=_interval(profile),
            speed_range=profile.speed_range,
            heading_volatility=0.02,
            turn_probability=0.005,
            noise_std=profile.noise_std,
            seed=rng,
            trajectory_id=trajectory_id,
        )
    if profile.mobility == "mixed":
        return _mixed_mode_trajectory(profile, n_points, rng, trajectory_id)
    raise DatasetError(f"unknown mobility model {profile.mobility!r}")


def generate_dataset(
    profile: DatasetProfile | str,
    *,
    n_trajectories: int,
    points_per_trajectory: int,
    seed: int = 0,
) -> list[Trajectory]:
    """Generate a fleet of trajectories following a dataset profile.

    The fleet shares one seeded generator so results are reproducible while
    trajectories remain mutually distinct.  Urban profiles reuse a single
    road network, as a real fleet would.
    """
    if isinstance(profile, str):
        profile = get_profile(profile)
    rng = np.random.default_rng(seed)
    network = _urban_network(profile) if profile.mobility == "urban" else None
    return [
        generate_trajectory(
            profile,
            points_per_trajectory,
            seed=rng,
            trajectory_id=f"{profile.name.lower()}-{index:04d}",
            network=network,
        )
        for index in range(n_trajectories)
    ]


def dataset_statistics(trajectories: list[Trajectory]) -> dict[str, float]:
    """Summary statistics of a fleet (used to regenerate Table 1)."""
    if not trajectories:
        return {
            "trajectories": 0,
            "total_points": 0,
            "mean_points": 0.0,
            "mean_sampling_interval": 0.0,
            "min_sampling_interval": 0.0,
            "max_sampling_interval": 0.0,
        }
    total_points = sum(len(t) for t in trajectories)
    intervals = np.concatenate(
        [t.sampling_intervals() for t in trajectories if len(t) > 1]
    )
    return {
        "trajectories": len(trajectories),
        "total_points": total_points,
        "mean_points": total_points / len(trajectories),
        "mean_sampling_interval": float(intervals.mean()) if intervals.size else 0.0,
        "min_sampling_interval": float(intervals.min()) if intervals.size else 0.0,
        "max_sampling_interval": float(intervals.max()) if intervals.size else 0.0,
    }
