"""Loading the real GeoLife corpus (when available).

GeoLife (Zheng et al.) is the only public dataset in the paper's evaluation.
It is organised as ``Data/<user-id>/Trajectory/<timestamp>.plt``.  This
module walks that directory layout and yields projected
:class:`~repro.trajectory.model.Trajectory` objects, so every experiment in
:mod:`repro.experiments` can be re-run on the genuine data simply by passing
the loaded trajectories instead of the synthetic ones.  No network access is
performed; the corpus must already be on disk.
"""

from __future__ import annotations

from pathlib import Path
from typing import Iterator

from ..exceptions import DatasetError
from ..trajectory.io import read_plt
from ..trajectory.model import Trajectory

__all__ = ["iter_geolife_files", "load_geolife_user", "load_geolife", "geolife_available"]


def geolife_available(root: str | Path) -> bool:
    """Whether ``root`` looks like an extracted GeoLife ``Data`` directory."""
    root = Path(root)
    return root.is_dir() and any(root.glob("*/Trajectory/*.plt"))


def iter_geolife_files(root: str | Path) -> Iterator[Path]:
    """Yield every ``.plt`` file under a GeoLife ``Data`` directory, sorted."""
    root = Path(root)
    if not root.is_dir():
        raise DatasetError(f"GeoLife root directory not found: {root}")
    yield from sorted(root.glob("*/Trajectory/*.plt"))


def load_geolife_user(
    root: str | Path, user_id: str, *, max_trajectories: int | None = None
) -> list[Trajectory]:
    """Load the trajectories of a single GeoLife user."""
    root = Path(root)
    user_dir = root / user_id / "Trajectory"
    if not user_dir.is_dir():
        raise DatasetError(f"GeoLife user directory not found: {user_dir}")
    trajectories: list[Trajectory] = []
    for path in sorted(user_dir.glob("*.plt")):
        trajectories.append(read_plt(path, trajectory_id=f"{user_id}/{path.stem}"))
        if max_trajectories is not None and len(trajectories) >= max_trajectories:
            break
    return trajectories


def load_geolife(
    root: str | Path,
    *,
    max_trajectories: int | None = None,
    min_points: int = 10,
) -> list[Trajectory]:
    """Load GeoLife trajectories from an extracted corpus.

    Parameters
    ----------
    root:
        The ``Data`` directory of the extracted GeoLife archive.
    max_trajectories:
        Stop after this many trajectories (``None`` loads everything —
        roughly 24 million points, so budget memory accordingly).
    min_points:
        Skip trajectories shorter than this.
    """
    trajectories: list[Trajectory] = []
    for path in iter_geolife_files(root):
        trajectory = read_plt(path, trajectory_id=str(path.relative_to(Path(root))))
        if len(trajectory) < min_points:
            continue
        trajectories.append(trajectory)
        if max_trajectories is not None and len(trajectories) >= max_trajectories:
            break
    return trajectories
