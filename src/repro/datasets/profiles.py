"""Dataset profiles mirroring the paper's Table 1.

The paper evaluates on four GPS corpora — Taxi, Truck, SerCar and GeoLife —
three of which are proprietary fleet datasets and none of which can be
downloaded in this offline environment.  Each profile below captures the
workload characteristics Table 1 and Section 6.1 report (sampling rate,
typical trajectory length, mobility style), and the generators in
:mod:`repro.datasets.generator` synthesise trajectories with those
characteristics.  Users with the real GeoLife corpus can bypass the synthetic
generator via :mod:`repro.datasets.geolife`.
"""

from __future__ import annotations

from dataclasses import dataclass

__all__ = ["DatasetProfile", "TAXI", "TRUCK", "SERCAR", "GEOLIFE", "PROFILES", "get_profile"]


@dataclass(frozen=True, slots=True)
class DatasetProfile:
    """Workload characteristics of one of the paper's datasets.

    Attributes
    ----------
    name:
        Dataset name as used in the paper.
    mobility:
        ``"urban"`` (grid road network with frequent crossroads),
        ``"highway"`` (long inter-city corridors with sparse turns) or
        ``"mixed"`` (alternating walking and driving, as in GeoLife).
    sampling_interval:
        ``(low, high)`` range of seconds between consecutive samples.
    speed_range:
        ``(low, high)`` range of speeds in metres/second.
    noise_std:
        Standard deviation of the added GPS noise in metres.
    paper_trajectories:
        Number of trajectories reported in Table 1.
    paper_points_per_trajectory:
        Average points per trajectory reported in Table 1 (thousands).
    paper_total_points:
        Total points reported in Table 1 (human-readable string).
    """

    name: str
    mobility: str
    sampling_interval: tuple[float, float]
    speed_range: tuple[float, float]
    noise_std: float
    paper_trajectories: int
    paper_points_per_trajectory: float
    paper_total_points: str
    description: str = ""


TAXI = DatasetProfile(
    name="Taxi",
    mobility="urban",
    sampling_interval=(60.0, 60.0),
    speed_range=(4.0, 14.0),
    noise_std=5.0,
    paper_trajectories=12_727,
    paper_points_per_trajectory=39.1,
    paper_total_points="498M",
    description="Beijing taxis, one point per 60 s, Nov. 2010",
)

TRUCK = DatasetProfile(
    name="Truck",
    mobility="highway",
    sampling_interval=(1.0, 60.0),
    speed_range=(8.0, 25.0),
    noise_std=5.0,
    paper_trajectories=10_368,
    paper_points_per_trajectory=71.9,
    paper_total_points="746M",
    description="Chinese long-haul trucks, 1-60 s sampling, Mar.-Oct. 2015",
)

SERCAR = DatasetProfile(
    name="SerCar",
    mobility="urban",
    sampling_interval=(3.0, 5.0),
    speed_range=(3.0, 17.0),
    noise_std=4.0,
    paper_trajectories=11_000,
    paper_points_per_trajectory=119.1,
    paper_total_points="1.31G",
    description="Rental service cars, 3-5 s sampling, Apr.-Nov. 2015",
)

GEOLIFE = DatasetProfile(
    name="GeoLife",
    mobility="mixed",
    sampling_interval=(1.0, 5.0),
    speed_range=(1.0, 15.0),
    noise_std=3.0,
    paper_trajectories=182,
    paper_points_per_trajectory=132.8,
    paper_total_points="24.2M",
    description="GeoLife users (walking/driving mix), 1-5 s sampling, 2007-2011",
)

PROFILES: dict[str, DatasetProfile] = {
    profile.name.lower(): profile for profile in (TAXI, TRUCK, SERCAR, GEOLIFE)
}
"""All four paper datasets keyed by lower-case name."""


def get_profile(name: str) -> DatasetProfile:
    """Look up a dataset profile by (case-insensitive) name."""
    key = name.strip().lower()
    if key not in PROFILES:
        available = ", ".join(sorted(PROFILES))
        raise KeyError(f"unknown dataset profile {name!r}; available: {available}")
    return PROFILES[key]
