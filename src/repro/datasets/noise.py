"""Imperfection injection for raw sensor feeds.

The paper's introduction motivates online simplification partly by the
messiness of raw vehicle-to-cloud feeds: duplicated points, out-of-order
points and positioning outliers.  These helpers inject exactly those defects
into clean synthetic trajectories so the clean-up operations in
:mod:`repro.trajectory.operations` (and the streaming pipeline as a whole)
can be exercised realistically.
"""

from __future__ import annotations

import numpy as np

from ..exceptions import InvalidParameterError
from ..trajectory.model import Trajectory

__all__ = [
    "add_gps_noise",
    "inject_duplicates",
    "inject_dropouts",
    "inject_out_of_order",
    "inject_outliers",
]


def _rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def add_gps_noise(
    trajectory: Trajectory, *, noise_std: float, seed: int | np.random.Generator | None = None
) -> Trajectory:
    """Add isotropic Gaussian positioning noise of ``noise_std`` metres."""
    if noise_std < 0.0:
        raise InvalidParameterError("noise_std must be non-negative")
    if noise_std == 0.0 or len(trajectory) == 0:
        return trajectory
    rng = _rng(seed)
    return Trajectory(
        trajectory.xs + rng.normal(0.0, noise_std, size=len(trajectory)),
        trajectory.ys + rng.normal(0.0, noise_std, size=len(trajectory)),
        trajectory.ts,
        trajectory_id=trajectory.trajectory_id,
    )


def inject_duplicates(
    trajectory: Trajectory, *, fraction: float = 0.05, seed: int | np.random.Generator | None = None
) -> Trajectory:
    """Duplicate a random ``fraction`` of points (same position and timestamp)."""
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError("fraction must lie in [0, 1]")
    n = len(trajectory)
    if n == 0 or fraction == 0.0:
        return trajectory
    rng = _rng(seed)
    count = max(1, int(round(fraction * n)))
    positions = np.sort(rng.choice(n, size=count, replace=False))
    xs = trajectory.xs.tolist()
    ys = trajectory.ys.tolist()
    ts = trajectory.ts.tolist()
    for offset, position in enumerate(positions):
        insert_at = int(position) + offset + 1
        xs.insert(insert_at, xs[insert_at - 1])
        ys.insert(insert_at, ys[insert_at - 1])
        ts.insert(insert_at, ts[insert_at - 1])
    return Trajectory(xs, ys, ts, trajectory_id=trajectory.trajectory_id)


def inject_out_of_order(
    trajectory: Trajectory, *, swaps: int = 5, seed: int | np.random.Generator | None = None
) -> Trajectory:
    """Swap ``swaps`` random adjacent pairs so timestamps are locally out of order."""
    if swaps < 0:
        raise InvalidParameterError("swaps must be non-negative")
    n = len(trajectory)
    if n < 2 or swaps == 0:
        return trajectory
    rng = _rng(seed)
    xs = trajectory.xs.copy()
    ys = trajectory.ys.copy()
    ts = trajectory.ts.copy()
    for _ in range(swaps):
        index = int(rng.integers(0, n - 1))
        xs[[index, index + 1]] = xs[[index + 1, index]]
        ys[[index, index + 1]] = ys[[index + 1, index]]
        ts[[index, index + 1]] = ts[[index + 1, index]]
    return Trajectory(xs, ys, ts, trajectory_id=trajectory.trajectory_id, require_monotonic_time=False)


def inject_dropouts(
    trajectory: Trajectory,
    *,
    rate: float = 0.01,
    min_length: int = 3,
    max_length: int = 15,
    seed: int | np.random.Generator | None = None,
) -> Trajectory:
    """Remove random runs of points, emulating GPS signal loss.

    Real fleet data loses fixes in tunnels and urban canyons, which leaves
    long jumps between otherwise densely sampled points; those jumps are a
    major source of the anomalous line segments OPERB-A patches.  ``rate`` is
    the per-point probability of *starting* a dropout of ``min_length`` to
    ``max_length`` samples.  The first and last points are always kept.
    """
    if not 0.0 <= rate <= 1.0:
        raise InvalidParameterError("rate must lie in [0, 1]")
    if min_length < 1 or max_length < min_length:
        raise InvalidParameterError("dropout lengths must satisfy 1 <= min <= max")
    n = len(trajectory)
    if n < 3 or rate == 0.0:
        return trajectory
    rng = _rng(seed)
    keep = np.ones(n, dtype=bool)
    index = 1
    while index < n - 1:
        if rng.random() < rate:
            length = int(rng.integers(min_length, max_length + 1))
            keep[index : min(index + length, n - 1)] = False
            index += length
        index += 1
    return Trajectory(
        trajectory.xs[keep],
        trajectory.ys[keep],
        trajectory.ts[keep],
        trajectory_id=trajectory.trajectory_id,
    )


def inject_outliers(
    trajectory: Trajectory,
    *,
    fraction: float = 0.01,
    magnitude: float = 500.0,
    seed: int | np.random.Generator | None = None,
) -> Trajectory:
    """Displace a random ``fraction`` of points by roughly ``magnitude`` metres."""
    if not 0.0 <= fraction <= 1.0:
        raise InvalidParameterError("fraction must lie in [0, 1]")
    if magnitude < 0.0:
        raise InvalidParameterError("magnitude must be non-negative")
    n = len(trajectory)
    if n == 0 or fraction == 0.0 or magnitude == 0.0:
        return trajectory
    rng = _rng(seed)
    count = max(1, int(round(fraction * n)))
    indices = rng.choice(n, size=count, replace=False)
    xs = trajectory.xs.copy()
    ys = trajectory.ys.copy()
    angles = rng.uniform(0.0, 2.0 * np.pi, size=count)
    xs[indices] += magnitude * np.cos(angles)
    ys[indices] += magnitude * np.sin(angles)
    return Trajectory(xs, ys, trajectory.ts, trajectory_id=trajectory.trajectory_id)
