"""Synthetic trajectory generators.

Two building blocks are provided:

* :func:`correlated_random_walk` — a Gauss–Markov style mobility model with a
  persistent heading, speed jitter and occasional sharp turns.  This captures
  free movement (GeoLife walking segments, highway driving).
* :func:`waypoint_trajectory` — movement along an explicit sequence of
  waypoints at piecewise-constant speed, used by the road-network simulator.

Both return :class:`~repro.trajectory.model.Trajectory` objects in metres
with realistic timestamps, and both accept a seeded NumPy generator so that
every experiment in this repository is reproducible.
"""

from __future__ import annotations

import math
from typing import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..trajectory.model import Trajectory

__all__ = ["correlated_random_walk", "waypoint_trajectory", "straight_line_trajectory"]


def _as_rng(seed: int | np.random.Generator | None) -> np.random.Generator:
    """Coerce a seed or generator into a NumPy generator."""
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def correlated_random_walk(
    n_points: int,
    *,
    sampling_interval: float | tuple[float, float] = 5.0,
    speed_range: tuple[float, float] = (2.0, 15.0),
    heading_volatility: float = 0.08,
    turn_probability: float = 0.02,
    turn_magnitude: float = math.pi / 2.0,
    noise_std: float = 3.0,
    start: tuple[float, float] = (0.0, 0.0),
    seed: int | np.random.Generator | None = None,
    trajectory_id: str = "",
) -> Trajectory:
    """Generate a correlated-random-walk trajectory.

    Parameters
    ----------
    n_points:
        Number of samples to produce (must be >= 1).
    sampling_interval:
        Either a fixed interval in seconds or a ``(low, high)`` range sampled
        uniformly per step, mirroring the variable sampling rates of the
        paper's datasets.
    speed_range:
        ``(low, high)`` speed range in metres/second; the speed follows a
        mean-reverting walk inside this range.
    heading_volatility:
        Standard deviation (radians) of the per-step heading perturbation.
    turn_probability:
        Per-step probability of a sharp turn (e.g. a junction).
    turn_magnitude:
        Maximum magnitude of a sharp turn in radians.
    noise_std:
        Standard deviation of the additive GPS noise in metres.
    """
    if n_points < 1:
        raise InvalidParameterError("n_points must be at least 1")
    rng = _as_rng(seed)
    if isinstance(sampling_interval, tuple):
        low, high = sampling_interval
        intervals = rng.uniform(low, high, size=max(0, n_points - 1))
    else:
        intervals = np.full(max(0, n_points - 1), float(sampling_interval))

    speed_low, speed_high = speed_range
    if speed_low <= 0.0 or speed_high < speed_low:
        raise InvalidParameterError("speed_range must satisfy 0 < low <= high")

    xs = np.empty(n_points)
    ys = np.empty(n_points)
    ts = np.empty(n_points)
    xs[0], ys[0] = start
    ts[0] = 0.0

    heading = rng.uniform(0.0, 2.0 * math.pi)
    speed = rng.uniform(speed_low, speed_high)
    mid_speed = 0.5 * (speed_low + speed_high)

    for index in range(1, n_points):
        dt = intervals[index - 1]
        heading += rng.normal(0.0, heading_volatility)
        if rng.random() < turn_probability:
            heading += rng.uniform(-turn_magnitude, turn_magnitude)
        # Mean-reverting speed walk clipped to the admissible range.
        speed += 0.2 * (mid_speed - speed) + rng.normal(0.0, 0.1 * (speed_high - speed_low))
        speed = float(np.clip(speed, speed_low, speed_high))
        xs[index] = xs[index - 1] + speed * dt * math.cos(heading)
        ys[index] = ys[index - 1] + speed * dt * math.sin(heading)
        ts[index] = ts[index - 1] + dt

    if noise_std > 0.0:
        xs += rng.normal(0.0, noise_std, size=n_points)
        ys += rng.normal(0.0, noise_std, size=n_points)

    return Trajectory(xs, ys, ts, trajectory_id=trajectory_id)


def waypoint_trajectory(
    waypoints: Sequence[tuple[float, float]],
    *,
    sampling_interval: float | tuple[float, float] = 5.0,
    speed_range: tuple[float, float] = (5.0, 15.0),
    noise_std: float = 3.0,
    n_points: int | None = None,
    seed: int | np.random.Generator | None = None,
    trajectory_id: str = "",
) -> Trajectory:
    """Generate a trajectory travelling through ``waypoints`` in order.

    The object moves along the polyline at a speed redrawn per leg from
    ``speed_range``; samples are taken every ``sampling_interval`` seconds
    *in time*, so a sample generally does **not** fall exactly on a corner —
    which is what makes line simplification of such routes non-trivial.  When
    ``n_points`` is given, sampling stops once that many points were produced
    (the route may be truncated); otherwise sampling continues to the final
    waypoint.
    """
    if len(waypoints) < 2:
        raise InvalidParameterError("waypoint_trajectory needs at least two waypoints")
    rng = _as_rng(seed)
    speed_low, speed_high = speed_range
    if speed_low <= 0.0 or speed_high < speed_low:
        raise InvalidParameterError("speed_range must satisfy 0 < low <= high")

    xs: list[float] = []
    ys: list[float] = []
    ts: list[float] = []

    def next_interval() -> float:
        if isinstance(sampling_interval, tuple):
            return float(rng.uniform(sampling_interval[0], sampling_interval[1]))
        return float(sampling_interval)

    position = np.array(waypoints[0], dtype=float)
    clock = 0.0
    xs.append(float(position[0]))
    ys.append(float(position[1]))
    ts.append(clock)

    leg_index = 0
    leg_speed = float(rng.uniform(speed_low, speed_high))
    route_finished = False
    while not route_finished and (n_points is None or len(xs) < n_points):
        dt = next_interval()
        clock += dt
        travel = leg_speed * dt
        # Advance along the polyline, possibly crossing one or more corners
        # within a single sampling step.
        while travel > 0.0:
            if leg_index >= len(waypoints) - 1:
                route_finished = True
                break
            target = np.array(waypoints[leg_index + 1], dtype=float)
            remaining_vec = target - position
            remaining = float(np.hypot(remaining_vec[0], remaining_vec[1]))
            if travel >= remaining:
                position = target
                travel -= remaining
                leg_index += 1
                leg_speed = float(rng.uniform(speed_low, speed_high))
            else:
                position = position + remaining_vec / remaining * travel
                travel = 0.0
        xs.append(float(position[0]))
        ys.append(float(position[1]))
        ts.append(clock)

    xs_arr = np.array(xs)
    ys_arr = np.array(ys)
    ts_arr = np.array(ts)
    if n_points is not None:
        xs_arr = xs_arr[:n_points]
        ys_arr = ys_arr[:n_points]
        ts_arr = ts_arr[:n_points]
    if noise_std > 0.0:
        xs_arr = xs_arr + rng.normal(0.0, noise_std, size=xs_arr.shape[0])
        ys_arr = ys_arr + rng.normal(0.0, noise_std, size=ys_arr.shape[0])
    return Trajectory(xs_arr, ys_arr, ts_arr, trajectory_id=trajectory_id)


def straight_line_trajectory(
    n_points: int,
    *,
    spacing: float = 10.0,
    sampling_interval: float = 1.0,
    heading: float = 0.0,
    start: tuple[float, float] = (0.0, 0.0),
    trajectory_id: str = "",
) -> Trajectory:
    """A noiseless straight-line trajectory (handy for tests and examples)."""
    if n_points < 1:
        raise InvalidParameterError("n_points must be at least 1")
    steps = np.arange(n_points, dtype=float)
    xs = start[0] + steps * spacing * math.cos(heading)
    ys = start[1] + steps * spacing * math.sin(heading)
    ts = steps * sampling_interval
    return Trajectory(xs, ys, ts, trajectory_id=trajectory_id)
