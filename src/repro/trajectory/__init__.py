"""Trajectory data model, piecewise representations, operations and I/O."""

from .io import (
    parse_plt,
    read_csv,
    read_jsonl,
    read_plt,
    write_csv,
    write_jsonl,
    write_piecewise_csv,
)
from .model import Trajectory
from .operations import (
    concatenate,
    drop_duplicate_points,
    drop_outliers_by_speed,
    resample_by_count,
    resample_by_interval,
    sort_by_time,
    split_on_time_gap,
    translate,
)
from .piecewise import PiecewiseRepresentation, SegmentRecord
from .soa import PointBlock, TrajectoryArray

__all__ = [
    "Trajectory",
    "TrajectoryArray",
    "PointBlock",
    "PiecewiseRepresentation",
    "SegmentRecord",
    "concatenate",
    "drop_duplicate_points",
    "drop_outliers_by_speed",
    "parse_plt",
    "read_csv",
    "read_jsonl",
    "read_plt",
    "resample_by_count",
    "resample_by_interval",
    "sort_by_time",
    "split_on_time_gap",
    "translate",
    "write_csv",
    "write_jsonl",
    "write_piecewise_csv",
]
