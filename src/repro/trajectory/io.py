"""Trajectory input/output.

Three formats are supported:

``csv``
    A plain ``x,y,t`` (or ``lat,lon,t``) table with a header row.
``plt``
    The GeoLife ``.plt`` format (six header lines, then
    ``lat,lon,0,altitude,days,date,time`` records), so the public GeoLife
    corpus can be fed to the algorithms directly when it is available.
``jsonl``
    One JSON object per trajectory, convenient for fleets.

Compressed outputs (piecewise representations) are written as CSV of the
retained vertices, which is how line-simplification results are normally
consumed downstream.
"""

from __future__ import annotations

import csv
import datetime as _dt
import io
import json
from pathlib import Path
from typing import Iterable, TextIO

import numpy as np

from ..exceptions import DatasetError
from .model import Trajectory
from .piecewise import PiecewiseRepresentation

__all__ = [
    "write_csv",
    "read_csv",
    "write_jsonl",
    "read_jsonl",
    "read_plt",
    "parse_plt",
    "write_piecewise_csv",
]

_GEOLIFE_EPOCH = _dt.datetime(1899, 12, 30)
_PLT_HEADER_LINES = 6


def write_csv(trajectory: Trajectory, destination: str | Path | TextIO) -> None:
    """Write a trajectory as an ``x,y,t`` CSV file."""
    close = False
    if isinstance(destination, (str, Path)):
        handle: TextIO = open(destination, "w", newline="")
        close = True
    else:
        handle = destination
    try:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "t"])
        for x, y, t in zip(trajectory.xs, trajectory.ys, trajectory.ts):
            writer.writerow([repr(float(x)), repr(float(y)), repr(float(t))])
    finally:
        if close:
            handle.close()


def read_csv(source: str | Path | TextIO, *, trajectory_id: str = "") -> Trajectory:
    """Read a trajectory from an ``x,y,t`` CSV file produced by :func:`write_csv`."""
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r", newline="")
        close = True
    else:
        handle = source
    try:
        reader = csv.reader(handle)
        header = next(reader, None)
        if header is None:
            return Trajectory.empty(trajectory_id=trajectory_id)
        xs: list[float] = []
        ys: list[float] = []
        ts: list[float] = []
        for row in reader:
            if not row:
                continue
            xs.append(float(row[0]))
            ys.append(float(row[1]))
            ts.append(float(row[2]) if len(row) > 2 else float(len(ts)))
        return Trajectory(xs, ys, ts, trajectory_id=trajectory_id, require_monotonic_time=False)
    finally:
        if close:
            handle.close()


def write_jsonl(trajectories: Iterable[Trajectory], destination: str | Path | TextIO) -> None:
    """Write a fleet of trajectories, one JSON object per line."""
    close = False
    if isinstance(destination, (str, Path)):
        handle: TextIO = open(destination, "w")
        close = True
    else:
        handle = destination
    try:
        for trajectory in trajectories:
            record = {
                "id": trajectory.trajectory_id,
                "x": [float(v) for v in trajectory.xs],
                "y": [float(v) for v in trajectory.ys],
                "t": [float(v) for v in trajectory.ts],
            }
            handle.write(json.dumps(record))
            handle.write("\n")
    finally:
        if close:
            handle.close()


def read_jsonl(source: str | Path | TextIO) -> list[Trajectory]:
    """Read a fleet of trajectories written by :func:`write_jsonl`."""
    close = False
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source, "r")
        close = True
    else:
        handle = source
    try:
        trajectories: list[Trajectory] = []
        for raw_line in handle:
            text = raw_line.strip()
            if not text:
                continue
            record = json.loads(text)
            trajectories.append(
                Trajectory(
                    record["x"],
                    record["y"],
                    record.get("t"),
                    trajectory_id=record.get("id", ""),
                    require_monotonic_time=False,
                )
            )
        return trajectories
    finally:
        if close:
            handle.close()


def parse_plt(
    text: str, *, trajectory_id: str = "", project_to_metres: bool = True
) -> Trajectory:
    """Parse the content of a GeoLife ``.plt`` file.

    Parameters
    ----------
    project_to_metres:
        When true (default) latitude/longitude are projected to a local
        metric frame via :class:`~repro.geometry.projection.LocalProjection`;
        when false, raw degrees are kept as coordinates.
    """
    lines = text.splitlines()
    if len(lines) <= _PLT_HEADER_LINES:
        return Trajectory.empty(trajectory_id=trajectory_id)
    lats: list[float] = []
    lons: list[float] = []
    ts: list[float] = []
    for raw_line in lines[_PLT_HEADER_LINES:]:
        text = raw_line.strip()
        if not text:
            continue
        fields = text.split(",")
        if len(fields) < 7:
            raise DatasetError(f"malformed PLT record: {text!r}")
        lats.append(float(fields[0]))
        lons.append(float(fields[1]))
        # Field 4 is the timestamp in days since 1899-12-30 (Excel/Delphi epoch).
        ts.append(float(fields[4]) * 86400.0)
    if not lats:
        return Trajectory.empty(trajectory_id=trajectory_id)
    ts_array = np.asarray(ts, dtype=float)
    ts_array -= ts_array[0]
    if project_to_metres:
        return Trajectory.from_latlon(
            lats, lons, ts_array, trajectory_id=trajectory_id, require_monotonic_time=False
        )
    return Trajectory(lons, lats, ts_array, trajectory_id=trajectory_id, require_monotonic_time=False)


def read_plt(
    path: str | Path, *, trajectory_id: str = "", project_to_metres: bool = True
) -> Trajectory:
    """Read a single GeoLife ``.plt`` trajectory file."""
    path = Path(path)
    if not trajectory_id:
        trajectory_id = path.stem
    return parse_plt(
        path.read_text(), trajectory_id=trajectory_id, project_to_metres=project_to_metres
    )


def write_piecewise_csv(
    representation: PiecewiseRepresentation, destination: str | Path | TextIO
) -> None:
    """Write the retained vertices of a piecewise representation as CSV."""
    close = False
    if isinstance(destination, (str, Path)):
        handle: TextIO = open(destination, "w", newline="")
        close = True
    else:
        handle = destination
    try:
        writer = csv.writer(handle)
        writer.writerow(["x", "y", "t", "patched"])
        points = representation.retained_points
        patched_flags = [segment.patched_start for segment in representation.segments]
        patched_flags.append(
            representation.segments[-1].patched_end if representation.segments else False
        )
        for point, patched in zip(points, patched_flags):
            writer.writerow([repr(point.x), repr(point.y), repr(point.t), int(patched)])
    finally:
        if close:
            handle.close()


def geolife_days_to_datetime(days: float) -> _dt.datetime:
    """Convert a GeoLife day-number timestamp to a :class:`datetime.datetime`."""
    return _GEOLIFE_EPOCH + _dt.timedelta(days=days)


def trajectory_to_csv_string(trajectory: Trajectory) -> str:
    """Serialise a trajectory to a CSV string (useful in tests and examples)."""
    buffer = io.StringIO()
    write_csv(trajectory, buffer)
    return buffer.getvalue()
