"""Piecewise-line representations of compressed trajectories.

A line-simplification algorithm turns a trajectory with ``n + 1`` points into
a sequence of continuous directed line segments (paper Section 3.1).  Each
:class:`SegmentRecord` remembers, besides its geometric endpoints, the range
of original point indices it represents, so that error metrics and the Z(k)
distribution of Exp-2.3 can be computed afterwards.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace
from typing import Iterable, Iterator, Sequence

from ..exceptions import InvalidTrajectoryError
from ..geometry.point import Point, encode_point
from ..geometry.segment import DirectedSegment

__all__ = ["SegmentRecord", "SegmentCascadeMixin", "PiecewiseRepresentation"]


@dataclass(frozen=True, slots=True)
class SegmentRecord:
    """One directed line segment of a piecewise representation.

    Attributes
    ----------
    start, end:
        Geometric endpoints.  These are original trajectory points except for
        OPERB-A patch points, which are synthetic.
    first_index, last_index:
        Indices (inclusive) of the original points whose range this segment
        represents.
    point_count:
        Number of original data points credited to this segment; shared
        endpoints are counted for both neighbouring segments, as in the
        paper's Exp-2.3.
    covered_last_index:
        Last original index error-bounded by this segment.  Normally equal to
        ``last_index``; larger when OPERB's optimisation 5 absorbed trailing
        points into the segment.
    patched_start, patched_end:
        Whether the corresponding endpoint is an interpolated patch point.
    """

    start: Point
    end: Point
    first_index: int
    last_index: int
    point_count: int = -1
    covered_last_index: int = -1
    patched_start: bool = False
    patched_end: bool = False

    def __post_init__(self) -> None:
        if self.point_count < 0:
            object.__setattr__(self, "point_count", self.last_index - self.first_index + 1)
        if self.covered_last_index < 0:
            object.__setattr__(self, "covered_last_index", self.last_index)

    @classmethod
    def from_indices(cls, trajectory, first_index: int, last_index: int) -> "SegmentRecord":
        """Segment joining two original points of ``trajectory`` by index."""
        return cls(
            start=trajectory[first_index],
            end=trajectory[last_index],
            first_index=first_index,
            last_index=last_index,
        )

    def to_dict(self) -> dict:
        """JSON-serialisable view of this record (see :meth:`from_dict`).

        Points are flattened to ``[x, y, t]`` triples; everything else is a
        plain int/bool.  Used by the streaming checkpoint protocol, so the
        representation must round-trip exactly (floats survive JSON via
        ``repr`` round-tripping).
        """
        return {
            "start": encode_point(self.start),
            "end": encode_point(self.end),
            "first_index": self.first_index,
            "last_index": self.last_index,
            "point_count": self.point_count,
            "covered_last_index": self.covered_last_index,
            "patched_start": self.patched_start,
            "patched_end": self.patched_end,
        }

    @classmethod
    def from_dict(cls, payload: dict) -> "SegmentRecord":
        """Rebuild a record from :meth:`to_dict` output."""
        return cls(
            start=Point(*payload["start"]),
            end=Point(*payload["end"]),
            first_index=int(payload["first_index"]),
            last_index=int(payload["last_index"]),
            point_count=int(payload["point_count"]),
            covered_last_index=int(payload["covered_last_index"]),
            patched_start=bool(payload["patched_start"]),
            patched_end=bool(payload["patched_end"]),
        )

    @property
    def is_anomalous(self) -> bool:
        """True when the segment represents only its own two endpoints."""
        return self.point_count <= 2

    @property
    def length(self) -> float:
        """Euclidean length of the segment."""
        return self.start.distance_to(self.end)

    def as_directed_segment(self) -> DirectedSegment:
        """The geometric :class:`DirectedSegment` view of this record."""
        return DirectedSegment.from_points(self.start, self.end)

    def covers_index(self, index: int) -> bool:
        """Whether original point ``index`` is represented by this segment."""
        return self.first_index <= index <= self.covered_last_index

    def with_start(self, start: Point, *, patched: bool = True) -> "SegmentRecord":
        """Copy with a replaced (typically patched) start point."""
        return replace(self, start=start, patched_start=patched)

    def with_end(self, end: Point, *, patched: bool = True) -> "SegmentRecord":
        """Copy with a replaced (typically patched) end point."""
        return replace(self, end=end, patched_end=patched)

    def with_point_count(self, point_count: int) -> "SegmentRecord":
        """Copy with an adjusted credited point count."""
        return replace(self, point_count=point_count)

    def with_covered_last_index(self, covered_last_index: int) -> "SegmentRecord":
        """Copy acknowledging absorbed points up to ``covered_last_index``."""
        return replace(self, covered_last_index=covered_last_index)


class SegmentCascadeMixin:
    """Segment re-ingest hook for epsilon-pyramid cascades.

    A coarser pyramid level consumes the finer level's *segment endpoints*
    instead of the raw point stream — O(segments), not O(points).  Any
    push/finish simplifier that inherits this mixin gains ``push_segment``
    and thereby satisfies the ``pyramid`` capability flag (RPA002 checks
    that the hook is actually defined).

    Defined here rather than in :mod:`repro.algorithms.base` (which
    re-exports it) because ``repro.core`` simplifiers inherit it, and
    importing the ``algorithms`` package from ``core`` would close an
    import cycle through ``api.builtin``.

    The mixin is stateless: whether a segment's start must be re-ingested
    (stream start, or a discontinuity after the finer level patched its
    endpoints) is the *caller's* knowledge —
    :class:`repro.streaming.PyramidSession` tracks the last endpoint it
    forwarded per level and passes ``include_start`` accordingly.
    """

    def push_segment(
        self, segment: SegmentRecord, *, include_start: bool = False
    ) -> list[SegmentRecord]:
        """Re-ingest one finer-level segment into this simplifier.

        Pushes ``segment.start`` first when ``include_start`` is true (the
        very first segment of a stream, or after a gap), then
        ``segment.end``.  Returns the segments emitted, in push order.
        """
        push = self.push  # type: ignore[attr-defined]
        emitted: list[SegmentRecord] = []
        if include_start:
            emitted.extend(push(segment.start))
        emitted.extend(push(segment.end))
        return emitted


@dataclass
class PiecewiseRepresentation:
    """A sequence of :class:`SegmentRecord` forming a compressed trajectory."""

    segments: list[SegmentRecord] = field(default_factory=list)
    source_size: int = 0
    algorithm: str = ""

    @classmethod
    def from_retained_indices(
        cls, trajectory, indices: Sequence[int], *, algorithm: str = ""
    ) -> "PiecewiseRepresentation":
        """Build a representation from the sorted indices of retained points.

        This is the natural output form of batch algorithms such as DP, which
        decide which original points to keep.
        """
        indices = sorted(set(int(i) for i in indices))
        if len(trajectory) > 0:
            if not indices or indices[0] != 0:
                indices.insert(0, 0)
            if indices[-1] != len(trajectory) - 1:
                indices.append(len(trajectory) - 1)
        segments = [
            SegmentRecord.from_indices(trajectory, first, last)
            for first, last in zip(indices[:-1], indices[1:])
        ]
        return cls(segments=segments, source_size=len(trajectory), algorithm=algorithm)

    # ------------------------------------------------------------------ #
    # Container behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self.segments)

    def __iter__(self) -> Iterator[SegmentRecord]:
        return iter(self.segments)

    def __getitem__(self, index: int) -> SegmentRecord:
        return self.segments[index]

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    @property
    def n_segments(self) -> int:
        """Number of directed line segments in the representation."""
        return len(self.segments)

    @property
    def retained_points(self) -> list[Point]:
        """The polyline vertices: segment starts plus the final end point."""
        if not self.segments:
            return []
        points = [segment.start for segment in self.segments]
        points.append(self.segments[-1].end)
        return points

    def compression_ratio(self) -> float:
        """Segments divided by original points (lower is better, as in the paper)."""
        if self.source_size == 0:
            return 0.0
        return self.n_segments / self.source_size

    def segments_covering_index(self, index: int) -> list[SegmentRecord]:
        """All segments whose covered range includes original point ``index``."""
        return [segment for segment in self.segments if segment.covers_index(index)]

    def anomalous_segments(self) -> list[SegmentRecord]:
        """Segments representing only their own two endpoints (Section 5.1)."""
        return [segment for segment in self.segments if segment.is_anomalous]

    def point_counts(self) -> list[int]:
        """Credited point count of every segment, in order."""
        return [segment.point_count for segment in self.segments]

    def validate_continuity(self, *, tolerance: float = 1e-6) -> None:
        """Check that consecutive segments share endpoints.

        Raises
        ------
        InvalidTrajectoryError
            If a gap larger than ``tolerance`` exists between the end of one
            segment and the start of the next.
        """
        for previous, current in zip(self.segments[:-1], self.segments[1:]):
            gap = previous.end.distance_to(current.start)
            if gap > tolerance:
                raise InvalidTrajectoryError(
                    f"piecewise representation is discontinuous: gap of {gap:.6g} "
                    f"between segment ending at index {previous.last_index} and the next"
                )

    def extend(self, records: Iterable[SegmentRecord]) -> None:
        """Append several segment records."""
        self.segments.extend(records)
