"""The :class:`Trajectory` container.

A trajectory (paper Section 3.1) is a sequence of data points ``P(x, y, t)``
ordered by time.  The container is NumPy-backed so batch algorithms and
metrics can operate on whole coordinate arrays at once, while streaming
algorithms iterate over :class:`~repro.geometry.point.Point` views.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np

from ..exceptions import InvalidTrajectoryError
from ..geometry.point import Point
from ..geometry.projection import LocalProjection

if TYPE_CHECKING:  # pragma: no cover - typing only
    from .soa import TrajectoryArray

__all__ = ["Trajectory"]


class Trajectory:
    """An immutable sequence of trajectory data points.

    Parameters
    ----------
    xs, ys:
        Planar coordinates (metres in a local projection).
    ts:
        Timestamps in seconds.  Optional; when omitted, indices are used.
    trajectory_id:
        Free-form identifier, useful when working with fleets of
        trajectories.
    require_monotonic_time:
        When true (the default), timestamps must be non-decreasing, mirroring
        the paper's definition of a trajectory.  Raw sensor feeds that may be
        out of order can be loaded with ``require_monotonic_time=False`` and
        repaired via :func:`repro.trajectory.operations.sort_by_time`.
    """

    __slots__ = ("_xs", "_ys", "_ts", "_soa", "trajectory_id")

    def __init__(
        self,
        xs: Sequence[float] | np.ndarray,
        ys: Sequence[float] | np.ndarray,
        ts: Sequence[float] | np.ndarray | None = None,
        *,
        trajectory_id: str = "",
        require_monotonic_time: bool = True,
    ) -> None:
        xs = np.asarray(xs, dtype=float)
        ys = np.asarray(ys, dtype=float)
        if xs.ndim != 1 or ys.ndim != 1:
            raise InvalidTrajectoryError("coordinate arrays must be one-dimensional")
        if xs.shape != ys.shape:
            raise InvalidTrajectoryError(
                f"x and y arrays have different lengths: {xs.shape[0]} != {ys.shape[0]}"
            )
        if ts is None:
            ts = np.arange(xs.shape[0], dtype=float)
        else:
            ts = np.asarray(ts, dtype=float)
            if ts.shape != xs.shape:
                raise InvalidTrajectoryError(
                    f"timestamp array length {ts.shape[0]} does not match {xs.shape[0]} points"
                )
        if xs.size and not (
            np.isfinite(xs).all() and np.isfinite(ys).all() and np.isfinite(ts).all()
        ):
            raise InvalidTrajectoryError("trajectory contains non-finite coordinates")
        if require_monotonic_time and ts.size > 1 and np.any(np.diff(ts) < 0.0):
            raise InvalidTrajectoryError(
                "timestamps must be non-decreasing; "
                "use require_monotonic_time=False for raw feeds"
            )
        self._xs = xs
        self._ys = ys
        self._ts = ts
        self._soa = None
        self.trajectory_id = trajectory_id

    # ------------------------------------------------------------------ #
    # Constructors
    # ------------------------------------------------------------------ #
    @classmethod
    def from_points(
        cls, points: Iterable[Point], *, trajectory_id: str = "", require_monotonic_time: bool = True
    ) -> "Trajectory":
        """Build a trajectory from an iterable of :class:`Point`."""
        pts = list(points)
        xs = np.array([p.x for p in pts], dtype=float)
        ys = np.array([p.y for p in pts], dtype=float)
        ts = np.array([p.t for p in pts], dtype=float)
        return cls(
            xs, ys, ts, trajectory_id=trajectory_id, require_monotonic_time=require_monotonic_time
        )

    @classmethod
    def from_latlon(
        cls,
        lats: Sequence[float] | np.ndarray,
        lons: Sequence[float] | np.ndarray,
        ts: Sequence[float] | np.ndarray | None = None,
        *,
        trajectory_id: str = "",
        projection: LocalProjection | None = None,
        require_monotonic_time: bool = True,
    ) -> "Trajectory":
        """Build a trajectory from WGS-84 latitude/longitude arrays.

        A :class:`LocalProjection` centred on the first point is used by
        default so the resulting coordinates are in metres and error bounds
        can be expressed in metres, as in the paper's experiments.
        """
        lats = np.asarray(lats, dtype=float)
        lons = np.asarray(lons, dtype=float)
        if lats.size == 0:
            return cls(lats, lons, ts, trajectory_id=trajectory_id)
        if projection is None:
            projection = LocalProjection.for_origin(float(lats[0]), float(lons[0]))
        xs, ys = projection.arrays_to_xy(lats, lons)
        return cls(
            xs, ys, ts, trajectory_id=trajectory_id, require_monotonic_time=require_monotonic_time
        )

    @classmethod
    def empty(cls, *, trajectory_id: str = "") -> "Trajectory":
        """An empty trajectory."""
        return cls(np.array([]), np.array([]), np.array([]), trajectory_id=trajectory_id)

    # ------------------------------------------------------------------ #
    # Array views
    # ------------------------------------------------------------------ #
    @property
    def xs(self) -> np.ndarray:
        """The x-coordinate array (do not mutate)."""
        return self._xs

    @property
    def ys(self) -> np.ndarray:
        """The y-coordinate array (do not mutate)."""
        return self._ys

    @property
    def ts(self) -> np.ndarray:
        """The timestamp array (do not mutate)."""
        return self._ts

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Copies of the ``(xs, ys, ts)`` arrays."""
        return self._xs.copy(), self._ys.copy(), self._ts.copy()

    def soa(self) -> "TrajectoryArray":
        """Cached structure-of-arrays view for the vectorized kernels.

        The view pins the coordinates in contiguous ``float64`` arrays (a
        no-op for trajectories built from such arrays) and is built at most
        once per trajectory.
        """
        if self._soa is None:
            from .soa import TrajectoryArray

            self._soa = TrajectoryArray.from_trajectory(self)
        return self._soa

    # ------------------------------------------------------------------ #
    # Sequence behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self._xs.shape[0])

    def __getitem__(self, index: int) -> Point:
        if isinstance(index, slice):
            return self.slice(*index.indices(len(self)))
        if index < 0:
            index += len(self)
        if index < 0 or index >= len(self):
            raise IndexError(f"point index {index} out of range for {len(self)} points")
        return Point(float(self._xs[index]), float(self._ys[index]), float(self._ts[index]))

    def __iter__(self) -> Iterator[Point]:
        for i in range(len(self)):
            yield Point(float(self._xs[i]), float(self._ys[i]), float(self._ts[i]))

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Trajectory):
            return NotImplemented
        return (
            np.array_equal(self._xs, other._xs)
            and np.array_equal(self._ys, other._ys)
            and np.array_equal(self._ts, other._ts)
        )

    def __repr__(self) -> str:
        ident = f" id={self.trajectory_id!r}" if self.trajectory_id else ""
        return f"Trajectory(n={len(self)}{ident})"

    # ------------------------------------------------------------------ #
    # Derived quantities
    # ------------------------------------------------------------------ #
    def slice(self, start: int, stop: int, step: int = 1) -> "Trajectory":
        """Sub-trajectory covering ``[start, stop)`` with the given step."""
        return Trajectory(
            self._xs[start:stop:step],
            self._ys[start:stop:step],
            self._ts[start:stop:step],
            trajectory_id=self.trajectory_id,
            require_monotonic_time=False,
        )

    def path_length(self) -> float:
        """Total travelled distance (sum of consecutive point distances)."""
        if len(self) < 2:
            return 0.0
        return float(np.sum(np.hypot(np.diff(self._xs), np.diff(self._ys))))

    def duration(self) -> float:
        """Time span covered by the trajectory in seconds."""
        if len(self) < 2:
            return 0.0
        return float(self._ts[-1] - self._ts[0])

    def bounding_box(self) -> tuple[float, float, float, float]:
        """``(min_x, min_y, max_x, max_y)`` of the trajectory."""
        if len(self) == 0:
            return (0.0, 0.0, 0.0, 0.0)
        return (
            float(self._xs.min()),
            float(self._ys.min()),
            float(self._xs.max()),
            float(self._ys.max()),
        )

    def sampling_intervals(self) -> np.ndarray:
        """Array of consecutive timestamp differences."""
        if len(self) < 2:
            return np.array([])
        return np.diff(self._ts)

    def mean_sampling_interval(self) -> float:
        """Average sampling interval in seconds (0.0 for fewer than 2 points)."""
        intervals = self.sampling_intervals()
        if intervals.size == 0:
            return 0.0
        return float(intervals.mean())
