"""Structure-of-arrays trajectory view for the vectorized kernels.

A :class:`TrajectoryArray` pins a whole trajectory's coordinates in three
contiguous ``float64`` arrays so the batch algorithms (Douglas–Peucker, the
window family, BQS) and the metrics can hand coordinate ranges straight to
the :mod:`repro.geometry.kernels` without per-point Python objects.  It is a
*view*: building one from a :class:`~repro.trajectory.model.Trajectory` whose
arrays are already contiguous copies nothing.

The chord-deviation helpers mirror the recurring access pattern of the batch
algorithms — "measure the points strictly inside ``(first, last)`` against
the chord ``first -> last``" — with the distance metric (PED or SED) chosen
per call, and dispatch through the kernel layer so the
``vectorized``/``scalar`` backend flag applies uniformly.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Iterator, Sequence

import numpy as np
import numpy.typing as npt

from ..exceptions import InvalidTrajectoryError
from ..geometry import kernels
from ..geometry.point import Point

if TYPE_CHECKING:  # pragma: no cover - import cycle guard, typing only
    from .model import Trajectory

__all__ = ["TrajectoryArray", "PointBlock"]


class TrajectoryArray:
    """Contiguous ``(xs, ys, ts)`` arrays of one trajectory.

    Parameters
    ----------
    xs, ys, ts:
        Equal-length one-dimensional coordinate arrays.  They are converted
        to C-contiguous ``float64`` arrays; already-contiguous ``float64``
        input is referenced, not copied.
    trajectory_id:
        Free-form identifier carried over from the source trajectory.
    """

    __slots__ = ("xs", "ys", "ts", "trajectory_id")

    xs: np.ndarray
    ys: np.ndarray
    ts: np.ndarray
    trajectory_id: str

    def __init__(
        self,
        xs: npt.ArrayLike,
        ys: npt.ArrayLike,
        ts: npt.ArrayLike,
        *,
        trajectory_id: str = "",
    ) -> None:
        xs_arr = np.ascontiguousarray(xs, dtype=float)
        ys_arr = np.ascontiguousarray(ys, dtype=float)
        ts_arr = np.ascontiguousarray(ts, dtype=float)
        if xs_arr.ndim != 1 or ys_arr.ndim != 1 or ts_arr.ndim != 1:
            raise InvalidTrajectoryError("coordinate arrays must be one-dimensional")
        if not (xs_arr.shape == ys_arr.shape == ts_arr.shape):
            raise InvalidTrajectoryError(
                f"coordinate arrays have mismatched lengths: "
                f"{xs_arr.shape[0]}, {ys_arr.shape[0]}, {ts_arr.shape[0]}"
            )
        self.xs = xs_arr
        self.ys = ys_arr
        self.ts = ts_arr
        self.trajectory_id = trajectory_id

    @classmethod
    def from_trajectory(cls, trajectory: "Trajectory") -> "TrajectoryArray":
        """SoA view of ``trajectory`` (zero-copy when already contiguous)."""
        return cls(
            trajectory.xs,
            trajectory.ys,
            trajectory.ts,
            trajectory_id=trajectory.trajectory_id,
        )

    def to_trajectory(self) -> "Trajectory":
        """Materialise a :class:`Trajectory` sharing these arrays."""
        from .model import Trajectory

        return Trajectory(
            self.xs,
            self.ys,
            self.ts,
            trajectory_id=self.trajectory_id,
            require_monotonic_time=False,
        )

    # ------------------------------------------------------------------ #
    # Sequence behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return int(self.xs.shape[0])

    def point(self, index: int) -> Point:
        """The :class:`Point` at ``index`` (negative indices supported)."""
        if index < 0:
            index += len(self)
        if index < 0 or index >= len(self):
            raise IndexError(f"point index {index} out of range for {len(self)} points")
        return Point(float(self.xs[index]), float(self.ys[index]), float(self.ts[index]))

    def __repr__(self) -> str:
        ident = f" id={self.trajectory_id!r}" if self.trajectory_id else ""
        return f"{type(self).__name__}(n={len(self)}{ident})"

    # ------------------------------------------------------------------ #
    # Chord-range kernels
    # ------------------------------------------------------------------ #
    def _check_range(self, first: int, last: int) -> None:
        n = len(self)
        if not (0 <= first <= last < n):
            raise IndexError(
                f"chord range ({first}, {last}) out of bounds for {n} points"
            )

    def chord_deviations(self, first: int, last: int, *, use_sed: bool = False) -> np.ndarray:
        """Deviations of the points strictly inside ``(first, last)`` to the chord.

        The chord joins the points at ``first`` and ``last``; ``use_sed``
        selects the synchronised Euclidean distance instead of the
        perpendicular distance.
        """
        self._check_range(first, last)
        lo = first + 1
        xs = self.xs[lo:last]
        ys = self.ys[lo:last]
        ax = float(self.xs[first])
        ay = float(self.ys[first])
        bx = float(self.xs[last])
        by = float(self.ys[last])
        if use_sed:
            return kernels.sed_to_chord(
                xs,
                ys,
                self.ts[lo:last],
                ax,
                ay,
                float(self.ts[first]),
                bx,
                by,
                float(self.ts[last]),
            )
        return kernels.ped_to_chord(xs, ys, ax, ay, bx, by)

    def max_chord_deviation(
        self, first: int, last: int, *, use_sed: bool = False
    ) -> tuple[float, int]:
        """Maximum deviation inside ``(first, last)`` and its absolute index.

        Returns ``(0.0, -1)`` when the range has no interior point.
        """
        self._check_range(first, last)
        lo = first + 1
        xs = self.xs[lo:last]
        ys = self.ys[lo:last]
        ax = float(self.xs[first])
        ay = float(self.ys[first])
        bx = float(self.xs[last])
        by = float(self.ys[last])
        if use_sed:
            deviation, offset = kernels.max_sed_to_chord(
                xs,
                ys,
                self.ts[lo:last],
                ax,
                ay,
                float(self.ts[first]),
                bx,
                by,
                float(self.ts[last]),
            )
        else:
            deviation, offset = kernels.max_ped_to_chord(xs, ys, ax, ay, bx, by)
        if offset < 0:
            return 0.0, -1
        return deviation, lo + offset

    def window_within(
        self, first: int, last: int, epsilon: float, *, use_sed: bool = False
    ) -> bool:
        """Whether every point strictly inside ``(first, last)`` fits the chord."""
        self._check_range(first, last)
        if last - first < 2:
            return True
        lo = first + 1
        xs = self.xs[lo:last]
        ys = self.ys[lo:last]
        ax = float(self.xs[first])
        ay = float(self.ys[first])
        bx = float(self.xs[last])
        by = float(self.ys[last])
        if use_sed:
            return kernels.all_within_sed(
                xs,
                ys,
                self.ts[lo:last],
                ax,
                ay,
                float(self.ts[first]),
                bx,
                by,
                float(self.ts[last]),
                epsilon,
            )
        return kernels.all_within_chord(xs, ys, ax, ay, bx, by, epsilon)

    def segment_directions(self) -> np.ndarray:
        """Directions of the consecutive-point vectors, in ``[0, 2*pi)``."""
        if len(self) < 2:
            return np.array([], dtype=float)
        return kernels.direction_angles(np.diff(self.xs), np.diff(self.ys))


class PointBlock(TrajectoryArray):
    """A structure-of-arrays batch of streamed points.

    The unit of the block-based ingest protocol: where per-point streaming
    pushes one :class:`~repro.geometry.point.Point` at a time,
    ``push_block(block)`` hands a whole SoA batch to the simplifier so its
    inner loops can run the vectorized prefix kernels of
    :mod:`repro.geometry.kernels` instead of per-point Python.  A block
    carries no trajectory semantics — it is simply "the next ``n`` points of
    one stream, in arrival order"; splitting a stream into blocks at *any*
    boundaries yields byte-identical segments and checkpoints to per-point
    pushes, which the equivalence suite locks in.

    Blocks share :class:`TrajectoryArray`'s contiguous ``float64``
    ``(xs, ys, ts)`` arrays and validation; construction from an existing
    trajectory or from contiguous arrays is zero-copy.  A block built with
    :meth:`from_points` additionally keeps the source :class:`Point` objects
    so consumers that fall back to per-point processing (the scalar boundary
    pushes, the generic fallback for non-batched algorithms) never rebuild
    them from the arrays.
    """

    __slots__ = ("_points",)

    _points: Sequence[Point] | None

    def __init__(
        self,
        xs: npt.ArrayLike,
        ys: npt.ArrayLike,
        ts: npt.ArrayLike,
        *,
        trajectory_id: str = "",
    ) -> None:
        super().__init__(xs, ys, ts, trajectory_id=trajectory_id)
        self._points = None

    @classmethod
    def from_points(cls, points: Iterable[Point]) -> "PointBlock":
        """Pack an iterable of points into one block (arrival order kept)."""
        pts = points if isinstance(points, (list, tuple)) else list(points)
        block = cls(
            np.array([p.x for p in pts], dtype=float),
            np.array([p.y for p in pts], dtype=float),
            np.array([p.t for p in pts], dtype=float),
        )
        block._points = pts
        return block

    @classmethod
    def concat(cls, blocks: Sequence["PointBlock"]) -> "PointBlock":
        """Concatenate several blocks into one (empty input gives an empty block)."""
        if not blocks:
            return cls.empty()
        if len(blocks) == 1:
            block = blocks[0]
            merged = cls(block.xs, block.ys, block.ts)
            merged._points = block._points
            return merged
        return cls(
            np.concatenate([block.xs for block in blocks]),
            np.concatenate([block.ys for block in blocks]),
            np.concatenate([block.ts for block in blocks]),
        )

    @classmethod
    def empty(cls) -> "PointBlock":
        """A zero-length block (pushing it is a cheap no-op)."""
        return cls(
            np.array([], dtype=float), np.array([], dtype=float), np.array([], dtype=float)
        )

    def point(self, index: int) -> Point:
        """The :class:`Point` at ``index`` (cached when built from points)."""
        if self._points is not None:
            return self._points[index]
        return super().point(index)

    def slice(self, start: int, stop: int) -> "PointBlock":
        """Sub-block view of ``[start, stop)`` (no array copy)."""
        block = type(self)(self.xs[start:stop], self.ys[start:stop], self.ts[start:stop])
        if self._points is not None:
            block._points = self._points[start:stop]
        return block

    def split(self, block_size: int) -> "list[PointBlock]":
        """Chop into consecutive sub-blocks of at most ``block_size`` points."""
        if block_size < 1:
            raise InvalidTrajectoryError(
                f"block_size must be at least 1, got {block_size}"
            )
        return [
            self.slice(start, min(start + block_size, len(self)))
            for start in range(0, len(self), block_size)
        ]

    def iter_points(self) -> Iterator[Point]:
        """Iterate the block as :class:`Point` objects (the per-point view)."""
        if self._points is not None:
            return iter(self._points)
        return self._materialize_points()

    def _materialize_points(self) -> Iterator[Point]:
        xs, ys, ts = self.xs, self.ys, self.ts
        for i in range(xs.shape[0]):
            yield Point(float(xs[i]), float(ys[i]), float(ts[i]))

    def __iter__(self) -> Iterator[Point]:
        return self.iter_points()
