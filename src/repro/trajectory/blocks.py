"""The shared block-ingest loop behind every ``push_block_steps``.

The streaming simplifiers' batched ingest all follows one shape: *probe*
the head of the remaining block with a vectorized prefix kernel, bulk-apply
the absorbed run, replay the run-breaking point through the exact scalar
``push``, and coalesce silent pushes into ``(count, segments)`` steps.  The
adaptive policy around it — exponential scalar backoff when probes are
unprofitable (see the ``BLOCK_*`` constants in
:mod:`repro.geometry.kernels`), backoff reset when a probe fills its
window, delivery of the pending silent prefix before a mid-block exception
surfaces — is algorithm-independent, so it lives here exactly once;
each simplifier contributes only its probe.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Callable, Iterator

from ..geometry import kernels

if TYPE_CHECKING:  # pragma: no cover - typing only
    from ..trajectory.piecewise import SegmentRecord
    from .soa import PointBlock

__all__ = ["drive_block_steps"]


def drive_block_steps(
    simplifier: object,
    block: "PointBlock",
    probe: Callable[[int], tuple[int, bool, bool]],
) -> Iterator["tuple[int, list[SegmentRecord]]"]:
    """Drive one block through a simplifier's probe/scalar machinery.

    ``probe(start)`` examines the block from ``start`` and returns
    ``(count, probed, filled)``:

    - ``count`` — points the probe bulk-ingested (the probe itself applies
      every state update a per-point loop would have made for them);
    - ``probed`` — whether a probe was attempted at all (False when the
      simplifier has no open state to probe against, e.g. before the first
      point; the next point then takes the scalar path without touching the
      backoff);
    - ``filled`` — whether the run covered the probe's whole window, in
      which case the stream is dense here and the driver immediately probes
      again from the new position.

    The driver owns the shared policy: the scalar-backoff budget (tracked
    on ``simplifier._probe_backoff`` so it survives across blocks), the
    run-breaking points' replay through the exact scalar ``push``, and the
    coalescing of silent pushes into ``(count, segments)`` steps — each
    step means "``count`` further points were ingested and the last of them
    emitted ``segments``".  If a scalar push raises, the pending silent
    prefix is yielded first and the exception surfaces on the consumer's
    next resumption, so traced consumers (the hub's per-device accounting)
    count exactly the points ingested before the failure — matching
    per-point routing.
    """
    n = len(block)
    i = 0
    silent = 0
    scalar_budget = 0
    while i < n:
        if scalar_budget > 0:
            scalar_budget -= 1
        else:
            count, probed, filled = probe(i)
            if probed:
                if count:
                    silent += count
                    i += count
                    if filled:
                        # The whole window absorbed: keep the fast path hot
                        # and probe again from the new position.
                        simplifier._probe_backoff = 0
                        continue
                # The probe hit a run-breaking point.  Profitable runs keep
                # probing eagerly; stub runs mean the stream is currently
                # too sparse for array work, so back off to scalar pushes
                # with exponentially growing spacing (bounded overhead,
                # quick rediscovery of dense phases).
                if count >= kernels.BLOCK_MIN_RUN:
                    simplifier._probe_backoff = 0
                else:
                    simplifier._probe_backoff = min(
                        kernels.BLOCK_PROBE_BACKOFF_MAX,
                        max(kernels.BLOCK_MIN_RUN, 2 * simplifier._probe_backoff),
                    )
                    scalar_budget = simplifier._probe_backoff
        # The run-breaking point (or a point with no probe to run) takes
        # the exact scalar path, so every decision and statistic matches
        # per-point ingest bit for bit.
        try:
            emitted = simplifier.push(block.point(i))
        except BaseException:
            if silent:
                yield silent, []
            raise
        i += 1
        if emitted:
            yield silent + 1, emitted
            silent = 0
        else:
            silent += 1
    if silent:
        yield silent, []
