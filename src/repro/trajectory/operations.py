"""Trajectory pre-processing operations.

The paper's introduction motivates online compression partly by the messiness
of raw device feeds: duplicate points, out-of-order points, bursts and gaps.
This module provides the corresponding clean-up and reshaping operations so a
raw feed can be normalised before (or while) being simplified.
"""

from __future__ import annotations

from typing import Iterable

import numpy as np

from ..exceptions import InvalidParameterError
from ..geometry.point import Point
from .model import Trajectory

__all__ = [
    "sort_by_time",
    "drop_duplicate_points",
    "drop_outliers_by_speed",
    "split_on_time_gap",
    "resample_by_count",
    "resample_by_interval",
    "concatenate",
    "translate",
]


def sort_by_time(trajectory: Trajectory) -> Trajectory:
    """Return a copy of ``trajectory`` with points sorted by timestamp.

    Sorting is stable, so points sharing a timestamp keep their arrival
    order.  This repairs the out-of-order points that online transmission can
    introduce (see the paper's introduction).
    """
    order = np.argsort(trajectory.ts, kind="stable")
    return Trajectory(
        trajectory.xs[order],
        trajectory.ys[order],
        trajectory.ts[order],
        trajectory_id=trajectory.trajectory_id,
    )


def drop_duplicate_points(trajectory: Trajectory, *, spatial_tolerance: float = 0.0) -> Trajectory:
    """Remove consecutive points that repeat the same timestamp and position.

    Parameters
    ----------
    spatial_tolerance:
        Two consecutive points closer than this (with an identical timestamp)
        are considered duplicates.  ``0.0`` requires exact coincidence.
    """
    if len(trajectory) < 2:
        return trajectory
    keep = [0]
    for index in range(1, len(trajectory)):
        previous = trajectory[keep[-1]]
        current = trajectory[index]
        same_time = current.t == previous.t
        same_place = current.distance_to(previous) <= spatial_tolerance
        if same_time and same_place:
            continue
        keep.append(index)
    return Trajectory(
        trajectory.xs[keep],
        trajectory.ys[keep],
        trajectory.ts[keep],
        trajectory_id=trajectory.trajectory_id,
    )


def drop_outliers_by_speed(trajectory: Trajectory, *, max_speed: float) -> Trajectory:
    """Remove points that would require travelling faster than ``max_speed``.

    A point is dropped when the speed needed to reach it from the last kept
    point exceeds ``max_speed`` (metres per second).  This is a standard
    cheap filter for GPS glitches.
    """
    if max_speed <= 0.0:
        raise InvalidParameterError("max_speed must be positive")
    if len(trajectory) < 2:
        return trajectory
    keep = [0]
    for index in range(1, len(trajectory)):
        previous = trajectory[keep[-1]]
        current = trajectory[index]
        dt = current.t - previous.t
        distance = current.distance_to(previous)
        if dt <= 0.0:
            if distance > 0.0:
                continue
            speed = 0.0
        else:
            speed = distance / dt
        if speed > max_speed:
            continue
        keep.append(index)
    return Trajectory(
        trajectory.xs[keep],
        trajectory.ys[keep],
        trajectory.ts[keep],
        trajectory_id=trajectory.trajectory_id,
    )


def split_on_time_gap(trajectory: Trajectory, *, max_gap: float) -> list[Trajectory]:
    """Split a trajectory wherever the sampling gap exceeds ``max_gap`` seconds."""
    if max_gap <= 0.0:
        raise InvalidParameterError("max_gap must be positive")
    if len(trajectory) < 2:
        return [trajectory]
    gaps = np.where(np.diff(trajectory.ts) > max_gap)[0]
    if gaps.size == 0:
        return [trajectory]
    pieces: list[Trajectory] = []
    start = 0
    for gap_index in gaps:
        pieces.append(trajectory.slice(start, int(gap_index) + 1))
        start = int(gap_index) + 1
    pieces.append(trajectory.slice(start, len(trajectory)))
    return [piece for piece in pieces if len(piece) > 0]


def resample_by_count(trajectory: Trajectory, count: int) -> Trajectory:
    """Keep ``count`` points spread evenly over the trajectory (by index)."""
    if count < 2:
        raise InvalidParameterError("count must be at least 2")
    if len(trajectory) <= count:
        return trajectory
    indices = np.linspace(0, len(trajectory) - 1, count).round().astype(int)
    indices = np.unique(indices)
    return Trajectory(
        trajectory.xs[indices],
        trajectory.ys[indices],
        trajectory.ts[indices],
        trajectory_id=trajectory.trajectory_id,
    )


def resample_by_interval(trajectory: Trajectory, interval: float) -> Trajectory:
    """Keep at most one point per ``interval`` seconds (the first of each window)."""
    if interval <= 0.0:
        raise InvalidParameterError("interval must be positive")
    if len(trajectory) < 2:
        return trajectory
    keep = [0]
    next_time = trajectory.ts[0] + interval
    for index in range(1, len(trajectory)):
        if trajectory.ts[index] >= next_time:
            keep.append(index)
            next_time = trajectory.ts[index] + interval
    if keep[-1] != len(trajectory) - 1:
        keep.append(len(trajectory) - 1)
    return Trajectory(
        trajectory.xs[keep],
        trajectory.ys[keep],
        trajectory.ts[keep],
        trajectory_id=trajectory.trajectory_id,
    )


def concatenate(trajectories: Iterable[Trajectory], *, trajectory_id: str = "") -> Trajectory:
    """Concatenate several trajectories into one (timestamps must already align)."""
    pieces = [t for t in trajectories if len(t) > 0]
    if not pieces:
        return Trajectory.empty(trajectory_id=trajectory_id)
    xs = np.concatenate([t.xs for t in pieces])
    ys = np.concatenate([t.ys for t in pieces])
    ts = np.concatenate([t.ts for t in pieces])
    return Trajectory(xs, ys, ts, trajectory_id=trajectory_id, require_monotonic_time=False)


def translate(trajectory: Trajectory, dx: float, dy: float, dt: float = 0.0) -> Trajectory:
    """Return a translated copy of ``trajectory``."""
    return Trajectory(
        trajectory.xs + dx,
        trajectory.ys + dy,
        trajectory.ts + dt,
        trajectory_id=trajectory.trajectory_id,
    )


def points_from_xy(xs: Iterable[float], ys: Iterable[float]) -> list[Point]:
    """Convenience: zip two coordinate iterables into a list of points."""
    return [Point(float(x), float(y), float(index)) for index, (x, y) in enumerate(zip(xs, ys))]
