"""Declared workload suites for the performance harness.

A :class:`PerfSuite` is a named, fully-reproducible description of what the
harness measures: which synthetic fleets to generate (seeded
:class:`PerfCase` entries) and which registered algorithms to run over them.
Suites are *declared* rather than ad hoc so two runs of the same suite —
today, next month, on another machine — measure exactly the same work and
their ``BENCH_results.json`` files can be diffed by
:mod:`repro.perf.compare`.

Three suites ship by default:

``smoke``
    A few hundred points; used by the unit tests and the CLI smoke test.
``quick``
    The CI gating suite (a few seconds): two fleets, the paper's headline
    algorithms.
``full``
    All four dataset profiles at a larger scale for local investigations.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.generator import generate_dataset
from ..datasets.profiles import get_profile
from ..exceptions import InvalidParameterError
from ..trajectory.model import Trajectory

__all__ = [
    "PerfCase",
    "PerfSuite",
    "SUITES",
    "GATING_ALGORITHMS",
    "get_suite",
    "build_fleet",
]

GATING_ALGORITHMS = ("dp", "opw", "operb", "operb-a")
"""Algorithms every gating suite must cover: the batch reference (DP), the
window baseline (OPW) and the paper's two contributions."""


@dataclass(frozen=True, slots=True)
class PerfCase:
    """One seeded synthetic fleet measured by a suite."""

    name: str
    profile: str
    n_trajectories: int
    points_per_trajectory: int
    epsilon: float = 40.0
    seed: int = 2017

    @property
    def total_points(self) -> int:
        """Total number of points processed per algorithm for this case."""
        return self.n_trajectories * self.points_per_trajectory


@dataclass(frozen=True, slots=True)
class PerfSuite:
    """A named set of cases and algorithms the harness runs together."""

    name: str
    cases: tuple[PerfCase, ...]
    algorithms: tuple[str, ...]
    repeats: int = 3
    """Timing repeats per (case, algorithm); the best wall time is kept."""


_SMOKE = PerfSuite(
    name="smoke",
    cases=(PerfCase("taxi-300", "taxi", n_trajectories=1, points_per_trajectory=300),),
    algorithms=GATING_ALGORITHMS,
    repeats=1,
)

_QUICK = PerfSuite(
    name="quick",
    cases=(
        PerfCase("taxi-2x2k", "taxi", n_trajectories=2, points_per_trajectory=2_000),
        PerfCase("sercar-2x2k", "sercar", n_trajectories=2, points_per_trajectory=2_000),
    ),
    algorithms=GATING_ALGORITHMS + ("fbqs",),
    repeats=3,
)

_FULL = PerfSuite(
    name="full",
    cases=(
        PerfCase("taxi-4x5k", "taxi", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("truck-4x5k", "truck", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("sercar-4x5k", "sercar", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("geolife-4x5k", "geolife", n_trajectories=4, points_per_trajectory=5_000),
    ),
    algorithms=GATING_ALGORITHMS + ("fbqs", "bqs", "dp-sed", "opw-tr"),
    repeats=3,
)

SUITES: dict[str, PerfSuite] = {suite.name: suite for suite in (_SMOKE, _QUICK, _FULL)}
"""The declared suites, by name."""


def get_suite(name: str) -> PerfSuite:
    """Look up a declared suite by name."""
    try:
        return SUITES[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown perf suite {name!r}; available: {', '.join(sorted(SUITES))}"
        ) from None


def build_fleet(case: PerfCase) -> list[Trajectory]:
    """Synthesise the (seeded, deterministic) fleet of one case."""
    return generate_dataset(
        get_profile(case.profile),
        n_trajectories=case.n_trajectories,
        points_per_trajectory=case.points_per_trajectory,
        seed=case.seed,
    )
