"""Declared workload suites for the performance harness.

A :class:`PerfSuite` is a named, fully-reproducible description of what the
harness measures: which synthetic fleets to generate (seeded
:class:`PerfCase` entries) and which registered algorithms to run over them.
Suites are *declared* rather than ad hoc so two runs of the same suite —
today, next month, on another machine — measure exactly the same work and
their ``BENCH_results.json`` files can be diffed by
:mod:`repro.perf.compare`.

These suites ship by default:

``smoke``
    A few hundred points; used by the unit tests and the CLI smoke test.
``quick``
    The CI gating suite (a few seconds): two fleets plus two multi-device
    ``hub``-mode cases — one serial, one on the thread backend — covering
    the paper's headline algorithms.
``hub``
    Concurrent-ingest workloads: every case replays an interleaved
    multi-device point log through a :class:`repro.streaming.StreamHub`
    (one device per trajectory), measuring aggregate hub throughput across
    the serial, thread and process execution backends.
``fleet``
    Backend-scaling cases for the fleet executor: the same fleet through
    ``Simplifier.run_many`` on every :mod:`repro.exec` backend.
``blocks``
    Block-ingest workloads: an idle-heavy fleet (dense dwell phases, the
    regime the SoA ``push_block`` path is built for) replayed through the
    hub with a large ``block_size`` on the serial, thread and process
    backends — the suite that demonstrates the thread backend beating
    serial on hub ingest once shard workers do vectorized block work.
``store``
    Segment-store workloads: the fleet is simplified (untimed), then the
    timed phase drives a fresh :mod:`repro.store` segment store.  A case's
    ``store_op`` picks the shape: ``query`` ingests and runs one
    device/time-window query per device (ingest throughput plus zone-map
    pruning), ``compact`` ingests in many small batches, compacts and
    queries (the maintenance path), and ``aggregate`` times fully-covered
    window aggregates answered from the zone-map sidecars alone (scan
    fraction 0).
``pyramid``
    Multi-resolution ingest: the same interleaved log as a ``hub`` case,
    but served through an epsilon pyramid of ``levels`` resolutions
    (ladder ``epsilon * 2**i``) in one pass.  The ``levels=1`` cases are
    the single-resolution reference the k>1 cells are judged against —
    the pyramid's pitch is k resolutions for well under k times the cost.
``full``
    All four dataset profiles at a larger scale for local investigations.

A case's ``mode`` selects what the harness drives: ``"batch"`` runs the
fleet through ``Simplifier.run``; ``"hub"`` routes the same points, in
round-robin arrival order, through a stream hub; ``"fleet"`` fans the fleet
out over ``Simplifier.run_many``; ``"store"`` ingests the simplified
segments into a segment store and queries it back; ``"pyramid"`` routes
the hub traffic through a multi-resolution epsilon ladder.
``backend``/``workers`` pick the :mod:`repro.exec` execution backend for
the ``hub`` and ``fleet`` modes.
The interleaved log of a hub case comes from :func:`build_device_log`,
which is also the generator the hub tests share (via the
``device_point_log`` fixture) so tests and benchmarks measure the same
traffic shape.
"""

from __future__ import annotations

import math
from dataclasses import dataclass

import numpy as np

from ..datasets.generator import generate_dataset
from ..datasets.profiles import get_profile
from ..exceptions import InvalidParameterError
from ..geometry.point import Point
from ..trajectory.model import Trajectory

__all__ = [
    "PerfCase",
    "PerfSuite",
    "SUITES",
    "GATING_ALGORITHMS",
    "CASE_BACKENDS",
    "CASE_MODES",
    "STORE_OPS",
    "IDLE_FLEET_PROFILE",
    "get_suite",
    "build_fleet",
    "build_idle_fleet",
    "build_device_log",
    "interleave_fleet",
]

GATING_ALGORITHMS = ("dp", "opw", "operb", "operb-a")
"""Algorithms every gating suite must cover: the batch reference (DP), the
window baseline (OPW) and the paper's two contributions."""


CASE_MODES = ("batch", "hub", "fleet", "store", "pyramid")
"""Valid values of :attr:`PerfCase.mode`."""

CASE_BACKENDS = ("serial", "thread", "process", "node")
"""Valid values of :attr:`PerfCase.backend` (declared cases are explicit —
no ``auto`` — so a suite measures the same runtime everywhere)."""

STORE_OPS = ("query", "compact", "aggregate")
"""Valid values of :attr:`PerfCase.store_op` (``store`` mode only):
``query`` times ingest plus per-device window queries, ``compact`` times a
many-small-chunk ingest followed by compaction and the same queries, and
``aggregate`` times fully-covered window aggregates answered from the
zone-map sidecars alone (scan fraction 0)."""

IDLE_FLEET_PROFILE = "idle-fleet"
"""Pseudo-profile name selecting :func:`build_idle_fleet` in a case.

An idle-heavy fleet: short driving bursts separated by long stationary
dwells, during which devices keep reporting at full cadence (half the
dwells re-send the exact last fix — parked hardware — and half jitter
around it by GPS noise).  This is the regime the block-ingest path is built
for: dwell phases form long absorbable runs that the vectorized prefix
kernels consume in one call each, while the paper's dataset profiles
(sparse sampling relative to epsilon) exercise the scalar-backoff side.
"""



@dataclass(frozen=True, slots=True)
class PerfCase:
    """One seeded synthetic fleet measured by a suite.

    ``mode="hub"`` turns the fleet into a multi-device ingest workload: one
    device per trajectory, points interleaved round-robin, driven through a
    :class:`repro.streaming.StreamHub` instead of per-trajectory batch runs.
    ``mode="fleet"`` drives the fleet through the batch executor
    (``Simplifier.run_many``).  ``mode="store"`` ingests the simplified
    fleet into a fresh segment store and queries it back (always inline).
    ``backend`` and ``workers`` select the :mod:`repro.exec` execution
    backend for the hub and fleet modes (batch and store cases always run
    inline).
    """

    name: str
    profile: str
    n_trajectories: int
    points_per_trajectory: int
    epsilon: float = 40.0
    seed: int = 2017
    mode: str = "batch"
    backend: str = "serial"
    workers: int = 1
    block_size: int = 512
    """Hub ``block_size`` (records per shipped worker batch; ``hub`` mode
    only).  Execution knob: any value measures the same semantic work."""
    store_op: str = "query"
    """What the timed phase of a ``store`` case does (see :data:`STORE_OPS`);
    ignored by the other modes."""
    levels: int = 1
    """Depth of the epsilon ladder of a ``pyramid`` case (the harness
    serves ``epsilon * 2**i`` for ``i`` in ``range(levels)``); ignored by
    the other modes.  ``levels=1`` is the single-resolution reference."""

    def __post_init__(self) -> None:
        if self.mode not in CASE_MODES:
            raise InvalidParameterError(
                f"case mode must be one of {CASE_MODES}, got {self.mode!r}"
            )
        if self.store_op not in STORE_OPS:
            raise InvalidParameterError(
                f"case store_op must be one of {STORE_OPS}, got {self.store_op!r}"
            )
        if self.backend not in CASE_BACKENDS:
            raise InvalidParameterError(
                f"case backend must be one of {CASE_BACKENDS}, got {self.backend!r}"
            )
        if self.workers < 1:
            raise InvalidParameterError(
                f"case workers must be at least 1, got {self.workers}"
            )
        if self.block_size < 1:
            raise InvalidParameterError(
                f"case block_size must be at least 1, got {self.block_size}"
            )
        if self.levels < 1:
            raise InvalidParameterError(
                f"case levels must be at least 1, got {self.levels}"
            )

    @property
    def total_points(self) -> int:
        """Total number of points processed per algorithm for this case."""
        return self.n_trajectories * self.points_per_trajectory


@dataclass(frozen=True, slots=True)
class PerfSuite:
    """A named set of cases and algorithms the harness runs together."""

    name: str
    cases: tuple[PerfCase, ...]
    algorithms: tuple[str, ...]
    repeats: int = 3
    """Timing repeats per (case, algorithm); the best wall time is kept."""


_SMOKE = PerfSuite(
    name="smoke",
    cases=(PerfCase("taxi-300", "taxi", n_trajectories=1, points_per_trajectory=300),),
    algorithms=GATING_ALGORITHMS,
    repeats=1,
)

_QUICK = PerfSuite(
    name="quick",
    cases=(
        PerfCase("taxi-2x2k", "taxi", n_trajectories=2, points_per_trajectory=2_000),
        PerfCase("sercar-2x2k", "sercar", n_trajectories=2, points_per_trajectory=2_000),
        PerfCase("hub-64x500", "taxi", n_trajectories=64, points_per_trajectory=500, mode="hub"),
        PerfCase(
            "hub-64x500-t4",
            "taxi",
            n_trajectories=64,
            points_per_trajectory=500,
            mode="hub",
            backend="thread",
            workers=4,
        ),
        PerfCase(
            "hub-blocks-16x1k-t4",
            IDLE_FLEET_PROFILE,
            n_trajectories=16,
            points_per_trajectory=1_000,
            mode="hub",
            backend="thread",
            workers=4,
            block_size=4_096,
        ),
        PerfCase(
            "hub-64x500-n2",
            "taxi",
            n_trajectories=64,
            points_per_trajectory=500,
            mode="hub",
            backend="node",
            workers=2,
        ),
        PerfCase(
            "store-32x500", "taxi", n_trajectories=32, points_per_trajectory=500, mode="store"
        ),
        PerfCase(
            "store-compact-32x500",
            "taxi",
            n_trajectories=32,
            points_per_trajectory=500,
            mode="store",
            store_op="compact",
        ),
        PerfCase(
            "store-agg-32x500",
            "taxi",
            n_trajectories=32,
            points_per_trajectory=500,
            mode="store",
            store_op="aggregate",
        ),
        PerfCase(
            "pyramid-16x500-k4",
            "taxi",
            n_trajectories=16,
            points_per_trajectory=500,
            mode="pyramid",
            levels=4,
        ),
    ),
    algorithms=GATING_ALGORITHMS + ("fbqs",),
    repeats=3,
)

_HUB = PerfSuite(
    name="hub",
    cases=(
        PerfCase("hub-256x400", "taxi", n_trajectories=256, points_per_trajectory=400, mode="hub"),
        PerfCase(
            "hub-256x400-t8",
            "taxi",
            n_trajectories=256,
            points_per_trajectory=400,
            mode="hub",
            backend="thread",
            workers=8,
        ),
        PerfCase(
            "hub-256x400-p4",
            "taxi",
            n_trajectories=256,
            points_per_trajectory=400,
            mode="hub",
            backend="process",
            workers=4,
        ),
        PerfCase(
            "hub-256x400-n4",
            "taxi",
            n_trajectories=256,
            points_per_trajectory=400,
            mode="hub",
            backend="node",
            workers=4,
        ),
        PerfCase(
            "hub-1024x100", "sercar", n_trajectories=1024, points_per_trajectory=100, mode="hub"
        ),
    ),
    algorithms=("operb", "operb-a", "fbqs", "dead-reckoning"),
    repeats=3,
)

_FLEET = PerfSuite(
    name="fleet",
    cases=(
        PerfCase("fleet-16x2k", "taxi", n_trajectories=16, points_per_trajectory=2_000, mode="fleet"),
        PerfCase(
            "fleet-16x2k-t4",
            "taxi",
            n_trajectories=16,
            points_per_trajectory=2_000,
            mode="fleet",
            backend="thread",
            workers=4,
        ),
        PerfCase(
            "fleet-16x2k-p4",
            "taxi",
            n_trajectories=16,
            points_per_trajectory=2_000,
            mode="fleet",
            backend="process",
            workers=4,
        ),
    ),
    algorithms=("operb", "operb-a"),
    repeats=3,
)

_FULL = PerfSuite(
    name="full",
    cases=(
        PerfCase("taxi-4x5k", "taxi", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("truck-4x5k", "truck", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("sercar-4x5k", "sercar", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("geolife-4x5k", "geolife", n_trajectories=4, points_per_trajectory=5_000),
        PerfCase("hub-512x400", "taxi", n_trajectories=512, points_per_trajectory=400, mode="hub"),
        PerfCase(
            "hub-512x400-t8",
            "taxi",
            n_trajectories=512,
            points_per_trajectory=400,
            mode="hub",
            backend="thread",
            workers=8,
        ),
        PerfCase(
            "fleet-8x5k-p4",
            "taxi",
            n_trajectories=8,
            points_per_trajectory=5_000,
            mode="fleet",
            backend="process",
            workers=4,
        ),
    ),
    algorithms=GATING_ALGORITHMS + ("fbqs", "bqs", "dp-sed", "opw-tr"),
    repeats=3,
)

_BLOCKS = PerfSuite(
    name="blocks",
    cases=(
        PerfCase(
            "blocks-16x2k",
            IDLE_FLEET_PROFILE,
            n_trajectories=16,
            points_per_trajectory=2_000,
            mode="hub",
            block_size=4_096,
        ),
        PerfCase(
            "blocks-16x2k-t4",
            IDLE_FLEET_PROFILE,
            n_trajectories=16,
            points_per_trajectory=2_000,
            mode="hub",
            backend="thread",
            workers=4,
            block_size=4_096,
        ),
        PerfCase(
            "blocks-16x2k-p4",
            IDLE_FLEET_PROFILE,
            n_trajectories=16,
            points_per_trajectory=2_000,
            mode="hub",
            backend="process",
            workers=4,
            block_size=4_096,
        ),
        PerfCase(
            "blocks-16x2k-n4",
            IDLE_FLEET_PROFILE,
            n_trajectories=16,
            points_per_trajectory=2_000,
            mode="hub",
            backend="node",
            workers=4,
            block_size=4_096,
        ),
    ),
    algorithms=("operb", "operb-a", "dead-reckoning"),
    repeats=3,
)

_STORE = PerfSuite(
    name="store",
    cases=(
        PerfCase(
            "store-64x500", "taxi", n_trajectories=64, points_per_trajectory=500, mode="store"
        ),
        PerfCase(
            "store-128x200",
            "sercar",
            n_trajectories=128,
            points_per_trajectory=200,
            mode="store",
        ),
        PerfCase(
            "store-16x2k", "truck", n_trajectories=16, points_per_trajectory=2_000, mode="store"
        ),
        PerfCase(
            "store-compact-64x500",
            "taxi",
            n_trajectories=64,
            points_per_trajectory=500,
            mode="store",
            store_op="compact",
        ),
        PerfCase(
            "store-agg-64x500",
            "taxi",
            n_trajectories=64,
            points_per_trajectory=500,
            mode="store",
            store_op="aggregate",
        ),
    ),
    algorithms=("operb", "operb-a"),
    repeats=3,
)

_PYRAMID = PerfSuite(
    name="pyramid",
    cases=(
        # The k=1 cells are the single-resolution reference: the claim the
        # suite exists to check is k=4 resolutions for well under 4x (and
        # in practice under 2x) the k=1 cost, because coarse levels re-ingest
        # O(segments) endpoints, not O(points).
        PerfCase(
            "pyramid-32x500-k1",
            "taxi",
            n_trajectories=32,
            points_per_trajectory=500,
            mode="pyramid",
            levels=1,
        ),
        PerfCase(
            "pyramid-32x500-k4",
            "taxi",
            n_trajectories=32,
            points_per_trajectory=500,
            mode="pyramid",
            levels=4,
        ),
        PerfCase(
            "pyramid-32x500-k4-t4",
            "taxi",
            n_trajectories=32,
            points_per_trajectory=500,
            mode="pyramid",
            levels=4,
            backend="thread",
            workers=4,
        ),
    ),
    algorithms=("operb", "operb-a", "dp-sed"),
    repeats=3,
)

SUITES: dict[str, PerfSuite] = {
    suite.name: suite
    for suite in (_SMOKE, _QUICK, _HUB, _FLEET, _FULL, _BLOCKS, _STORE, _PYRAMID)
}
"""The declared suites, by name."""


def get_suite(name: str) -> PerfSuite:
    """Look up a declared suite by name."""
    try:
        return SUITES[name.lower()]
    except KeyError:
        raise InvalidParameterError(
            f"unknown perf suite {name!r}; available: {', '.join(sorted(SUITES))}"
        ) from None


_IDLE_MOVING_POINTS = 50
_IDLE_DWELL_POINTS = 950
_IDLE_SPEED = 9.0
_IDLE_NOISE = 1.0
_IDLE_JITTER = 0.5


def build_idle_fleet(case: PerfCase) -> list[Trajectory]:
    """Synthesise the (seeded, deterministic) idle-heavy fleet of one case."""
    fleet: list[Trajectory] = []
    for index in range(case.n_trajectories):
        rng = np.random.default_rng((case.seed, index))
        n = case.points_per_trajectory
        xs = np.empty(n)
        ys = np.empty(n)
        x = y = 0.0
        produced = 0
        cycle = 0
        while produced < n:
            heading = rng.uniform(0.0, 2.0 * math.pi)
            for _ in range(min(_IDLE_MOVING_POINTS, n - produced)):
                x += _IDLE_SPEED * math.cos(heading) + rng.normal(0.0, _IDLE_NOISE)
                y += _IDLE_SPEED * math.sin(heading) + rng.normal(0.0, _IDLE_NOISE)
                xs[produced] = x
                ys[produced] = y
                produced += 1
            exact = cycle % 2 == 0
            for _ in range(min(_IDLE_DWELL_POINTS, n - produced)):
                if exact:
                    xs[produced] = x
                    ys[produced] = y
                else:
                    xs[produced] = x + rng.normal(0.0, _IDLE_JITTER)
                    ys[produced] = y + rng.normal(0.0, _IDLE_JITTER)
                produced += 1
            cycle += 1
        fleet.append(
            Trajectory(xs, ys, np.arange(n, dtype=float), trajectory_id=f"idle-{index:04d}")
        )
    return fleet


def build_fleet(case: PerfCase) -> list[Trajectory]:
    """Synthesise the (seeded, deterministic) fleet of one case."""
    if case.profile == IDLE_FLEET_PROFILE:
        return build_idle_fleet(case)
    return generate_dataset(
        get_profile(case.profile),
        n_trajectories=case.n_trajectories,
        points_per_trajectory=case.points_per_trajectory,
        seed=case.seed,
    )


def interleave_fleet(fleet: list[Trajectory]) -> list[tuple[str, Point]]:
    """Round-robin interleave a fleet into ``(device_id, point)`` records.

    Device ``i`` of the fleet is named ``dev-{i:04d}``; record order models
    concurrent devices reporting at the same cadence (one fix per device per
    round), which is the arrival pattern a stream hub must absorb.
    """
    streams = [(f"dev-{i:04d}", iter(trajectory)) for i, trajectory in enumerate(fleet)]
    records: list[tuple[str, Point]] = []
    while streams:
        still_alive: list[tuple[str, object]] = []
        for device_id, stream in streams:
            try:
                records.append((device_id, next(stream)))
            except StopIteration:
                continue
            still_alive.append((device_id, stream))
        streams = still_alive
    return records


def build_device_log(
    profile: str = "taxi",
    n_devices: int = 64,
    points_per_device: int = 200,
    *,
    seed: int = 2017,
) -> list[tuple[str, Point]]:
    """Seeded multi-device point log: the hub's canonical synthetic traffic.

    This is the single generator behind the ``hub`` perf cases, the hub test
    fixture and ``repro-traj serve-replay --synthetic`` — all three replay
    exactly this traffic shape, so numbers and behaviours line up.
    """
    case = PerfCase(
        name="device-log",
        profile=profile,
        n_trajectories=n_devices,
        points_per_trajectory=points_per_device,
        seed=seed,
        mode="hub",
    )
    return interleave_fleet(build_fleet(case))
