"""The performance harness: run a declared suite, emit ``BENCH_results.json``.

The harness drives every measurement through the PR-1 unified API
(:class:`repro.api.Simplifier`), so what is timed is exactly what users and
the experiment layer execute.  Per ``(case, algorithm)`` pair it records the
best wall time over ``suite.repeats`` runs, the derived throughput in
points per second, and the compression ratio of the produced
representations; the report carries machine and commit metadata so two JSON
files can be compared meaningfully by :mod:`repro.perf.compare`.

Cross-machine comparability: absolute throughput is machine-bound, so the
report also stores a *calibration* throughput — a fixed scalar-Python
geometry workload timed on the same host.  ``compare`` rescales baselines by
the ratio of the two calibrations, which removes most of the machine
difference and lets CI gate against a committed baseline with a modest
threshold.
"""

from __future__ import annotations

import json
import math
import os
import platform
import subprocess
import time
from dataclasses import asdict, dataclass, field, replace
from pathlib import Path
from typing import Callable, Sequence

import numpy as np

from .._version import __version__
from ..api.session import Simplifier
from ..core.config import get_kernel_backend
from ..geometry.kernels import ped_point_to_chord
from ..geometry.point import Point
from ..metrics.compression import fleet_compression_ratio
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from ..api.descriptors import get_descriptor
from .workloads import PerfCase, PerfSuite, build_fleet, get_suite, interleave_fleet

__all__ = [
    "Measurement",
    "PerfReport",
    "calibration_points_per_second",
    "machine_metadata",
    "run_suite",
    "load_report",
    "write_report",
]

REPORT_FORMAT = 1
"""Version stamp of the JSON layout, bumped on incompatible changes."""

_CALIBRATION_POINTS = 20_000


@dataclass(frozen=True, slots=True)
class Measurement:
    """One timed ``(case, algorithm)`` cell of a suite run."""

    case: str
    algorithm: str
    epsilon: float
    points: int
    trajectories: int
    repeats: int
    wall_seconds: float
    points_per_second: float
    segments: int
    compression_ratio: float
    mode: str = "batch"
    """Execution mode of the case: per-trajectory ``batch``, multi-device
    ``hub`` ingest, or ``fleet`` executor fan-out (defaulted so pre-hub
    reports keep loading)."""
    backend: str = "serial"
    """Execution backend the cell ran on (``serial``/``thread``/``process``;
    defaulted so pre-backend reports keep loading)."""
    workers: int = 1
    """Worker count of the execution backend."""
    block_size: int = 512
    """Hub ingest block size the cell ran with (``hub`` mode; defaulted so
    pre-block reports keep loading)."""
    scan_fraction: float = 1.0
    """Fraction of store partitions the query phase actually read
    (``store`` mode; zone-map pruning effectiveness).  1.0 — read
    everything — for the other modes and for pre-store reports."""
    levels: int = 1
    """Depth of the served epsilon ladder (``pyramid`` mode; 1 for the
    other modes and for pre-pyramid reports)."""
    level_compression: list[float] | None = None
    """Per-level compression ratio (segments at that level over input
    points), finest first (``pyramid`` mode; None — defaulted so
    pre-pyramid reports keep loading — for the other modes)."""
    bytes_shipped: int = 0
    """Wire-frame bytes the hub shipped to its shard workers during the
    best repeat (``hub`` mode on the process/node backends; 0 elsewhere and
    for pre-wire reports)."""
    frames_per_second: float = 0.0
    """Wire frames the shard workers decoded per wall-clock second during
    the best repeat (``hub`` mode on the process/node backends; 0.0
    elsewhere and for pre-wire reports)."""

    @property
    def key(self) -> str:
        """Stable identity used when diffing two reports.

        Concurrent-backend cells carry their backend in the key, so a run
        overridden with ``--backend``/``--workers`` is never silently gated
        against a baseline measured on a different backend — mismatched
        cells show up as added/missing instead of bogus regressions.
        Serial cells keep the historical ``case:algorithm`` form, so old
        baselines stay comparable.
        """
        if self.backend == "serial" and self.workers == 1:
            return f"{self.case}:{self.algorithm}"
        return f"{self.case}:{self.algorithm}@{self.backend}x{self.workers}"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for JSON serialisation."""
        return asdict(self)


@dataclass(slots=True)
class PerfReport:
    """A full suite run: measurements plus machine/commit metadata."""

    suite: str
    results: list[Measurement] = field(default_factory=list)
    meta: dict[str, object] = field(default_factory=dict)

    def by_key(self) -> dict[str, Measurement]:
        """Mapping ``"case:algorithm" -> measurement``."""
        return {measurement.key: measurement for measurement in self.results}

    def algorithms(self) -> list[str]:
        """Sorted distinct algorithm names present in the results."""
        return sorted({measurement.algorithm for measurement in self.results})

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view for JSON serialisation."""
        return {
            "format": REPORT_FORMAT,
            "suite": self.suite,
            "meta": self.meta,
            "results": [measurement.as_dict() for measurement in self.results],
        }

    def to_json(self) -> str:
        """Serialise the report (stable key order, human-diffable)."""
        return json.dumps(self.as_dict(), indent=2, sort_keys=True) + "\n"

    @classmethod
    def from_dict(cls, payload: dict) -> "PerfReport":
        """Rebuild a report from :meth:`as_dict` output."""
        results = [Measurement(**entry) for entry in payload.get("results", [])]
        return cls(
            suite=str(payload.get("suite", "")),
            results=results,
            meta=dict(payload.get("meta", {})),
        )

    def to_text(self) -> str:
        """Fixed-width summary table of the measurements."""
        header = (
            f"{'case':<16} {'algorithm':<10} {'backend':<10} {'points':>8} "
            f"{'wall s':>9} {'points/s':>12} {'ratio':>7}"
        )
        lines = [header, "-" * len(header)]
        for measurement in self.results:
            backend = f"{measurement.backend}x{measurement.workers}"
            lines.append(
                f"{measurement.case:<16} {measurement.algorithm:<10} "
                f"{backend:<10} "
                f"{measurement.points:>8} {measurement.wall_seconds:>9.4f} "
                f"{measurement.points_per_second:>12.0f} "
                f"{measurement.compression_ratio:>7.4f}"
            )
        return "\n".join(lines)


def calibration_points_per_second(n_points: int = _CALIBRATION_POINTS) -> float:
    """Throughput of a fixed scalar-Python PED workload on this host.

    The workload (a per-point loop over the scalar chord kernel) is
    deliberately backend-independent and allocation-free, so its throughput
    tracks the host's single-core Python speed — the quantity the real
    measurements are bound by.  Used to normalise throughputs across
    machines in ``compare``.
    """
    xs = np.linspace(0.0, 1000.0, n_points)
    ys = np.sin(xs * 0.01) * 100.0
    started = time.perf_counter()
    acc = 0.0
    for i in range(n_points):
        acc += ped_point_to_chord(float(xs[i]), float(ys[i]), 0.0, 0.0, 1000.0, 10.0)
    elapsed = time.perf_counter() - started
    if not math.isfinite(acc):  # pragma: no cover - numerical guard only
        raise ArithmeticError("calibration workload produced non-finite output")
    return n_points / elapsed if elapsed > 0.0 else float("inf")


def _git_commit() -> str | None:
    """Best-effort commit hash of the working tree (None outside git)."""
    try:
        output = subprocess.run(
            ["git", "rev-parse", "HEAD"],
            cwd=Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=10,
        )
    except (OSError, subprocess.SubprocessError):
        return None
    if output.returncode != 0:
        return None
    return output.stdout.strip() or None


def machine_metadata(*, calibrate: bool = True) -> dict[str, object]:
    """Machine, toolchain and commit metadata stamped into every report."""
    meta: dict[str, object] = {
        "platform": platform.platform(),
        "machine": platform.machine(),
        "python": platform.python_version(),
        "numpy": np.__version__,
        "repro_version": __version__,
        "cpu_count": os.cpu_count(),
        "kernel_backend": get_kernel_backend(),
        "commit": _git_commit(),
        "created_unix": time.time(),
    }
    if calibrate:
        meta["calibration_pps"] = calibration_points_per_second()
    return meta


def _time_fleet(
    session: Simplifier, fleet: Sequence[Trajectory], repeats: int
) -> tuple[float, list[PiecewiseRepresentation]]:
    """Best wall time over ``repeats`` runs and the last run's outputs."""
    best = math.inf
    representations: list[PiecewiseRepresentation] = []
    for _ in range(max(1, repeats)):
        representations = []
        started = time.perf_counter()
        for trajectory in fleet:
            representations.append(session.run(trajectory))
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
    return best, representations


_HUB_SHARDS = 8
"""Shard count the hub-mode measurements run with."""


def _time_hub(
    algorithm: str,
    case: PerfCase,
    records: Sequence[tuple[str, Point]],
    repeats: int,
) -> tuple[float, int, str, int, int, float]:
    """Best wall time over ``repeats`` hub replays, the segment count, the
    backend/worker-count the hub *actually* ran with, and the transport
    counters of the best repeat (bytes shipped, frames decoded per second).

    Each repeat drives a fresh :class:`repro.streaming.StreamHub` on the
    case's execution backend (devices pre-registered, so registration cost
    is not part of the measurement) over the full interleaved log, then
    flushes every stream — ``finish_all`` synchronises the shard workers,
    so concurrent backends are timed to full drain.
    """
    from ..streaming.hub import StreamHub

    device_ids = sorted({device_id for device_id, _ in records})
    best = math.inf
    segments = 0
    backend = case.backend
    workers = case.workers
    bytes_shipped = 0
    frames_per_second = 0.0
    for _ in range(max(1, repeats)):
        hub = StreamHub(
            algorithm=algorithm,
            epsilon=case.epsilon,
            shards=_HUB_SHARDS,
            on_error="raise",
            backend=case.backend,
            workers=case.workers,
            block_size=case.block_size,
        )
        try:
            backend, workers = hub.backend, hub.n_workers
            for device_id in device_ids:
                hub.register_device(device_id)
            started = time.perf_counter()
            hub.push_many(records)
            hub.finish_all()
            elapsed = time.perf_counter() - started
            stats = hub.stats()
            segments = stats.segments_emitted
            if elapsed < best:
                best = elapsed
                bytes_shipped = stats.bytes_shipped
                frames_per_second = (
                    stats.frames_decoded / elapsed if elapsed > 0.0 else 0.0
                )
        finally:
            hub.close()
    return best, segments, backend, workers, bytes_shipped, frames_per_second


def _time_pyramid(
    algorithm: str,
    case: PerfCase,
    records: Sequence[tuple[str, Point]],
    repeats: int,
) -> tuple[float, int, list[int], str, int]:
    """Best wall time over ``repeats`` pyramid replays.

    Identical to :func:`_time_hub` except the hub serves the case's whole
    epsilon ladder (``epsilon * 2**i`` per level) in the same pass; the
    returned per-level segment counts (finest first) feed the report's
    ``level_compression`` column.  ``levels=1`` measures the degenerate
    single-resolution pyramid — the reference cell the k>1 cells are
    compared against.
    """
    from ..streaming.hub import StreamHub

    ladder = tuple(case.epsilon * (2.0**level) for level in range(case.levels))
    device_ids = sorted({device_id for device_id, _ in records})
    best = math.inf
    by_level: list[int] = []
    backend = case.backend
    workers = case.workers
    for _ in range(max(1, repeats)):
        hub = StreamHub(
            algorithm=algorithm,
            epsilons=ladder,
            shards=_HUB_SHARDS,
            on_error="raise",
            backend=case.backend,
            workers=case.workers,
            block_size=case.block_size,
        )
        try:
            backend, workers = hub.backend, hub.n_workers
            for device_id in device_ids:
                hub.register_device(device_id)
            started = time.perf_counter()
            hub.push_many(records)
            hub.finish_all()
            elapsed = time.perf_counter() - started
            best = min(best, elapsed)
            stats = hub.stats()
            by_level = (
                stats.segments_by_level
                if stats.segments_by_level is not None
                else [stats.segments_emitted]
            )
        finally:
            hub.close()
    return best, by_level[0], by_level, backend, workers


def _time_fleet_executor(
    algorithm: str,
    case: PerfCase,
    fleet: Sequence[Trajectory],
    repeats: int,
) -> tuple[float, list[PiecewiseRepresentation], str, int]:
    """Best wall time over ``repeats`` ``run_many`` fan-outs, plus the
    backend/worker-count the executor *actually* used."""
    session = Simplifier(algorithm, case.epsilon)
    best = math.inf
    representations: list[PiecewiseRepresentation] = []
    backend = case.backend
    workers = case.workers
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = session.run_many(
            fleet,
            workers=case.workers,
            backend=case.backend,
            on_error="raise",
        )
        elapsed = time.perf_counter() - started
        best = min(best, elapsed)
        representations = result.successful()
        backend, workers = result.backend, result.workers
    return best, representations, backend, workers


_STORE_QUERY_SPAN = 0.25
"""Width of the per-device query window, as a fraction of the fleet's time
range (centred), in the store-mode measurements."""

_STORE_BUCKETS = 8
"""Time buckets the fleet's time range is partitioned into per device."""

_STORE_COMPACT_BATCH = 16
"""Segments per append batch in ``store_op="compact"`` cases — small on
purpose, so every partition accumulates many chunks for compaction to
merge."""


def _time_store(
    algorithm: str,
    case: PerfCase,
    fleet: Sequence[Trajectory],
    repeats: int,
) -> tuple[float, int, float, float]:
    """Best wall time over ``repeats`` store rounds for one store case.

    The fleet is simplified once, untimed — store cases measure the store,
    not the simplifier.  What each timed round does depends on the case's
    ``store_op``:

    ``query``
        Build a fresh store, append every device's segments (zone maps
        maintained at write time) and run one device/time-window query per
        device over the centre of the fleet's time range.
    ``compact``
        Build the store from many small append batches (so every partition
        holds many chunks), compact it to single-chunk form, then run the
        same per-device queries against the compacted store.
    ``aggregate``
        Build the store untimed, then time window aggregates whose windows
        fully cover every partition's time range — the rounds the store
        answers from the zone-map sidecars alone, so the reported scan
        fraction must be 0.

    Returns ``(wall, stored segments, compression ratio, scan fraction)``
    where the scan fraction is partitions-read over partitions-considered
    across the read phase — the pruning/pushdown-effectiveness number the
    suite gates on.
    """
    import tempfile

    from ..store import open_store

    session = Simplifier(algorithm, case.epsilon)
    representations = [session.run(trajectory) for trajectory in fleet]
    device_ids = [f"dev-{i:04d}" for i in range(len(representations))]
    spans = [
        (record.start.t, record.end.t)
        for representation in representations
        for record in representation.segments
    ]
    t_min = min(min(span) for span in spans)
    t_max = max(max(span) for span in spans)
    span = t_max - t_min
    time_bucket = span / _STORE_BUCKETS if span > 0.0 else 1.0
    q_low = t_min + span * (0.5 - _STORE_QUERY_SPAN / 2.0)
    q_high = t_min + span * (0.5 + _STORE_QUERY_SPAN / 2.0)
    # The covering aggregate window extends one unit past both ends so the
    # grid's trailing window (starting exactly at the range's upper edge)
    # intersects no partition and nothing gets demoted to a scan.
    a_low = t_min - 1.0
    a_high = t_max + 1.0
    a_width = a_high - a_low
    best = math.inf
    stored = 0
    scan_fraction = 1.0
    for _ in range(max(1, repeats)):
        with tempfile.TemporaryDirectory() as tmp:
            root = Path(tmp) / "segments"
            scanned = considered = 0
            if case.store_op == "aggregate":
                store = open_store(root, time_bucket=time_bucket)
                for device_id, representation in zip(device_ids, representations):
                    store.append(
                        device_id, representation.segments, epsilon=case.epsilon
                    )
                stored = store.n_segments
                started = time.perf_counter()
                outcome = store.window_aggregates(
                    width=a_width, window=(a_low, a_high)
                )
                scanned += outcome.partitions_scanned
                considered += outcome.partitions_total
                for device_id in device_ids:
                    outcome = store.window_aggregates(
                        width=a_width, device=device_id, window=(a_low, a_high)
                    )
                    scanned += outcome.partitions_scanned
                    considered += outcome.partitions_total
                elapsed = time.perf_counter() - started
            elif case.store_op == "compact":
                started = time.perf_counter()
                store = open_store(root, time_bucket=time_bucket)
                for device_id, representation in zip(device_ids, representations):
                    segments = representation.segments
                    for low in range(0, len(segments), _STORE_COMPACT_BATCH):
                        store.append(
                            device_id,
                            segments[low : low + _STORE_COMPACT_BATCH],
                            epsilon=case.epsilon,
                        )
                store.compact()
                stored = store.n_segments
                for device_id in device_ids:
                    result = store.query(device=device_id, window=(q_low, q_high))
                    scanned += result.partitions_scanned
                    considered += result.partitions_total
                elapsed = time.perf_counter() - started
            else:
                started = time.perf_counter()
                store = open_store(root, time_bucket=time_bucket)
                for device_id, representation in zip(device_ids, representations):
                    store.append(
                        device_id, representation.segments, epsilon=case.epsilon
                    )
                stored = store.n_segments
                for device_id in device_ids:
                    result = store.query(device=device_id, window=(q_low, q_high))
                    scanned += result.partitions_scanned
                    considered += result.partitions_total
                elapsed = time.perf_counter() - started
            store.close()
        best = min(best, elapsed)
        scan_fraction = scanned / considered if considered else 1.0
    ratio = fleet_compression_ratio(representations)
    return best, stored, ratio, scan_fraction


def run_suite(
    suite: PerfSuite | str,
    *,
    repeats: int | None = None,
    progress: Callable[[str], None] | None = None,
    backend: str | None = None,
    workers: int | None = None,
    block_size: int | None = None,
) -> PerfReport:
    """Run a declared suite and return the populated report.

    Parameters
    ----------
    suite:
        A :class:`~repro.perf.workloads.PerfSuite` or the name of a declared
        one (``smoke``, ``quick``, ``hub``, ``fleet``, ``blocks``,
        ``pyramid``, ``full``).
    repeats:
        Override the suite's timing repeats (best-of semantics).
    progress:
        Optional sink for one-line progress messages (e.g. ``print``).
    backend, workers:
        Override the execution backend / worker count of every ``hub``,
        ``fleet`` and ``pyramid`` case (``batch`` cases always run inline).
        Handy for ad-hoc scaling experiments; declared suites stay the
        reproducible record.
    block_size:
        Override the hub ingest block size of every ``hub``/``pyramid``
        case.
    """
    if isinstance(suite, str):
        suite = get_suite(suite)
    effective_repeats = suite.repeats if repeats is None else max(1, repeats)
    report = PerfReport(suite=suite.name, meta=machine_metadata())
    for case in suite.cases:
        if case.mode in ("hub", "fleet", "pyramid") and (
            backend is not None or workers is not None
        ):
            case = replace(
                case,
                backend=backend if backend is not None else case.backend,
                workers=workers if workers is not None else case.workers,
            )
        if case.mode in ("hub", "pyramid") and block_size is not None:
            case = replace(case, block_size=block_size)
        fleet = build_fleet(case)
        total_points = sum(len(trajectory) for trajectory in fleet)
        records = interleave_fleet(fleet) if case.mode in ("hub", "pyramid") else None
        for algorithm in suite.algorithms:
            # ``backend``/``workers`` record what actually ran — a serial
            # cell requested with workers=4 reports serial/1, a hub case
            # with more workers than shards reports the clamped count.
            scan_fraction = 1.0
            level_compression: list[float] | None = None
            bytes_shipped = 0
            frames_per_second = 0.0
            if case.mode == "pyramid" and not get_descriptor(algorithm).pyramid_capable:
                # A mixed suite (e.g. ``quick``) may carry algorithms that
                # cannot serve a pyramid; skipping beats crashing, and the
                # absent cell shows up in ``compare`` as missing, not as a
                # regression.
                if progress is not None:
                    progress(f"{case.name}:{algorithm} skipped (not pyramid-capable)")
                continue
            if case.mode == "pyramid":
                wall, segments, by_level, ran_backend, ran_workers = _time_pyramid(
                    algorithm, case, records, effective_repeats
                )
                ratio = segments / total_points if total_points else 0.0
                level_compression = [
                    count / total_points if total_points else 0.0 for count in by_level
                ]
            elif case.mode == "hub":
                (
                    wall,
                    segments,
                    ran_backend,
                    ran_workers,
                    bytes_shipped,
                    frames_per_second,
                ) = _time_hub(algorithm, case, records, effective_repeats)
                ratio = segments / total_points if total_points else 0.0
            elif case.mode == "store":
                wall, segments, ratio, scan_fraction = _time_store(
                    algorithm, case, fleet, effective_repeats
                )
                ran_backend, ran_workers = "serial", 1
            elif case.mode == "fleet":
                wall, representations, ran_backend, ran_workers = _time_fleet_executor(
                    algorithm, case, fleet, effective_repeats
                )
                segments = sum(rep.n_segments for rep in representations)
                ratio = fleet_compression_ratio(representations)
            else:
                session = Simplifier(algorithm, case.epsilon)
                wall, representations = _time_fleet(session, fleet, effective_repeats)
                segments = sum(rep.n_segments for rep in representations)
                ratio = fleet_compression_ratio(representations)
                ran_backend, ran_workers = "serial", 1
            measurement = Measurement(
                case=case.name,
                algorithm=algorithm,
                epsilon=case.epsilon,
                points=total_points,
                trajectories=len(fleet),
                repeats=effective_repeats,
                wall_seconds=wall,
                points_per_second=total_points / wall if wall > 0.0 else float("inf"),
                segments=segments,
                compression_ratio=ratio,
                mode=case.mode,
                backend=ran_backend,
                workers=ran_workers,
                block_size=case.block_size,
                scan_fraction=scan_fraction,
                levels=case.levels,
                level_compression=level_compression,
                bytes_shipped=bytes_shipped,
                frames_per_second=frames_per_second,
            )
            report.results.append(measurement)
            if progress is not None:
                progress(
                    f"{measurement.case}:{measurement.algorithm} "
                    f"[{measurement.backend}x{measurement.workers}] "
                    f"{measurement.points_per_second:,.0f} points/s "
                    f"(wall {measurement.wall_seconds:.4f}s, "
                    f"ratio {measurement.compression_ratio:.4f})"
                )
    return report


def write_report(report: PerfReport, path: str | Path) -> Path:
    """Serialise ``report`` to ``path`` (conventionally ``BENCH_results.json``)."""
    path = Path(path)
    path.write_text(report.to_json())
    return path


def load_report(path: str | Path) -> PerfReport:
    """Load a report previously written by :func:`write_report`."""
    payload = json.loads(Path(path).read_text())
    return PerfReport.from_dict(payload)
