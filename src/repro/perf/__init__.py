"""Performance harness: declared workload suites, measurement, regression gates.

The subsystem has three parts:

* :mod:`repro.perf.workloads` — named, seeded suite declarations
  (``smoke`` / ``quick`` / ``hub`` / ``full``), including multi-device
  ``hub``-mode ingest cases;
* :mod:`repro.perf.harness` — runs a suite through the unified
  :class:`repro.api.Simplifier` API and serialises wall time, points/sec and
  compression ratio per algorithm into ``BENCH_results.json`` with machine
  and commit metadata;
* :mod:`repro.perf.compare` — diffs two reports and flags throughput
  regressions past a threshold, with cross-machine calibration.

Entry points: ``repro-traj perf`` on the command line, or::

    from repro.perf import run_suite, write_report
    report = run_suite("quick")
    write_report(report, "BENCH_results.json")
"""

from .compare import ComparisonResult, ComparisonRow, compare_reports
from .harness import (
    Measurement,
    PerfReport,
    calibration_points_per_second,
    load_report,
    machine_metadata,
    run_suite,
    write_report,
)
from .workloads import (
    CASE_BACKENDS,
    CASE_MODES,
    GATING_ALGORITHMS,
    SUITES,
    PerfCase,
    PerfSuite,
    build_device_log,
    build_fleet,
    get_suite,
    interleave_fleet,
)

__all__ = [
    "CASE_BACKENDS",
    "CASE_MODES",
    "ComparisonResult",
    "ComparisonRow",
    "GATING_ALGORITHMS",
    "Measurement",
    "PerfCase",
    "PerfReport",
    "PerfSuite",
    "SUITES",
    "build_device_log",
    "build_fleet",
    "interleave_fleet",
    "calibration_points_per_second",
    "compare_reports",
    "get_suite",
    "load_report",
    "machine_metadata",
    "run_suite",
    "write_report",
]
