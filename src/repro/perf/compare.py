"""Regression gating: diff two harness reports, fail past a threshold.

:func:`compare_reports` matches measurements by their ``case:algorithm`` key
and flags every cell whose throughput dropped by more than ``threshold``×
relative to the baseline.  When both reports carry a calibration throughput
(see :func:`repro.perf.harness.calibration_points_per_second`), baseline
numbers are rescaled by the calibration ratio first, which removes most of
the machine-speed difference between the host that produced the committed
baseline and the host running the gate (e.g. a CI runner).

The CLI (``repro-traj perf --compare``) turns a failed comparison into a
non-zero exit code, which is what the CI pipeline gates on.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError
from .harness import PerfReport

__all__ = ["ComparisonRow", "ComparisonResult", "compare_reports"]


@dataclass(frozen=True, slots=True)
class ComparisonRow:
    """One matched ``case:algorithm`` cell of a report diff."""

    key: str
    baseline_pps: float
    current_pps: float
    slowdown: float
    """Normalised baseline/current throughput ratio: > 1 means slower now."""
    regressed: bool


@dataclass(slots=True)
class ComparisonResult:
    """Outcome of diffing a current report against a baseline."""

    threshold: float
    calibration_factor: float
    """Multiplier applied to baseline throughputs (1.0 = no calibration)."""
    rows: list[ComparisonRow] = field(default_factory=list)
    missing: list[str] = field(default_factory=list)
    """Keys present in the baseline but absent from the current report."""
    added: list[str] = field(default_factory=list)
    """Keys present in the current report but absent from the baseline."""

    @property
    def regressions(self) -> list[ComparisonRow]:
        """The rows that exceeded the threshold."""
        return [row for row in self.rows if row.regressed]

    @property
    def ok(self) -> bool:
        """True when no compared cell regressed past the threshold."""
        return not self.regressions

    def to_text(self) -> str:
        """Fixed-width diff table plus a one-line verdict."""
        header = (
            f"{'case:algorithm':<24} {'baseline pts/s':>15} {'current pts/s':>15} "
            f"{'slowdown':>9}  verdict"
        )
        lines = [header, "-" * len(header)]
        for row in self.rows:
            verdict = "REGRESSED" if row.regressed else "ok"
            lines.append(
                f"{row.key:<24} {row.baseline_pps:>15,.0f} {row.current_pps:>15,.0f} "
                f"{row.slowdown:>8.2f}x  {verdict}"
            )
        for key in self.missing:
            lines.append(f"{key:<24} (missing from current report)")
        for key in self.added:
            lines.append(f"{key:<24} (new; no baseline)")
        if self.calibration_factor != 1.0:
            lines.append(
                f"baseline rescaled by calibration factor {self.calibration_factor:.3f}"
            )
        count = len(self.regressions)
        lines.append(
            f"{'OK' if self.ok else 'FAIL'}: {count} regression(s) past "
            f"{self.threshold:.2f}x over {len(self.rows)} compared cell(s)"
        )
        return "\n".join(lines)


def _calibration(report: PerfReport) -> float | None:
    value = report.meta.get("calibration_pps")
    if isinstance(value, (int, float)) and value > 0.0:
        return float(value)
    return None


def compare_reports(
    baseline: PerfReport, current: PerfReport, *, threshold: float = 2.0
) -> ComparisonResult:
    """Diff ``current`` against ``baseline``.

    A cell regresses when ``baseline_pps_normalised / current_pps``
    exceeds ``threshold``.  Cells present in only one report never fail the
    comparison; they are listed informationally (a baseline refresh is the
    cure for renamed cases).
    """
    if threshold <= 1.0:
        raise InvalidParameterError(
            f"regression threshold must be > 1, got {threshold!r}"
        )
    baseline_cells = baseline.by_key()
    current_cells = current.by_key()
    if not set(baseline_cells) & set(current_cells):
        raise InvalidParameterError(
            "the two reports share no case:algorithm cells; "
            f"baseline suite {baseline.suite!r}, current suite {current.suite!r}"
        )

    baseline_cal = _calibration(baseline)
    current_cal = _calibration(current)
    factor = (
        current_cal / baseline_cal
        if baseline_cal is not None and current_cal is not None
        else 1.0
    )

    result = ComparisonResult(threshold=threshold, calibration_factor=factor)
    for key in sorted(set(baseline_cells) | set(current_cells)):
        if key not in current_cells:
            result.missing.append(key)
            continue
        if key not in baseline_cells:
            result.added.append(key)
            continue
        base_pps = baseline_cells[key].points_per_second * factor
        curr_pps = current_cells[key].points_per_second
        slowdown = base_pps / curr_pps if curr_pps > 0.0 else float("inf")
        result.rows.append(
            ComparisonRow(
                key=key,
                baseline_pps=base_pps,
                current_pps=curr_pps,
                slowdown=slowdown,
                regressed=slowdown > threshold,
            )
        )
    return result
