"""Adapters exposing batch algorithms behind the streaming interface."""

from __future__ import annotations

from ..exceptions import SimplificationError
from ..geometry.point import Point, encode_point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import SegmentRecord
from .descriptors import AlgorithmDescriptor, get_descriptor

__all__ = ["BufferedBatchAdapter"]


class BufferedBatchAdapter:
    """Expose a batch algorithm through the push/finish streaming interface.

    The adapter buffers every pushed point and runs the batch algorithm at
    :meth:`finish`.  It exists so pipelines can swap OPERB for DP (say) and
    measure what the batch requirement costs in latency and memory.

    Keyword arguments are validated against the algorithm's descriptor at
    construction time, so a misconfigured adapter fails before any points
    have been buffered rather than at :meth:`finish`.
    """

    def __init__(
        self, algorithm: str | AlgorithmDescriptor, epsilon: float, **kwargs
    ) -> None:
        self.descriptor = get_descriptor(algorithm)
        self.descriptor.validate_kwargs(kwargs)
        self.name = self.descriptor.name
        self.epsilon = epsilon
        self._kwargs = kwargs
        self._points: list[Point] = []
        self._finished = False

    def push(self, point: Point) -> list[SegmentRecord]:
        """Buffer the point; batch algorithms cannot emit anything early."""
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.name!r} adapter"
            )
        self._points.append(point)
        return []

    def finish(self) -> list[SegmentRecord]:
        """Run the underlying batch algorithm over the buffered stream.

        Raises
        ------
        SimplificationError
            On a second call: the buffered points were already consumed, so
            silently returning ``[]`` would hide a pipeline bug.
        """
        if self._finished:
            raise SimplificationError(
                f"{self.name!r} adapter was already finished; "
                f"open a new stream session to process another trajectory"
            )
        self._finished = True
        trajectory = Trajectory.from_points(self._points, require_monotonic_time=False)
        representation = self.descriptor.batch(trajectory, self.epsilon, **self._kwargs)
        return list(representation.segments)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    @property
    def buffered_points(self) -> int:
        """Number of points currently held in memory (the adapter's cost)."""
        return len(self._points)

    def snapshot(self) -> dict:
        """JSON-serialisable state: the whole buffer (the adapter's cost).

        Unlike the O(1) snapshots of the one-pass algorithms, an adapter
        checkpoint grows linearly with the stream — exactly the memory
        behaviour the paper's algorithms avoid, now visible in checkpoint
        size too.
        """
        return {
            "points": [encode_point(point) for point in self._points],
            "finished": self._finished,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) adapter instance."""
        if self._points or self._finished:
            raise SimplificationError("restore() requires a fresh adapter instance")
        self._points = [Point(*coords) for coords in state["points"]]
        self._finished = bool(state["finished"])
