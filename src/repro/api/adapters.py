"""Adapters exposing batch algorithms behind the streaming interface."""

from __future__ import annotations

from typing import Iterator

import numpy as np

from ..exceptions import SimplificationError
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import SegmentRecord
from ..trajectory.soa import PointBlock
from .descriptors import AlgorithmDescriptor, get_descriptor

__all__ = ["BufferedBatchAdapter"]


class BufferedBatchAdapter:
    """Expose a batch algorithm through the push/finish streaming interface.

    The adapter buffers every pushed point and runs the batch algorithm at
    :meth:`finish`.  It exists so pipelines can swap OPERB for DP (say) and
    measure what the batch requirement costs in latency and memory.

    The buffer is chunked: per-point pushes append :class:`Point` objects,
    :meth:`push_block` appends whole :class:`~repro.trajectory.PointBlock`
    chunks in O(1) — block ingest costs nothing per point, and :meth:`finish`
    concatenates the chunks into coordinate arrays without rebuilding Python
    objects.  Interleaving ``push`` and ``push_block`` preserves arrival
    order.

    Keyword arguments are validated against the algorithm's descriptor at
    construction time, so a misconfigured adapter fails before any points
    have been buffered rather than at :meth:`finish`.
    """

    # Not snapshot state (RPA001): descriptor/name/epsilon/_kwargs are the
    # immutable configuration the restoring side supplies; ``_buffered`` is
    # derived from the chunk lengths and recomputed on restore.
    _SNAPSHOT_EXCLUDE = frozenset({"descriptor", "name", "epsilon", "_kwargs", "_buffered"})

    def __init__(
        self, algorithm: str | AlgorithmDescriptor, epsilon: float, **kwargs
    ) -> None:
        self.descriptor = get_descriptor(algorithm)
        self.descriptor.validate_kwargs(kwargs)
        self.name = self.descriptor.name
        self.epsilon = epsilon
        self._kwargs = kwargs
        self._chunks: list[Point | PointBlock] = []
        self._buffered = 0
        self._finished = False

    def push(self, point: Point) -> list[SegmentRecord]:
        """Buffer the point; batch algorithms cannot emit anything early."""
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.name!r} adapter"
            )
        self._chunks.append(point)
        self._buffered += 1
        return []

    def push_block(self, block: PointBlock) -> list[SegmentRecord]:
        """Buffer a whole block in O(1); nothing can be emitted early."""
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.name!r} adapter"
            )
        if len(block) == 0:
            return []
        self._chunks.append(block)
        self._buffered += len(block)
        return []

    def push_block_steps(
        self, block: PointBlock
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced block ingest: one silent step (pushes never emit)."""
        self.push_block(block)
        if len(block) == 0:
            return iter(())
        return iter(((len(block), []),))

    def push_segment(
        self, segment: SegmentRecord, *, include_start: bool = False
    ) -> list[SegmentRecord]:
        """Re-ingest a finer pyramid level's segment endpoints (buffered).

        Batch algorithms cannot emit anything early, so the endpoints are
        simply buffered like any other points; :meth:`finish` simplifies
        the accumulated coarse polyline in one batch run.
        """
        emitted: list[SegmentRecord] = []
        if include_start:
            emitted.extend(self.push(segment.start))
        emitted.extend(self.push(segment.end))
        return emitted

    def _buffered_arrays(self) -> tuple[np.ndarray, np.ndarray, np.ndarray]:
        """Concatenate the buffered chunks into ``(xs, ys, ts)`` arrays."""
        xs_parts: list[np.ndarray] = []
        ys_parts: list[np.ndarray] = []
        ts_parts: list[np.ndarray] = []
        run: list[Point] = []

        def flush_run() -> None:
            if run:
                xs_parts.append(np.array([p.x for p in run], dtype=float))
                ys_parts.append(np.array([p.y for p in run], dtype=float))
                ts_parts.append(np.array([p.t for p in run], dtype=float))
                run.clear()

        for chunk in self._chunks:
            if isinstance(chunk, PointBlock):
                flush_run()
                xs_parts.append(chunk.xs)
                ys_parts.append(chunk.ys)
                ts_parts.append(chunk.ts)
            else:
                run.append(chunk)
        flush_run()
        if not xs_parts:
            empty = np.array([], dtype=float)
            return empty, empty.copy(), empty.copy()
        return (
            np.concatenate(xs_parts),
            np.concatenate(ys_parts),
            np.concatenate(ts_parts),
        )

    def finish(self) -> list[SegmentRecord]:
        """Run the underlying batch algorithm over the buffered stream.

        Raises
        ------
        SimplificationError
            On a second call: the buffered points were already consumed, so
            silently returning ``[]`` would hide a pipeline bug.
        """
        if self._finished:
            raise SimplificationError(
                f"{self.name!r} adapter was already finished; "
                f"open a new stream session to process another trajectory"
            )
        self._finished = True
        xs, ys, ts = self._buffered_arrays()
        trajectory = Trajectory(xs, ys, ts, require_monotonic_time=False)
        representation = self.descriptor.batch(trajectory, self.epsilon, **self._kwargs)
        return list(representation.segments)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    @property
    def buffered_points(self) -> int:
        """Number of points currently held in memory (the adapter's cost)."""
        return self._buffered

    def snapshot(self) -> dict:
        """JSON-serialisable state: the whole buffer (the adapter's cost).

        Unlike the O(1) snapshots of the one-pass algorithms, an adapter
        checkpoint grows linearly with the stream — exactly the memory
        behaviour the paper's algorithms avoid, now visible in checkpoint
        size too.  The wire form is one ``[x, y, t]`` triple per point,
        identical whether the buffer arrived per point or in blocks.
        """
        points: list[list[float]] = []
        for chunk in self._chunks:
            if isinstance(chunk, PointBlock):
                xs, ys, ts = chunk.xs, chunk.ys, chunk.ts
                points.extend(
                    [float(xs[i]), float(ys[i]), float(ts[i])]
                    for i in range(xs.shape[0])
                )
            else:
                points.append([chunk.x, chunk.y, chunk.t])
        return {"points": points, "finished": self._finished}

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) adapter instance."""
        if self._chunks or self._finished:
            raise SimplificationError("restore() requires a fresh adapter instance")
        coords = state["points"]
        if coords:
            # One columnar chunk: values identical to per-point restoration.
            self._chunks = [
                PointBlock(
                    np.array([c[0] for c in coords], dtype=float),
                    np.array([c[1] for c in coords], dtype=float),
                    np.array([c[2] for c in coords], dtype=float),
                )
            ]
        self._buffered = len(coords)
        self._finished = bool(state["finished"])
