"""Descriptor registrations for every algorithm shipped with the package.

Importing this module (which :mod:`repro.api` does on package import)
populates the unified registry with the paper's algorithms and baselines.
The capability flags encode the paper's taxonomy: the OPERB family and dead
reckoning are genuinely one-pass; FBQS streams but buffers its open window;
everything else is batch-only and must go through a
:class:`repro.api.BufferedBatchAdapter` when used in a pipeline.
"""

from __future__ import annotations

from ..algorithms.bqs import bqs
from ..algorithms.dead_reckoning import DeadReckoningSimplifier, dead_reckoning
from ..algorithms.douglas_peucker import douglas_peucker, douglas_peucker_sed
from ..algorithms.fbqs import FBQSSimplifier, fbqs
from ..algorithms.opw import opw, opw_tr
from ..algorithms.uniform import uniform_sampling
from ..core.config import OperbAConfig, OperbConfig
from ..core.operb import OPERBSimplifier, operb, raw_operb
from ..core.operb_a import OPERBASimplifier, operb_a, raw_operb_a
from .descriptors import register_algorithm

__all__: list[str] = []

OPERB_TUNING_KWARGS = (
    "opt_first_active_threshold",
    "opt_two_sided_deviation",
    "opt_aggressive_rotation",
    "opt_missing_zone_compensation",
    "opt_absorb_trailing_points",
    "max_points_per_segment",
)
"""Per-optimisation overrides accepted by the OPERB streaming factories."""


def _make_operb(epsilon: float, **kwargs) -> OPERBSimplifier:
    return OPERBSimplifier(OperbConfig.optimized(epsilon, **kwargs))


def _make_raw_operb(epsilon: float, **kwargs) -> OPERBSimplifier:
    return OPERBSimplifier(OperbConfig.raw(epsilon, **kwargs))


def _make_operb_a(epsilon: float, **kwargs) -> OPERBASimplifier:
    return OPERBASimplifier(OperbAConfig.optimized(epsilon, **kwargs))


def _make_raw_operb_a(epsilon: float, **kwargs) -> OPERBASimplifier:
    return OPERBASimplifier(OperbAConfig.raw(epsilon, **kwargs))


register_algorithm(
    "dp",
    accepted_kwargs=("use_sed",),
    summary="Douglas-Peucker divide-and-conquer baseline (perpendicular distance)",
)(douglas_peucker)

register_algorithm(
    "dp-sed",
    error_metric="sed",
    summary="TD-TR: Douglas-Peucker with the synchronised Euclidean distance",
)(douglas_peucker_sed)

register_algorithm(
    "opw",
    accepted_kwargs=("use_sed",),
    summary="Normal opening-window algorithm",
)(opw)

register_algorithm(
    "opw-tr",
    error_metric="sed",
    summary="Opening window with the synchronised Euclidean distance",
)(opw_tr)

register_algorithm(
    "bqs",
    summary="Bounded quadrant system with exact window maxima",
)(bqs)

# FBQS is deliberately NOT flagged `pyramid`: it certifies deviation against
# each segment's infinite line, so accepted points may project beyond the
# emitted endpoints and an endpoint-only cascade can exceed the coarse bound.
# The same overhang rules out `opw` and `bqs`; the SED batch algorithms
# (`dp-sed`, `opw-tr`) qualify through the derived `pyramid_capable` instead.
register_algorithm(
    "fbqs",
    streaming_factory=FBQSSimplifier,
    checkpointable=True,
    batched=True,
    streaming_kwargs=(),
    summary="Fast BQS: streaming convex-bound window (buffers the open window)",
)(fbqs)

register_algorithm(
    "uniform",
    error_metric="none",
    accepted_kwargs=("step",),
    summary="Every-nth-point decimation (not error bounded)",
)(uniform_sampling)

register_algorithm(
    "dead-reckoning",
    streaming_factory=DeadReckoningSimplifier,
    checkpointable=True,
    batched=True,
    streaming_kwargs=(),
    one_pass=True,
    error_metric="sed",
    summary="Velocity-prediction dead reckoning (one-pass, O(1) state)",
)(dead_reckoning)

register_algorithm(
    "operb",
    streaming_factory=_make_operb,
    one_pass=True,
    checkpointable=True,
    pyramid=True,
    batched=True,
    accepted_kwargs=("config",),
    streaming_kwargs=OPERB_TUNING_KWARGS,
    summary="OPERB: one-pass error bounded simplification (all optimisations)",
)(operb)

register_algorithm(
    "raw-operb",
    streaming_factory=_make_raw_operb,
    one_pass=True,
    checkpointable=True,
    pyramid=True,
    batched=True,
    accepted_kwargs=(),
    streaming_kwargs=OPERB_TUNING_KWARGS,
    summary="Raw-OPERB: the paper's Figure 7 algorithm without optimisations",
)(raw_operb)

register_algorithm(
    "operb-a",
    streaming_factory=_make_operb_a,
    one_pass=True,
    checkpointable=True,
    pyramid=True,
    batched=True,
    accepted_kwargs=("gamma_max", "config"),
    streaming_kwargs=("gamma_max",),
    summary="OPERB-A: aggressive OPERB with anomalous-segment patching",
)(operb_a)

register_algorithm(
    "raw-operb-a",
    streaming_factory=_make_raw_operb_a,
    one_pass=True,
    checkpointable=True,
    pyramid=True,
    batched=True,
    accepted_kwargs=("gamma_max",),
    streaming_kwargs=("gamma_max",),
    summary="Raw-OPERB-A: unoptimised OPERB with patching enabled",
)(raw_operb_a)
