"""Fleet-scale batch executor with pluggable parallelism and error isolation.

A production deployment compresses millions of trajectories, not one; this
module is the single choke point every fleet workload goes through
(:meth:`repro.api.Simplifier.run_many`, :func:`repro.metrics.evaluate_fleet`,
the experiment harness and the CLI).  It offers:

- pluggable execution through :mod:`repro.exec`: a serial fast path, a
  thread pool, or a process pool (``backend="serial" | "thread" |
  "process" | "auto"``, ``auto`` picking serial for one worker and process
  otherwise).  Algorithms are resolved by name inside each worker, so only
  trajectories and plain options cross process boundaries;
- per-trajectory error isolation: one malformed trajectory yields a
  :class:`FleetError` entry instead of sinking the whole fleet run
  (``on_error="collect"``), or a :class:`FleetExecutionError` summarising
  every failure (``on_error="raise"``, the default).

Every backend produces bit-identical representations for the same input, a
property locked in by the test suite.  The :class:`FleetResult` records the
backend and worker count *actually used* — e.g. a one-trajectory fleet
requested with ``workers=8`` collapses to serial and reports ``workers=1``,
and a two-trajectory fleet with ``workers=8`` reports ``workers=2``.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Callable, Sequence

from ..exceptions import FleetExecutionError, InvalidParameterError, UnknownAlgorithmError
from ..exec import ExecutionBackend, SerialBackend, resolve_backend
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from ..streaming.sinks import SegmentSink, close_sink, flush_sink
from .descriptors import AlgorithmDescriptor, get_descriptor

__all__ = ["FleetError", "FleetResult", "run_many"]

_ON_ERROR_MODES = ("raise", "collect")


@dataclass(frozen=True, slots=True)
class FleetError:
    """One trajectory that failed to compress during a fleet run.

    ``exception`` carries the original exception object when the failure
    happened in-process (serial and thread backends); failures crossing a
    process boundary are described by ``error_type``/``message`` strings
    only.  ``traceback`` carries the originally formatted traceback on
    every backend (it crosses the pickle boundary as a plain string).
    """

    index: int
    trajectory_id: str
    error_type: str
    message: str
    exception: BaseException | None = None
    traceback: str | None = None

    def __str__(self) -> str:
        label = self.trajectory_id or f"#{self.index}"
        return f"trajectory {label}: {self.error_type}: {self.message}"


@dataclass
class FleetResult:
    """Outcome of one :func:`run_many` fleet execution.

    ``representations`` is index-aligned with the input trajectories; failed
    entries are ``None`` and described by a :class:`FleetError` in
    ``errors``.  ``workers`` and ``backend`` record the worker count and
    execution backend *actually used* (a requested pool silently collapses
    to serial for degenerate fleets — that collapse is visible here).
    """

    algorithm: str
    epsilon: float
    workers: int
    seconds: float
    representations: list[PiecewiseRepresentation | None] = field(default_factory=list)
    errors: list[FleetError] = field(default_factory=list)
    backend: str = "serial"

    @property
    def n_total(self) -> int:
        """Number of trajectories submitted."""
        return len(self.representations)

    @property
    def n_failed(self) -> int:
        """Number of trajectories that failed to compress."""
        return len(self.errors)

    @property
    def ok(self) -> bool:
        """True when every trajectory compressed successfully."""
        return not self.errors

    @property
    def total_points(self) -> int:
        """Total input points across the successful representations."""
        return sum(r.source_size for r in self.representations if r is not None)

    @property
    def points_per_second(self) -> float:
        """Fleet throughput in input points per second."""
        if self.seconds <= 0.0:
            return 0.0
        return self.total_points / self.seconds

    def successful(self) -> list[PiecewiseRepresentation]:
        """The successful representations, input order preserved."""
        return [r for r in self.representations if r is not None]

    def raise_if_failed(self) -> None:
        """Raise :class:`FleetExecutionError` if any trajectory failed.

        When the first failure carries its original exception (in-process
        backends), the raised error is chained from it so type and traceback
        stay inspectable.
        """
        if not self.errors:
            return
        shown = "; ".join(str(error) for error in self.errors[:3])
        more = f" (+{len(self.errors) - 3} more)" if len(self.errors) > 3 else ""
        failure = FleetExecutionError(
            f"{len(self.errors)}/{self.n_total} trajectories failed under "
            f"{self.algorithm!r}: {shown}{more}",
            errors=self.errors,
        )
        cause = self.errors[0].exception
        if cause is not None:
            raise failure from cause
        raise failure

    def __len__(self) -> int:
        return len(self.representations)

    def __iter__(self):
        return iter(self.representations)


def _compress_task(task: tuple) -> PiecewiseRepresentation:
    """Worker body: compress one trajectory.

    ``spec`` is the algorithm name for registered algorithms (resolved
    against the registry inside the worker, so only trajectories and plain
    options cross process boundaries) or the descriptor itself for
    unregistered ad-hoc descriptors.  Failures are captured per task by the
    execution backend's isolation contract, not here.
    """
    trajectory, spec, epsilon, opts = task
    return get_descriptor(spec).batch(trajectory, epsilon, **opts)


def run_many(
    algorithm: str | AlgorithmDescriptor,
    trajectories: Sequence[Trajectory],
    epsilon: float,
    *,
    opts: dict | None = None,
    workers: int = 1,
    backend: str | ExecutionBackend = "auto",
    on_error: str = "raise",
    chunksize: int | None = None,
    sink_factory: Callable[[str], SegmentSink] | None = None,
) -> FleetResult:
    """Compress a fleet of trajectories through one algorithm.

    Parameters
    ----------
    workers:
        Worker count for the concurrent backends.  With the default
        ``backend="auto"``, ``1`` runs serially in-process and ``>1`` fans
        out over a process pool — the historical behaviour.
    backend:
        Execution backend: ``"serial"``, ``"thread"``, ``"process"``,
        ``"auto"``, or a :class:`repro.exec.ExecutionBackend` instance.
        Fleets with fewer than two trajectories always collapse to serial.
    on_error:
        ``"raise"`` (default) raises :class:`FleetExecutionError` after the
        whole fleet has been attempted; ``"collect"`` records failures in
        :attr:`FleetResult.errors` and keeps going.
    chunksize:
        Tasks handed to each process worker at a time; defaults to a value
        that gives each worker a handful of batches.
    sink_factory:
        Optional ``trajectory_id -> sink`` callable (the same
        :class:`~repro.streaming.sinks.SegmentSink` seam the hub uses, e.g.
        ``Store.sink_factory(...)``).  After the fleet completes, every
        successful representation's segments are routed — in input order —
        into a sink created for its trajectory (falling back to
        ``"trajectory-<index>"`` for unnamed trajectories), then the sink is
        flushed and closed.  Runs in the caller's process, outside the
        timed compression phase; a raising sink propagates to the caller.

    Notes
    -----
    Registered algorithms travel to worker processes by name and are
    re-resolved there.  On platforms whose multiprocessing start method is
    ``spawn`` (macOS, Windows), algorithms registered at runtime in the
    parent are therefore only visible to workers when the registration
    happens at import time of some module the workers also import; on Linux
    (``fork``) runtime registrations carry over.  Unregistered ad-hoc
    descriptors are shipped whole (their callables must be picklable for
    the process backend).
    """
    descriptor = get_descriptor(algorithm)
    # Materialised once: the error path maps outcome indices back to their
    # trajectories, which must work for generator inputs too.
    trajectories = list(trajectories)
    opts = dict(opts or {})
    descriptor.validate_kwargs(opts)
    if workers < 1:
        raise InvalidParameterError(f"workers must be at least 1, got {workers}")
    if on_error not in _ON_ERROR_MODES:
        raise InvalidParameterError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )
    executor = resolve_backend(backend, workers=workers)

    # Registered algorithms travel by name (cheap, spawn-safe); ad-hoc
    # descriptors that were never registered travel whole.
    try:
        spec = descriptor.name if get_descriptor(descriptor.name) is descriptor else descriptor
    except UnknownAlgorithmError:
        spec = descriptor
    tasks = [
        (trajectory, spec, epsilon, opts) for trajectory in trajectories
    ]
    if len(tasks) < 2 and executor.name != "serial":
        executor = SerialBackend()
    started = time.perf_counter()
    outcomes = executor.map_isolated(_compress_task, tasks, chunksize=chunksize)
    elapsed = time.perf_counter() - started

    representations: list[PiecewiseRepresentation | None] = [None] * len(tasks)
    errors: list[FleetError] = []
    for outcome in outcomes:
        if outcome.ok:
            representations[outcome.index] = outcome.value
        else:
            trajectory = trajectories[outcome.index]
            errors.append(
                FleetError(
                    index=outcome.index,
                    trajectory_id=getattr(trajectory, "trajectory_id", "") or "",
                    error_type=outcome.failure.error_type,
                    message=outcome.failure.message,
                    exception=outcome.failure.exception,
                    traceback=outcome.failure.traceback,
                )
            )
    result = FleetResult(
        algorithm=descriptor.name,
        epsilon=epsilon,
        workers=executor.effective_workers(len(tasks)),
        seconds=elapsed,
        representations=representations,
        errors=errors,
        backend=executor.name,
    )
    if sink_factory is not None:
        _route_to_sinks(sink_factory, trajectories, representations)
    if on_error == "raise":
        result.raise_if_failed()
    return result


def _route_to_sinks(
    sink_factory: Callable[[str], SegmentSink],
    trajectories: list[Trajectory],
    representations: list[PiecewiseRepresentation | None],
) -> None:
    """Persist each successful representation through its own sink.

    Mirrors the hub's sink seam for batch fleets: one sink per trajectory,
    segments delivered in order, flush + close when that trajectory is
    done.  Failed trajectories have no representation and get no sink.
    """
    for index, representation in enumerate(representations):
        if representation is None:
            continue
        trajectory_id = (
            getattr(trajectories[index], "trajectory_id", "") or f"trajectory-{index}"
        )
        sink = sink_factory(trajectory_id)
        if not isinstance(sink, SegmentSink):
            raise InvalidParameterError(
                f"sink_factory returned a {type(sink).__name__} for trajectory "
                f"{trajectory_id!r}, which does not satisfy the SegmentSink "
                f"protocol (an accept(segment) method)"
            )
        try:
            for segment in representation.segments:
                sink.accept(segment)
            flush_sink(sink)
        finally:
            close_sink(sink)
