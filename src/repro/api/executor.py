"""Fleet-scale batch executor with process parallelism and error isolation.

A production deployment compresses millions of trajectories, not one; this
module is the single choke point every fleet workload goes through
(:meth:`repro.api.Simplifier.run_many`, :func:`repro.metrics.evaluate_fleet`,
the experiment harness and the CLI).  It offers:

- a serial fast path (``workers=1``) with zero multiprocessing overhead,
- a :class:`concurrent.futures.ProcessPoolExecutor` backend (``workers>1``)
  that resolves algorithms by name inside each worker, so only trajectories
  and plain options cross process boundaries,
- per-trajectory error isolation: one malformed trajectory yields a
  :class:`FleetError` entry instead of sinking the whole fleet run
  (``on_error="collect"``), or a :class:`FleetExecutionError` summarising
  every failure (``on_error="raise"``, the default).

Both backends produce bit-identical representations for the same input, a
property locked in by the test suite.
"""

from __future__ import annotations

import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Sequence

from ..exceptions import FleetExecutionError, InvalidParameterError, UnknownAlgorithmError
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .descriptors import AlgorithmDescriptor, get_descriptor

__all__ = ["FleetError", "FleetResult", "run_many"]

_ON_ERROR_MODES = ("raise", "collect")


@dataclass(frozen=True, slots=True)
class FleetError:
    """One trajectory that failed to compress during a fleet run.

    ``exception`` carries the original exception object when the failure
    happened in-process (serial backend); failures crossing a process
    boundary are described by ``error_type``/``message`` strings only.
    """

    index: int
    trajectory_id: str
    error_type: str
    message: str
    exception: BaseException | None = None

    def __str__(self) -> str:
        label = self.trajectory_id or f"#{self.index}"
        return f"trajectory {label}: {self.error_type}: {self.message}"


@dataclass
class FleetResult:
    """Outcome of one :func:`run_many` fleet execution.

    ``representations`` is index-aligned with the input trajectories; failed
    entries are ``None`` and described by a :class:`FleetError` in
    ``errors``.
    """

    algorithm: str
    epsilon: float
    workers: int
    seconds: float
    representations: list[PiecewiseRepresentation | None] = field(default_factory=list)
    errors: list[FleetError] = field(default_factory=list)

    @property
    def n_total(self) -> int:
        """Number of trajectories submitted."""
        return len(self.representations)

    @property
    def n_failed(self) -> int:
        """Number of trajectories that failed to compress."""
        return len(self.errors)

    @property
    def ok(self) -> bool:
        """True when every trajectory compressed successfully."""
        return not self.errors

    @property
    def total_points(self) -> int:
        """Total input points across the successful representations."""
        return sum(r.source_size for r in self.representations if r is not None)

    @property
    def points_per_second(self) -> float:
        """Fleet throughput in input points per second."""
        if self.seconds <= 0.0:
            return 0.0
        return self.total_points / self.seconds

    def successful(self) -> list[PiecewiseRepresentation]:
        """The successful representations, input order preserved."""
        return [r for r in self.representations if r is not None]

    def raise_if_failed(self) -> None:
        """Raise :class:`FleetExecutionError` if any trajectory failed.

        When the first failure carries its original exception (serial
        backend), the raised error is chained from it so type and traceback
        stay inspectable.
        """
        if not self.errors:
            return
        shown = "; ".join(str(error) for error in self.errors[:3])
        more = f" (+{len(self.errors) - 3} more)" if len(self.errors) > 3 else ""
        failure = FleetExecutionError(
            f"{len(self.errors)}/{self.n_total} trajectories failed under "
            f"{self.algorithm!r}: {shown}{more}",
            errors=self.errors,
        )
        cause = self.errors[0].exception
        if cause is not None:
            raise failure from cause
        raise failure

    def __len__(self) -> int:
        return len(self.representations)

    def __iter__(self):
        return iter(self.representations)


def _compress_one(task: tuple) -> tuple:
    """Worker body: compress one trajectory, capturing any failure.

    ``spec`` is the algorithm name for registered algorithms (resolved
    against the registry inside the worker, so only trajectories and plain
    options cross process boundaries) or the descriptor itself for
    unregistered ad-hoc descriptors.
    """
    index, trajectory, spec, epsilon, opts = task
    try:
        representation = get_descriptor(spec).batch(trajectory, epsilon, **opts)
        return index, representation, None
    except Exception as error:  # noqa: BLE001 — isolation is the contract
        trajectory_id = getattr(trajectory, "trajectory_id", "") or ""
        return index, None, (trajectory_id, type(error).__name__, str(error), error)


def _compress_one_remote(task: tuple) -> tuple:
    """Pool wrapper: strip the exception object before it crosses the
    process boundary (arbitrary exceptions do not reliably pickle)."""
    index, representation, failure = _compress_one(task)
    if failure is not None:
        failure = failure[:3] + (None,)
    return index, representation, failure


def run_many(
    algorithm: str | AlgorithmDescriptor,
    trajectories: Sequence[Trajectory],
    epsilon: float,
    *,
    opts: dict | None = None,
    workers: int = 1,
    on_error: str = "raise",
    chunksize: int | None = None,
) -> FleetResult:
    """Compress a fleet of trajectories through one algorithm.

    Parameters
    ----------
    workers:
        ``1`` runs serially in-process; ``>1`` fans out over a
        ``ProcessPoolExecutor`` with that many workers.
    on_error:
        ``"raise"`` (default) raises :class:`FleetExecutionError` after the
        whole fleet has been attempted; ``"collect"`` records failures in
        :attr:`FleetResult.errors` and keeps going.
    chunksize:
        Tasks handed to each worker at a time; defaults to a value that
        gives each worker a handful of batches.

    Notes
    -----
    Registered algorithms travel to worker processes by name and are
    re-resolved there.  On platforms whose multiprocessing start method is
    ``spawn`` (macOS, Windows), algorithms registered at runtime in the
    parent are therefore only visible to workers when the registration
    happens at import time of some module the workers also import; on Linux
    (``fork``) runtime registrations carry over.  Unregistered ad-hoc
    descriptors are shipped whole (their callables must be picklable for
    ``workers > 1``).
    """
    descriptor = get_descriptor(algorithm)
    opts = dict(opts or {})
    descriptor.validate_kwargs(opts)
    if workers < 1:
        raise InvalidParameterError(f"workers must be at least 1, got {workers}")
    if on_error not in _ON_ERROR_MODES:
        raise InvalidParameterError(
            f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
        )

    # Registered algorithms travel by name (cheap, spawn-safe); ad-hoc
    # descriptors that were never registered travel whole.
    try:
        spec = descriptor.name if get_descriptor(descriptor.name) is descriptor else descriptor
    except UnknownAlgorithmError:
        spec = descriptor
    tasks = [
        (index, trajectory, spec, epsilon, opts)
        for index, trajectory in enumerate(trajectories)
    ]
    started = time.perf_counter()
    if workers == 1 or len(tasks) < 2:
        outcomes = [_compress_one(task) for task in tasks]
    else:
        pool_size = min(workers, len(tasks))
        if chunksize is None:
            chunksize = max(1, len(tasks) // (pool_size * 4))
        with ProcessPoolExecutor(max_workers=pool_size) as pool:
            outcomes = list(pool.map(_compress_one_remote, tasks, chunksize=chunksize))
    elapsed = time.perf_counter() - started

    representations: list[PiecewiseRepresentation | None] = [None] * len(tasks)
    errors: list[FleetError] = []
    for index, representation, failure in outcomes:
        if failure is None:
            representations[index] = representation
        else:
            trajectory_id, error_type, message, exception = failure
            errors.append(
                FleetError(
                    index=index,
                    trajectory_id=trajectory_id,
                    error_type=error_type,
                    message=message,
                    exception=exception,
                )
            )
    result = FleetResult(
        algorithm=descriptor.name,
        epsilon=epsilon,
        workers=workers,
        seconds=elapsed,
        representations=representations,
        errors=errors,
    )
    if on_error == "raise":
        result.raise_if_failed()
    return result
