"""Unified public API: one registry, capability-aware sessions, fleet executor.

This package is the single dispatch seam of the reproduction.  Every
algorithm is described by an :class:`AlgorithmDescriptor` (callable +
streaming factory + capability flags) in one registry; the
:class:`Simplifier` session facade routes any workload shape through it:

- ``Simplifier(name, epsilon).run(trajectory)`` — batch,
- ``.open_stream()`` — push/finish streaming, auto-wrapping batch-only
  algorithms in :class:`BufferedBatchAdapter`,
- ``.run_many(trajectories, workers=N)`` — fleet-scale execution over a
  process pool with per-trajectory error isolation.

The CLI, the experiment harness, the streaming pipelines and
:func:`repro.metrics.evaluate_fleet` all dispatch through here; the legacy
``ALGORITHMS`` / ``STREAMING_ALGORITHMS`` dicts are deprecation-shimmed
views over this registry.  Register new algorithms with
:func:`register_algorithm`.
"""

from .descriptors import (
    ERROR_METRICS,
    AlgorithmDescriptor,
    algorithm_names,
    get_descriptor,
    list_descriptors,
    register,
    register_algorithm,
    unregister_algorithm,
)
from . import builtin as _builtin  # noqa: F401  (side effect: registers built-ins)
from .adapters import BufferedBatchAdapter
from .session import Simplifier, StreamSession, open_raw_stream
from .executor import FleetError, FleetResult, run_many

__all__ = [
    "ERROR_METRICS",
    "AlgorithmDescriptor",
    "BufferedBatchAdapter",
    "FleetError",
    "FleetResult",
    "Simplifier",
    "StreamSession",
    "algorithm_names",
    "get_descriptor",
    "list_descriptors",
    "open_raw_stream",
    "register",
    "register_algorithm",
    "run_many",
    "unregister_algorithm",
]
