"""Deprecation machinery for the legacy registry surfaces.

The pre-unification API exposed two parallel dicts (``ALGORITHMS`` and
``STREAMING_ALGORITHMS``) plus free functions (``get_algorithm``,
``simplify``, ``make_streaming_simplifier``).  They survive as warning
shims over the descriptor registry so existing call sites keep working while
new code migrates to :mod:`repro.api`.
"""

from __future__ import annotations

import warnings
from collections.abc import Mapping
from typing import Callable, Iterator

from .descriptors import AlgorithmDescriptor, get_descriptor, list_descriptors

__all__ = ["DeprecatedRegistryView", "warn_deprecated"]


def warn_deprecated(legacy: str, replacement: str) -> None:
    """Emit the standard migration warning for a legacy entry point."""
    warnings.warn(
        f"{legacy} is deprecated; use {replacement} instead",
        DeprecationWarning,
        stacklevel=3,
    )


class DeprecatedRegistryView(Mapping):
    """Read-only mapping view over the descriptor registry.

    Behaves like the legacy name->callable dicts: iteration and length are
    silent (so ``list(...)`` keeps working without noise), item access emits
    a :class:`DeprecationWarning` pointing at the :mod:`repro.api`
    replacement.  The view is live — algorithms registered later appear in
    it immediately.
    """

    def __init__(
        self,
        legacy: str,
        replacement: str,
        project: Callable[[AlgorithmDescriptor], object],
        predicate: Callable[[AlgorithmDescriptor], bool] | None = None,
    ) -> None:
        self._legacy = legacy
        self._replacement = replacement
        self._project = project
        self._predicate = predicate or (lambda descriptor: True)

    def _names(self) -> list[str]:
        return [d.name for d in list_descriptors() if self._predicate(d)]

    def __getitem__(self, key: str) -> object:
        warn_deprecated(self._legacy, self._replacement)
        descriptor = get_descriptor(key)  # raises UnknownAlgorithmError (a KeyError)
        if not self._predicate(descriptor):
            raise KeyError(key)
        return self._project(descriptor)

    def __iter__(self) -> Iterator[str]:
        return iter(self._names())

    def __len__(self) -> int:
        return len(self._names())

    def __contains__(self, key: object) -> bool:
        return isinstance(key, str) and key.strip().lower() in self._names()

    def __repr__(self) -> str:
        return f"<deprecated registry view {self._legacy} ({len(self)} algorithms)>"
