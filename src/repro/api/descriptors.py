"""First-class algorithm descriptors and the unified registry.

Every simplification algorithm in the package — batch baselines, the paper's
one-pass OPERB/OPERB-A family and anything a downstream user plugs in — is
described by one :class:`AlgorithmDescriptor` and registered in a single
registry.  The descriptor carries the capability flags the rest of the system
routes on:

``streaming``
    The algorithm has a native push/finish implementation and can consume a
    point stream without buffering it (``streaming_factory`` is set).
``one_pass``
    The algorithm touches each point exactly once with O(1) state — the
    paper's headline property.  ``one_pass`` implies ``streaming`` but not
    vice versa: FBQS is streaming yet buffers its open window.
``error_metric``
    Which deviation the error bound constrains: ``"perpendicular"``
    (distance to the segment line), ``"sed"`` (time-synchronised Euclidean
    distance) or ``"none"`` (not error bounded, e.g. uniform sampling).
``checkpointable``
    Instances produced by the streaming factory implement the
    ``snapshot()``/``restore(state)`` protocol, so live streams can be
    checkpointed to JSON and resumed byte-identically (the contract the
    :class:`repro.streaming.StreamHub` relies on).
``batched``
    Instances produced by the streaming factory implement the block-ingest
    protocol (``push_block``/``push_block_steps`` over
    :class:`repro.trajectory.PointBlock`), feeding SoA point blocks to the
    vectorized kernels instead of per-point Python.  Algorithms without it
    still accept blocks everywhere — sessions and the hub fall back to a
    correct per-point loop.
``accepted_kwargs`` / ``streaming_kwargs``
    The keyword arguments the batch callable / the streaming factory accept,
    validated eagerly so misconfiguration fails at construction time rather
    than deep inside a fleet run.

New algorithms are registered with the :func:`register_algorithm` decorator::

    @register_algorithm("my-algo", error_metric="perpendicular",
                        summary="my experimental simplifier")
    def my_algo(trajectory, epsilon):
        ...

and immediately become available to :class:`repro.api.Simplifier`, the CLI,
the experiment harness and the deprecated ``ALGORITHMS`` views.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable

from ..exceptions import InvalidParameterError, UnknownAlgorithmError
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation

__all__ = [
    "ERROR_METRICS",
    "AlgorithmDescriptor",
    "register_algorithm",
    "register",
    "unregister_algorithm",
    "get_descriptor",
    "list_descriptors",
    "algorithm_names",
]

BatchFunction = Callable[..., PiecewiseRepresentation]
StreamingFactory = Callable[..., object]

ERROR_METRICS = ("perpendicular", "sed", "none")
"""Valid values of :attr:`AlgorithmDescriptor.error_metric`."""


@dataclass(frozen=True, slots=True)
class AlgorithmDescriptor:
    """Complete description of one registered simplification algorithm.

    Attributes
    ----------
    name:
        Registry key, normalised to lower case (the paper's names: ``"dp"``,
        ``"operb-a"``, ...).
    batch:
        The batch callable ``(trajectory, epsilon, **kwargs) ->
        PiecewiseRepresentation``.
    streaming_factory:
        Optional factory ``(epsilon, **kwargs) -> push/finish simplifier``
        for algorithms with a native streaming implementation.
    one_pass:
        True when the algorithm touches each point exactly once with O(1)
        state (requires a streaming factory).
    checkpointable:
        True when the streaming factory's instances support
        ``snapshot()``/``restore(state)`` (requires a streaming factory).
        Batch-only algorithms are always checkpointable behind a
        :class:`repro.api.BufferedBatchAdapter`, which snapshots its buffer.
    batched:
        True when the streaming factory's instances support native block
        ingest (``push_block``/``push_block_steps``; requires a streaming
        factory).  Batch-only algorithms always ingest blocks natively
        behind the buffered adapter, which appends each block in O(1).
    pyramid:
        True when the streaming factory's instances support the segment
        re-ingest hook (``push_segment``) the epsilon-pyramid cascade uses
        *and* the algorithm's emissions are extent-faithful: every point a
        segment covers projects onto the segment's own span, so re-ingesting
        just the endpoints preserves the nesting error bound (requires a
        streaming factory).  The OPERB family qualifies (segments are fitted
        to the farthest absorbed projection); FBQS does not — its convex
        window accepts points whose witness feet land beyond the emitted
        endpoints, so a cascade built on endpoints alone can exceed the
        coarse bound.
    error_metric:
        One of :data:`ERROR_METRICS`.
    accepted_kwargs:
        Keyword arguments accepted by the batch callable beyond
        ``(trajectory, epsilon)``.
    streaming_kwargs:
        Keyword arguments accepted by the streaming factory beyond
        ``epsilon``.  Defaults to ``accepted_kwargs``.
    summary:
        One-line human-readable description (shown by ``repro-traj
        algorithms``).
    """

    name: str
    batch: BatchFunction
    streaming_factory: StreamingFactory | None = None
    one_pass: bool = False
    checkpointable: bool = False
    batched: bool = False
    pyramid: bool = False
    error_metric: str = "perpendicular"
    accepted_kwargs: frozenset[str] = field(default_factory=frozenset)
    streaming_kwargs: frozenset[str] | None = None
    summary: str = ""

    def __post_init__(self) -> None:
        normalized = self.name.strip().lower()
        if not normalized:
            raise InvalidParameterError("algorithm name must be a non-empty string")
        object.__setattr__(self, "name", normalized)
        object.__setattr__(self, "accepted_kwargs", frozenset(self.accepted_kwargs))
        if self.streaming_kwargs is None:
            object.__setattr__(self, "streaming_kwargs", self.accepted_kwargs)
        else:
            object.__setattr__(self, "streaming_kwargs", frozenset(self.streaming_kwargs))
        if self.error_metric not in ERROR_METRICS:
            raise InvalidParameterError(
                f"error_metric must be one of {ERROR_METRICS}, got {self.error_metric!r}"
            )
        if self.one_pass and self.streaming_factory is None:
            raise InvalidParameterError(
                f"algorithm {self.name!r} is flagged one_pass but has no streaming factory"
            )
        if self.checkpointable and self.streaming_factory is None:
            raise InvalidParameterError(
                f"algorithm {self.name!r} is flagged checkpointable but has no "
                f"streaming factory"
            )
        if self.batched and self.streaming_factory is None:
            raise InvalidParameterError(
                f"algorithm {self.name!r} is flagged batched but has no "
                f"streaming factory"
            )
        if self.pyramid and self.streaming_factory is None:
            raise InvalidParameterError(
                f"algorithm {self.name!r} is flagged pyramid but has no "
                f"streaming factory"
            )
        if self.pyramid and self.error_metric == "none":
            raise InvalidParameterError(
                f"algorithm {self.name!r} is flagged pyramid but is not "
                f"error bounded (error_metric='none')"
            )

    # ------------------------------------------------------------------ #
    # Capabilities
    # ------------------------------------------------------------------ #
    @property
    def streaming(self) -> bool:
        """Whether the algorithm has a native push/finish implementation."""
        return self.streaming_factory is not None

    @property
    def error_bounded(self) -> bool:
        """Whether the output respects an epsilon error bound at all."""
        return self.error_metric != "none"

    @property
    def snapshot_capable(self) -> bool:
        """Whether an ``open_stream`` session of this algorithm can snapshot.

        Native streaming algorithms must declare :attr:`checkpointable`;
        batch-only algorithms always qualify because the
        :class:`repro.api.BufferedBatchAdapter` wrapping them snapshots its
        buffer.
        """
        return self.checkpointable or not self.streaming

    @property
    def block_capable(self) -> bool:
        """Whether an ``open_stream`` session ingests blocks natively.

        Native streaming algorithms must declare :attr:`batched`; batch-only
        algorithms always qualify because the buffered adapter appends each
        block in O(1).  Sessions of algorithms without this flag still accept
        ``push_block`` through the generic per-point fallback.
        """
        return self.batched or not self.streaming

    @property
    def pyramid_capable(self) -> bool:
        """Whether the algorithm can serve as an epsilon-pyramid level.

        The cascade re-simplifies only the finer level's segment *endpoints*,
        so the nesting bound survives only when every covered point's witness
        stays within the span of the segment that covers it.  Two classes
        qualify:

        - native streamers that declare :attr:`pyramid` (the OPERB family —
          segments are fitted to the farthest absorbed projection, so nothing
          covered overhangs the emitted endpoints);
        - batch-only algorithms under the synchronised Euclidean distance
          (``dp-sed``, ``opw-tr`` behind the
          :class:`repro.api.BufferedBatchAdapter`) — a time-synchronised
          witness always interpolates *inside* its chord's time span, so the
          endpoint cascade composes exactly.

        Line-distance window algorithms (``fbqs``, ``opw``, ``bqs``) are
        excluded even though they are error bounded: they certify deviation
        against a segment's infinite line, so covered points may project
        beyond the endpoints and the cascaded coarse level can break its
        advertised bound (observed empirically on random walks).
        """
        return self.pyramid or (not self.streaming and self.error_metric == "sed")

    def capabilities(self) -> dict[str, object]:
        """Plain-dict capability summary (for reports and the CLI table)."""
        return {
            "name": self.name,
            "streaming": self.streaming,
            "one_pass": self.one_pass,
            "checkpointable": self.checkpointable,
            "batched": self.batched,
            "pyramid": self.pyramid,
            "error_metric": self.error_metric,
            "accepted_kwargs": sorted(self.accepted_kwargs),
            "streaming_kwargs": sorted(self.streaming_kwargs or ()),
            "summary": self.summary,
        }

    # ------------------------------------------------------------------ #
    # Validation and dispatch
    # ------------------------------------------------------------------ #
    def validate_kwargs(self, kwargs: Iterable[str], *, streaming: bool = False) -> None:
        """Reject keyword arguments the selected execution mode cannot take.

        Raises
        ------
        InvalidParameterError
            Naming the offending arguments and the accepted set, so fleet
            jobs fail fast at configuration time.
        """
        accepted = self.streaming_kwargs if streaming else self.accepted_kwargs
        unknown = sorted(set(kwargs) - set(accepted or ()))
        if unknown:
            mode = "streaming" if streaming else "batch"
            accepted_text = ", ".join(sorted(accepted or ())) or "(none)"
            raise InvalidParameterError(
                f"algorithm {self.name!r} does not accept {mode} option(s) "
                f"{', '.join(unknown)}; accepted: {accepted_text}"
            )

    def run(
        self, trajectory: Trajectory, epsilon: float, **kwargs: object
    ) -> PiecewiseRepresentation:
        """Validate ``kwargs`` and run the batch callable."""
        self.validate_kwargs(kwargs)
        return self.batch(trajectory, epsilon, **kwargs)

    def make_streaming(self, epsilon: float, **kwargs: object) -> object:
        """Validate ``kwargs`` and instantiate the native streaming simplifier.

        Raises
        ------
        InvalidParameterError
            If the algorithm has no streaming implementation (wrap it in a
            :class:`repro.api.BufferedBatchAdapter` instead).
        """
        if self.streaming_factory is None:
            raise InvalidParameterError(
                f"algorithm {self.name!r} has no native streaming implementation"
            )
        self.validate_kwargs(kwargs, streaming=True)
        return self.streaming_factory(epsilon, **kwargs)


# ---------------------------------------------------------------------- #
# The registry
# ---------------------------------------------------------------------- #
_REGISTRY: dict[str, AlgorithmDescriptor] = {}


def register(descriptor: AlgorithmDescriptor, *, replace: bool = False) -> AlgorithmDescriptor:
    """Add a descriptor to the registry.

    Raises
    ------
    InvalidParameterError
        If the name is already taken and ``replace`` is False.
    """
    if not replace and descriptor.name in _REGISTRY:
        raise InvalidParameterError(
            f"algorithm {descriptor.name!r} is already registered; "
            f"pass replace=True to override it"
        )
    _REGISTRY[descriptor.name] = descriptor
    return descriptor


def register_algorithm(
    name: str,
    *,
    streaming_factory: StreamingFactory | None = None,
    one_pass: bool = False,
    checkpointable: bool = False,
    batched: bool = False,
    pyramid: bool = False,
    error_metric: str = "perpendicular",
    accepted_kwargs: Iterable[str] = (),
    streaming_kwargs: Iterable[str] | None = None,
    summary: str = "",
    replace: bool = False,
) -> Callable[[BatchFunction], BatchFunction]:
    """Decorator registering a batch callable as an algorithm.

    The decorated function is returned unchanged, so it can still be called
    directly; the registry stores an :class:`AlgorithmDescriptor` built from
    the decorator arguments.
    """

    def decorator(function: BatchFunction) -> BatchFunction:
        doc_lines = (function.__doc__ or "").strip().splitlines()
        register(
            AlgorithmDescriptor(
                name=name,
                batch=function,
                streaming_factory=streaming_factory,
                one_pass=one_pass,
                checkpointable=checkpointable,
                batched=batched,
                pyramid=pyramid,
                error_metric=error_metric,
                accepted_kwargs=frozenset(accepted_kwargs),
                streaming_kwargs=None if streaming_kwargs is None else frozenset(streaming_kwargs),
                summary=summary or (doc_lines[0] if doc_lines else ""),
            ),
            replace=replace,
        )
        return function

    return decorator


def unregister_algorithm(name: str) -> None:
    """Remove an algorithm from the registry (mainly for tests and plugins)."""
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise UnknownAlgorithmError(
            f"cannot unregister unknown algorithm {name!r}; "
            f"available: {', '.join(algorithm_names())}"
        )
    del _REGISTRY[key]


def get_descriptor(name: str | AlgorithmDescriptor) -> AlgorithmDescriptor:
    """Look up a descriptor by (case-insensitive) name.

    Descriptor instances pass through unchanged so every API entry point can
    accept either form.

    Raises
    ------
    UnknownAlgorithmError
        If ``name`` is not registered.
    """
    if isinstance(name, AlgorithmDescriptor):
        return name
    key = name.strip().lower()
    if key not in _REGISTRY:
        raise UnknownAlgorithmError(
            f"unknown algorithm {name!r}; available: {', '.join(algorithm_names())}"
        )
    return _REGISTRY[key]


def list_descriptors() -> list[AlgorithmDescriptor]:
    """All registered descriptors, sorted by name."""
    return [_REGISTRY[key] for key in sorted(_REGISTRY)]


def algorithm_names() -> list[str]:
    """Names of all registered algorithms, sorted alphabetically."""
    return sorted(_REGISTRY)
