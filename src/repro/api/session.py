"""Capability-aware session facade over the unified algorithm registry.

:class:`Simplifier` is the one public entry point for every execution mode:

>>> from repro.api import Simplifier
>>> session = Simplifier("operb", epsilon=40.0)
>>> compressed = session.run(trajectory)                 # batch
>>> with session.open_stream() as stream:                # streaming
...     for fix in gps_feed:
...         uplink(stream.push(fix))
>>> fleet = session.run_many(trajectories, workers=4)    # fleet scale

The session resolves its :class:`~repro.api.AlgorithmDescriptor` once,
validates options eagerly against the descriptor's capability flags, and
routes each mode accordingly: ``open_stream`` uses the native streaming
factory when the algorithm has one and transparently wraps batch-only
algorithms in a :class:`~repro.api.BufferedBatchAdapter`; ``run_many`` fans
the fleet out over a pluggable :mod:`repro.exec` backend (serial, thread
pool or process pool) with per-trajectory error isolation.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from ..algorithms.base import iter_block_steps
from ..exceptions import InvalidParameterError, SimplificationError
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord
from ..trajectory.soa import PointBlock
from .adapters import BufferedBatchAdapter
from .descriptors import AlgorithmDescriptor, get_descriptor

__all__ = ["Simplifier", "StreamSession", "open_raw_stream"]


def open_raw_stream(
    descriptor: AlgorithmDescriptor, epsilon: float, **kwargs
) -> object:
    """Instantiate the raw push/finish simplifier for ``descriptor``.

    Natively streaming algorithms are instantiated through their factory;
    batch-only algorithms are wrapped in a :class:`BufferedBatchAdapter`.
    Keyword arguments are validated eagerly in both cases.
    """
    if descriptor.streaming:
        return descriptor.make_streaming(epsilon, **kwargs)
    return BufferedBatchAdapter(descriptor, epsilon, **kwargs)


class StreamSession:
    """One push/finish session over a raw streaming simplifier.

    Wraps either a native streaming simplifier or a
    :class:`BufferedBatchAdapter` behind one uniform interface, by default
    accumulates every emitted segment so :meth:`result` can build the final
    :class:`PiecewiseRepresentation`, and guards the session lifecycle
    (pushing after or finishing twice raises :class:`SimplificationError`).

    Pass ``keep_segments=False`` (via ``Simplifier.open_stream``) for
    fire-and-forget consumers that uplink each segment as it is emitted:
    the session then holds no segment history, preserving the O(1)-state
    property of the one-pass algorithms, and :meth:`result` is unavailable.

    Attributes of the underlying simplifier (``stats``, ``buffered_points``,
    ...) are reachable both through :attr:`native` and by plain attribute
    access on the session.
    """

    # Not snapshot state (RPA001): the descriptor and epsilon are the
    # immutable configuration ``restore_stream`` resolves by name.
    _SNAPSHOT_EXCLUDE = frozenset({"descriptor", "epsilon"})

    def __init__(
        self,
        descriptor: AlgorithmDescriptor,
        raw: object,
        epsilon: float,
        *,
        keep_segments: bool = True,
    ) -> None:
        self.descriptor = descriptor
        self.epsilon = epsilon
        self._raw = raw
        self._keep_segments = keep_segments
        self._segments: list[SegmentRecord] = []
        self._pushes = 0
        self._finished = False

    @property
    def algorithm(self) -> str:
        """Name of the algorithm driving this session."""
        return self.descriptor.name

    @property
    def native(self) -> object:
        """The underlying simplifier (native streaming or buffered adapter)."""
        return self._raw

    @property
    def buffering(self) -> bool:
        """True when a batch algorithm is being emulated via buffering."""
        return isinstance(self._raw, BufferedBatchAdapter)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    @property
    def points_pushed(self) -> int:
        """Number of points pushed so far."""
        return self._pushes

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed one point; returns the segments finalised by this push."""
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.algorithm!r} stream session"
            )
        self._pushes += 1
        emitted = list(self._raw.push(point))
        if self._keep_segments:
            self._segments.extend(emitted)
        return emitted

    def feed(self, points: Iterable[Point]) -> list[SegmentRecord]:
        """Push many points; returns all segments finalised along the way."""
        emitted: list[SegmentRecord] = []
        for point in points:
            emitted.extend(self.push(point))
        return emitted

    def push_block(self, block: PointBlock) -> list[SegmentRecord]:
        """Feed a whole SoA block of points; returns the finalised segments.

        Produces byte-identical segments (and session snapshots) to pushing
        the block's points one at a time — the block boundary is purely an
        execution choice.  Algorithms whose simplifier implements the native
        block protocol (``descriptor.batched``, or any batch-only algorithm
        behind the buffered adapter) run their vectorized fast path; others
        fall back to a correct per-point loop.  An empty block is a cheap
        no-op that touches no statistics.
        """
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.algorithm!r} stream session"
            )
        n = len(block)
        if n == 0:
            return []
        native = getattr(self._raw, "push_block", None)
        if native is not None:
            emitted = list(native(block))
        else:
            emitted = []
            for _, segments in iter_block_steps(self._raw, block):
                emitted.extend(segments)
        self._pushes += n
        if self._keep_segments:
            self._segments.extend(emitted)
        return emitted

    def push_segment(
        self, segment: SegmentRecord, *, include_start: bool = False
    ) -> list[SegmentRecord]:
        """Re-ingest a finer pyramid level's segment into this session.

        Pushes ``segment.start`` first when ``include_start`` is true, then
        ``segment.end`` — the epsilon-pyramid cascade's O(segments) ingest
        path.  Requires the ``pyramid`` capability (native simplifiers
        inheriting the re-ingest hook, or any buffered batch algorithm).
        """
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.algorithm!r} stream session"
            )
        native = getattr(self._raw, "push_segment", None)
        if native is None:
            raise SimplificationError(
                f"algorithm {self.algorithm!r} does not implement the "
                f"push_segment re-ingest hook (pyramid capability)"
            )
        self._pushes += 2 if include_start else 1
        emitted = list(native(segment, include_start=include_start))
        if self._keep_segments:
            self._segments.extend(emitted)
        return emitted

    def iter_block(self, block: PointBlock) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced block ingest: yields ``(count, segments)`` steps.

        Each step ingests ``count`` further points, the last of which
        finalised ``segments`` (empty for silent runs).  This is the form
        the streaming hub drives so per-push accounting (lag, burst sizes)
        stays byte-identical to per-point ingest; :meth:`push_block` is the
        flattened convenience wrapper.
        """
        if self._finished:
            raise SimplificationError(
                f"cannot push to a finished {self.algorithm!r} stream session"
            )
        if len(block) == 0:
            return iter(())
        return self._iter_block(block)

    def _iter_block(self, block: PointBlock) -> Iterator[tuple[int, list[SegmentRecord]]]:
        for count, segments in iter_block_steps(self._raw, block):
            self._pushes += count
            if self._keep_segments and segments:
                self._segments.extend(segments)
            yield count, segments

    def finish(self) -> list[SegmentRecord]:
        """Flush the simplifier and close the session.

        Raises
        ------
        SimplificationError
            On a second call — a session represents exactly one stream.
        """
        if self._finished:
            raise SimplificationError(
                f"{self.algorithm!r} stream session was already finished"
            )
        self._finished = True
        emitted = list(self._raw.finish())
        if self._keep_segments:
            self._segments.extend(emitted)
        return emitted

    def snapshot(self) -> dict:
        """JSON-serialisable state of this session (see ``restore_stream``).

        Captures the session book-keeping (push count, lifecycle, retained
        segments) plus the underlying simplifier's own snapshot.  Resuming
        via :meth:`Simplifier.restore_stream` and continuing the stream
        produces byte-identical segments to an uninterrupted run.

        Raises
        ------
        SimplificationError
            When the underlying simplifier does not implement the
            ``snapshot()``/``restore()`` protocol (check
            ``descriptor.snapshot_capable`` beforehand).
        """
        raw_snapshot = getattr(self._raw, "snapshot", None)
        if raw_snapshot is None:
            raise SimplificationError(
                f"algorithm {self.algorithm!r} streams but does not implement the "
                f"snapshot()/restore() checkpoint protocol"
            )
        return {
            "pushes": self._pushes,
            "finished": self._finished,
            "keep_segments": self._keep_segments,
            "segments": [segment.to_dict() for segment in self._segments],
            "raw": raw_snapshot(),
        }

    def _restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` (fresh sessions only; internal)."""
        if self._pushes or self._finished or self._segments:
            raise SimplificationError("cannot restore into a used stream session")
        raw_restore = getattr(self._raw, "restore", None)
        if raw_restore is None:
            raise SimplificationError(
                f"algorithm {self.algorithm!r} streams but does not implement the "
                f"snapshot()/restore() checkpoint protocol"
            )
        self._pushes = int(state["pushes"])
        self._finished = bool(state["finished"])
        self._keep_segments = bool(state["keep_segments"])
        self._segments = [SegmentRecord.from_dict(entry) for entry in state["segments"]]
        raw_restore(state["raw"])

    def result(self, source_size: int | None = None) -> PiecewiseRepresentation:
        """The complete representation produced by this session.

        Finishes the session first if it is still open.  ``source_size``
        defaults to the number of pushed points.  Unavailable when the
        session was opened with ``keep_segments=False``.
        """
        if not self._keep_segments:
            raise SimplificationError(
                "this stream session was opened with keep_segments=False and "
                "holds no segment history; collect segments from push()/finish()"
            )
        if not self._finished:
            self.finish()
        size = self._pushes if source_size is None else source_size
        return PiecewiseRepresentation(
            segments=list(self._segments), source_size=size, algorithm=self.algorithm
        )

    def __enter__(self) -> "StreamSession":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None and not self._finished:
            self.finish()

    def __getattr__(self, name: str):
        # Delegate unknown attributes (stats, buffered_points, ...) to the
        # underlying simplifier.
        raw = object.__getattribute__(self, "_raw")
        return getattr(raw, name)


class Simplifier:
    """Session facade: one algorithm + epsilon + options, every execution mode.

    Parameters
    ----------
    algorithm:
        Registered algorithm name (or an :class:`AlgorithmDescriptor`).
    epsilon:
        The error bound ``zeta``.  Required (and validated as a positive
        finite number) for error-bounded algorithms; optional for algorithms
        with ``error_metric == "none"`` such as ``uniform``.
    **opts:
        Algorithm options.  Names unknown to the algorithm in *any* mode are
        rejected here at construction time; whether an option fits the
        chosen execution mode (``accepted_kwargs`` for batch,
        ``streaming_kwargs`` for streaming) is checked when that mode is
        entered, since a session serves both.
    """

    def __init__(
        self, algorithm: str | AlgorithmDescriptor = "operb", epsilon: float | None = None, **opts
    ) -> None:
        self.descriptor = get_descriptor(algorithm)
        if epsilon is None:
            if self.descriptor.error_bounded:
                raise InvalidParameterError(
                    f"algorithm {self.descriptor.name!r} is error bounded; "
                    f"an epsilon is required"
                )
            epsilon = 0.0
        elif self.descriptor.error_bounded and not (
            epsilon > 0.0 and math.isfinite(epsilon)
        ):
            raise InvalidParameterError(
                f"error bound epsilon must be a positive finite number, got {epsilon!r}"
            )
        self.epsilon = float(epsilon)
        known = set(self.descriptor.accepted_kwargs) | set(self.descriptor.streaming_kwargs or ())
        unknown = sorted(set(opts) - known)
        if unknown:
            accepted_text = ", ".join(sorted(known)) or "(none)"
            raise InvalidParameterError(
                f"algorithm {self.descriptor.name!r} does not accept option(s) "
                f"{', '.join(unknown)}; accepted: {accepted_text}"
            )
        self.opts = opts

    @property
    def algorithm(self) -> str:
        """Normalised name of the selected algorithm."""
        return self.descriptor.name

    def capabilities(self) -> dict[str, object]:
        """Capability flags of the selected algorithm."""
        return self.descriptor.capabilities()

    def run(self, trajectory: Trajectory) -> PiecewiseRepresentation:
        """Simplify one trajectory in batch mode."""
        return self.descriptor.run(trajectory, self.epsilon, **self.opts)

    def open_stream(self, *, keep_segments: bool = True) -> StreamSession:
        """Open a push/finish session.

        Uses the native streaming implementation when the algorithm has one;
        batch-only algorithms are transparently wrapped in a
        :class:`BufferedBatchAdapter` (which buffers the whole stream — the
        cost the paper's one-pass algorithms avoid).

        Sessions accept points one at a time (:meth:`StreamSession.push`)
        or as SoA blocks (:meth:`StreamSession.push_block`) — the batched
        form runs the vectorized block kernels for algorithms with the
        ``batched`` capability and is byte-identical to per-point ingest.

        ``keep_segments=False`` opens a fire-and-forget session that retains
        no segment history (O(1) session state for one-pass algorithms);
        :meth:`StreamSession.result` is then unavailable.
        """
        raw = open_raw_stream(self.descriptor, self.epsilon, **self.opts)
        return StreamSession(self.descriptor, raw, self.epsilon, keep_segments=keep_segments)

    def restore_stream(self, state: dict) -> StreamSession:
        """Reopen a stream session from a :meth:`StreamSession.snapshot`.

        A fresh raw simplifier is instantiated with this session's epsilon
        and options (which must match the ones the snapshot was taken under —
        the snapshot carries only state, not configuration) and the saved
        state is loaded into it.  Continuing the restored stream yields
        byte-identical segments to the uninterrupted run.
        """
        session = self.open_stream()
        session._restore(state)
        return session

    def run_many(
        self,
        trajectories: Sequence[Trajectory],
        *,
        workers: int = 1,
        backend: str = "auto",
        on_error: str = "raise",
        chunksize: int | None = None,
        sink_factory=None,
    ):
        """Compress a fleet of trajectories, optionally in parallel.

        ``backend`` selects the :mod:`repro.exec` execution backend
        (``"serial"``, ``"thread"``, ``"process"``, or ``"auto"`` — serial
        for one worker, a process pool otherwise).  ``sink_factory`` routes
        each successful trajectory's segments through a
        :class:`~repro.streaming.sinks.SegmentSink` (e.g.
        ``Store.sink_factory(...)`` to persist the fleet into a segment
        store).  See :func:`repro.api.executor.run_many` for the full
        contract; the returned :class:`~repro.api.FleetResult` keeps
        per-trajectory error isolation so one malformed trajectory cannot
        sink a fleet job, and records the backend and worker count actually
        used.
        """
        from .executor import run_many

        return run_many(
            self.descriptor,
            trajectories,
            self.epsilon,
            opts=self.opts,
            workers=workers,
            backend=backend,
            on_error=on_error,
            chunksize=chunksize,
            sink_factory=sink_factory,
        )

    def __repr__(self) -> str:
        opts = "".join(f", {key}={value!r}" for key, value in sorted(self.opts.items()))
        return f"Simplifier({self.algorithm!r}, epsilon={self.epsilon!r}{opts})"
