"""Exception hierarchy for the :mod:`repro` package.

All library errors derive from :class:`ReproError` so that callers can catch
everything raised by this package with a single ``except`` clause while still
being able to distinguish finer-grained failures.
"""

from __future__ import annotations

__all__ = [
    "ReproError",
    "InvalidTrajectoryError",
    "InvalidParameterError",
    "SimplificationError",
    "DatasetError",
    "ExperimentError",
    "FleetExecutionError",
    "UnknownAlgorithmError",
    "CheckpointError",
    "ExecutionError",
    "StoreError",
    "WireFormatError",
]


class ReproError(Exception):
    """Base class for all errors raised by the :mod:`repro` package."""


class InvalidTrajectoryError(ReproError, ValueError):
    """A trajectory violates a structural requirement.

    Raised, for example, when coordinate arrays have mismatched lengths,
    contain non-finite values, or timestamps are not monotonically
    non-decreasing where monotonicity is required.
    """


class InvalidParameterError(ReproError, ValueError):
    """A user-supplied parameter is outside its valid domain.

    Typical causes are a non-positive error bound ``zeta`` or an angle
    parameter outside ``[0, pi]``.
    """


class SimplificationError(ReproError, RuntimeError):
    """An algorithm reached an internally inconsistent state.

    This signals a bug in the library rather than bad user input; it should
    never be raised during normal operation.
    """


class DatasetError(ReproError):
    """A dataset could not be generated or loaded."""


class ExperimentError(ReproError):
    """An experiment definition or run failed."""


class FleetExecutionError(ReproError):
    """One or more trajectories of a fleet run failed to compress.

    Raised by the fleet executor when ``on_error="raise"``; the individual
    failures are available on :attr:`errors` (a list of
    :class:`repro.api.FleetError` records).
    """

    def __init__(self, message: str, *, errors: list | tuple = ()) -> None:
        super().__init__(message)
        self.errors = list(errors)


class UnknownAlgorithmError(ReproError, KeyError):
    """The requested algorithm name is not present in the registry."""


class CheckpointError(ReproError):
    """A streaming checkpoint could not be written, parsed or restored.

    Raised for malformed or version-incompatible checkpoint payloads and
    when a hub contains streams that cannot be snapshotted.
    """


class ExecutionError(ReproError, RuntimeError):
    """The execution runtime itself failed.

    Raised by :mod:`repro.exec` when a worker actor crashes outside the
    per-task/per-device isolation contract (for example a handler bug, a
    dead worker process, or an unpicklable reply) — as opposed to
    :class:`FleetExecutionError`, which reports isolated task failures.
    """


class StoreError(ReproError):
    """The segment store could not be opened, written or read.

    Raised by :mod:`repro.store` for malformed manifests, corrupt or
    truncated partition files, and layout-version mismatches — any case
    where the on-disk state cannot be interpreted faithfully.
    """


class WireFormatError(ReproError, ValueError):
    """A wire frame could not be encoded or decoded.

    Raised by :mod:`repro.streaming.wire` for truncated frames, bad magic
    bytes, unknown frame kinds and protocol-version mismatches — any case
    where bytes on the wire cannot be interpreted faithfully.
    """
