"""Streaming simplification interface and adapters.

OPERB/OPERB-A (and FBQS, dead reckoning) are naturally push-based: points go
in one at a time, finalised segments come out.  This module defines the small
protocol they share, a factory that builds a streaming simplifier by name,
and an adapter that exposes *batch* algorithms behind the same interface for
apples-to-apples pipeline comparisons (the adapter necessarily buffers the
whole stream, which is precisely the cost the paper's one-pass algorithms
avoid).
"""

from __future__ import annotations

from typing import Callable

from ..algorithms.dead_reckoning import DeadReckoningSimplifier
from ..algorithms.fbqs import FBQSSimplifier
from ..algorithms.registry import get_algorithm
from ..core.config import OperbAConfig, OperbConfig
from ..core.operb import OPERBSimplifier
from ..core.operb_a import OPERBASimplifier
from ..exceptions import UnknownAlgorithmError
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord

__all__ = ["BufferedBatchAdapter", "make_streaming_simplifier", "STREAMING_ALGORITHMS"]


class BufferedBatchAdapter:
    """Expose a batch algorithm through the push/finish streaming interface.

    The adapter buffers every pushed point and runs the batch algorithm at
    :meth:`finish`.  It exists so pipelines can swap OPERB for DP (say) and
    measure what the batch requirement costs in latency and memory.
    """

    def __init__(self, algorithm: str, epsilon: float, **kwargs) -> None:
        self.name = algorithm
        self.epsilon = epsilon
        self._function = get_algorithm(algorithm)
        self._kwargs = kwargs
        self._points: list[Point] = []
        self._finished = False

    def push(self, point: Point) -> list[SegmentRecord]:
        """Buffer the point; batch algorithms cannot emit anything early."""
        self._points.append(point)
        return []

    def finish(self) -> list[SegmentRecord]:
        """Run the underlying batch algorithm over the buffered stream."""
        if self._finished:
            return []
        self._finished = True
        trajectory = Trajectory.from_points(self._points, require_monotonic_time=False)
        representation = self._function(trajectory, self.epsilon, **self._kwargs)
        return list(representation.segments)

    @property
    def buffered_points(self) -> int:
        """Number of points currently held in memory (the adapter's cost)."""
        return len(self._points)


def _make_operb(epsilon: float, **kwargs) -> OPERBSimplifier:
    return OPERBSimplifier(OperbConfig.optimized(epsilon, **kwargs))


def _make_raw_operb(epsilon: float, **kwargs) -> OPERBSimplifier:
    return OPERBSimplifier(OperbConfig.raw(epsilon, **kwargs))


def _make_operb_a(epsilon: float, **kwargs) -> OPERBASimplifier:
    return OPERBASimplifier(OperbAConfig.optimized(epsilon, **kwargs))


def _make_raw_operb_a(epsilon: float, **kwargs) -> OPERBASimplifier:
    return OPERBASimplifier(OperbAConfig.raw(epsilon, **kwargs))


STREAMING_ALGORITHMS: dict[str, Callable[..., object]] = {
    "operb": _make_operb,
    "raw-operb": _make_raw_operb,
    "operb-a": _make_operb_a,
    "raw-operb-a": _make_raw_operb_a,
    "fbqs": FBQSSimplifier,
    "dead-reckoning": DeadReckoningSimplifier,
}
"""Factories for genuinely streaming simplifiers, keyed by algorithm name."""


def make_streaming_simplifier(algorithm: str, epsilon: float, **kwargs):
    """Create a streaming simplifier by name.

    Genuinely streaming algorithms are instantiated directly; batch-only
    algorithms (``dp``, ``opw``, ``bqs``, ...) are wrapped in a
    :class:`BufferedBatchAdapter`.
    """
    key = algorithm.strip().lower()
    if key in STREAMING_ALGORITHMS:
        return STREAMING_ALGORITHMS[key](epsilon, **kwargs)
    # Fall back to the batch registry (raises UnknownAlgorithmError if absent).
    get_algorithm(key)
    return BufferedBatchAdapter(key, epsilon, **kwargs)
