"""Deprecated streaming factory — a thin shim over :mod:`repro.api`.

The historical API exposed a ``STREAMING_ALGORITHMS`` dict of factories and a
``make_streaming_simplifier`` free function, parallel to (and easy to drift
from) the batch registry.  Streaming capability is now a flag on each
:class:`repro.api.AlgorithmDescriptor`; this module keeps the old names
working as deprecation shims and re-exports :class:`BufferedBatchAdapter`
from its new home in :mod:`repro.api.adapters`.

New code should use::

    from repro.api import Simplifier
    with Simplifier("operb", epsilon=40.0).open_stream() as stream:
        ...
"""

from __future__ import annotations

from ..api._compat import DeprecatedRegistryView, warn_deprecated
from ..api.adapters import BufferedBatchAdapter
from ..api.descriptors import get_descriptor
from ..api.session import open_raw_stream

__all__ = ["BufferedBatchAdapter", "make_streaming_simplifier", "STREAMING_ALGORITHMS"]

STREAMING_ALGORITHMS = DeprecatedRegistryView(
    "repro.streaming.interface.STREAMING_ALGORITHMS",
    "repro.api.get_descriptor(name).streaming_factory",
    project=lambda descriptor: descriptor.streaming_factory,
    predicate=lambda descriptor: descriptor.streaming,
)
"""Deprecated live view: name -> streaming factory (native streaming only)."""


def make_streaming_simplifier(algorithm: str, epsilon: float, **kwargs):
    """Deprecated: create a raw streaming simplifier by name.

    Use ``repro.api.Simplifier(algorithm, epsilon).open_stream()`` instead.
    Genuinely streaming algorithms are instantiated natively; batch-only
    algorithms (``dp``, ``opw``, ``bqs``, ...) are wrapped in a
    :class:`BufferedBatchAdapter`.  Keyword arguments are validated eagerly
    for both paths.
    """
    warn_deprecated(
        "repro.streaming.make_streaming_simplifier",
        "repro.api.Simplifier(algorithm, epsilon).open_stream()",
    )
    return open_raw_stream(get_descriptor(algorithm), epsilon, **kwargs)
