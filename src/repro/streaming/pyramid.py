"""Single-pass epsilon pyramid: one stream, every resolution level.

Serving the same device stream at several error bounds (map zoom levels,
replay tools, analytics dashboards) naively costs one full simplification
pass per epsilon.  Error-bound nesting makes that waste avoidable: a
coarser level can be maintained by re-simplifying the *finer level's
segment output* — O(segments) work instead of O(points) — while still
honouring its own bound against the raw stream.

:class:`PyramidSession` wraps one finest-level
:class:`~repro.api.StreamSession` (level 0, byte-identical to a direct
single-epsilon run) and cascades every segment it emits into ``k - 1``
coarser simplifiers in the same pass.  Level ``i`` is opened with the
*cascade bound* ``epsilons[i] - epsilons[i-1]``: its input vertices are the
level ``i-1`` polyline, which already deviates from the raw stream by at
most ``epsilons[i-1]``, so by the triangle inequality (exact for SED, whose
deviation against an affine-in-``t`` chord is maximised at the input
vertices) the level ``i`` output deviates from the raw stream by at most
``epsilons[i]``.  Strictly ascending epsilons keep every cascade bound
positive.

The cascade consumes segments through the ``push_segment`` re-ingest hook
(the ``pyramid`` capability flag; RPA002 machine-checks that advertised
algorithms define it).  The session tracks, per coarse level, the last
endpoint it forwarded: a segment whose start does not continue the previous
tail (the stream's first segment, or a patched joint) is re-ingested with
``include_start=True`` so no vertex is lost.

The triangle inequality, however, is only exact at the re-ingested
*vertices*: the coarse simplifier guarantees each input vertex lies within
the cascade bound of the line of its covering output segment, and because
point-to-line distance is affine along a chord, a whole fed chord is within
the bound whenever *both* of its endpoints sit within it of one output
line.  A chord that straddles two coverage ranges — OPERB-A's aggressive
patching, for example, can finalise adjacent segments whose covered ranges
share no vertex — has no such single line, and its interior (where raw
points project) can escape the bound.  Each level therefore runs a
**certify-or-fallback verifier** (:class:`_CascadeVerifier`): every fed
chord must be certified against one emitted coarse line (both endpoints
within the cascade bound); a chord no line certifies by the time the
coarse output has moved past it survives into the level's output verbatim.
The fallback is always sound — a finer segment deviates from the raw
stream by at most the finer epsilon — and the decisions depend only on the
fed-chord and emission sequences (never on push/block interleaving), so
block splits keep every level byte-identical.

Coarse emissions are buffered per level and drained with
:meth:`PyramidSession.drain_levels` — the hub drains after every routed
push and tags the result as ``("level_segments", device_id, level, ...)``
events, keeping the finest-level hot path untouched.
"""

from __future__ import annotations

import math
from typing import Iterable, Iterator, Sequence

from ..api.session import Simplifier, StreamSession, open_raw_stream
from ..exceptions import InvalidParameterError, SimplificationError
from ..geometry.point import Point, encode_point
from ..trajectory.piecewise import SegmentRecord
from ..trajectory.soa import PointBlock

__all__ = ["PyramidSession", "validate_epsilon_ladder"]

_BLOCK_FEED_MIN = 16
"""Cascade batches at least this long ride the vectorized ``push_block``
path of the cascade simplifier instead of per-segment ``push_segment``
(identical output either way — block boundaries are an execution choice);
below it, packing an SoA block costs more than it saves."""

_VERIFY_LINES = 64
"""How many recent coarse output lines a level's verifier keeps as
certification candidates.  A chord is almost always certified by the line
covering it (the first or second candidate tried); the window only needs to
be deep enough to still hold that line when the chord's verdict falls due,
one emission later."""


class _CascadeVerifier:
    """Certify-or-fallback guard for one cascaded level (module docstring).

    ``register`` records every chord fed to the level's coarse simplifier
    (with its position in the simplifier's input indexing); ``admit`` runs
    the coarse emissions through the verdict rule — a chord the output has
    moved past must have both endpoints within the cascade bound of one
    recently emitted line, or the chord itself is spliced into the output
    as a fallback segment, just before the emission that passed it.
    ``flush`` settles the chords still pending at finish.
    """

    # Not snapshot state (RPA001): the cascade bound (and the tolerance
    # derived from it) is configuration the restoring side re-supplies via
    # the ladder; only the chord/line progress below is stream state.
    _SNAPSHOT_EXCLUDE = frozenset({"epsilon", "_tolerance"})

    def __init__(self, epsilon: float) -> None:
        self.epsilon = epsilon
        # Same slack as metrics.check_error_bound: a coarse fit sitting
        # exactly on its guarantee must certify, not spuriously fall back.
        self._tolerance = epsilon * (1.0 + 1e-9) + 1e-9
        self._pushed = 0
        self._pending: list[tuple[SegmentRecord, int]] = []
        self._lines: list[tuple[float, float, float, float]] = []

    def register(self, segment: SegmentRecord, include_start: bool) -> None:
        """Record one fed chord; ``include_start`` mirrors the feed call."""
        self._pushed += 2 if include_start else 1
        self._pending.append((segment, self._pushed - 1))

    def _within(self, point: Point, line: tuple[float, float, float, float]) -> bool:
        ax, ay, bx, by = line
        dx = bx - ax
        dy = by - ay
        norm = math.hypot(dx, dy)
        if norm == 0.0:
            return math.hypot(point.x - ax, point.y - ay) <= self._tolerance
        offset = abs((point.x - ax) * dy - (point.y - ay) * dx) / norm
        return offset <= self._tolerance

    def _certified(self, segment: SegmentRecord) -> bool:
        for line in reversed(self._lines):
            if self._within(segment.start, line) and self._within(segment.end, line):
                return True
        return False

    def admit(self, emissions: list[SegmentRecord]) -> list[SegmentRecord]:
        """Interleave fallback chords into the level's emissions, in order."""
        out: list[SegmentRecord] = []
        for record in emissions:
            self._lines.append(
                (record.start.x, record.start.y, record.end.x, record.end.y)
            )
            if len(self._lines) > _VERIFY_LINES:
                del self._lines[0]
            still_pending: list[tuple[SegmentRecord, int]] = []
            for chord in self._pending:
                segment, end_index = chord
                if end_index <= record.first_index:
                    if not self._certified(segment):
                        out.append(segment)
                else:
                    still_pending.append(chord)
            self._pending = still_pending
            out.append(record)
        return out

    def flush(self) -> list[SegmentRecord]:
        """Settle the chords the coarse output never moved past."""
        fallbacks = [
            segment for segment, _ in self._pending if not self._certified(segment)
        ]
        self._pending = []
        return fallbacks

    def snapshot(self) -> dict:
        return {
            "pushed": self._pushed,
            "pending": [
                [segment.to_dict(), end_index]
                for segment, end_index in self._pending
            ],
            "lines": [list(line) for line in self._lines],
        }

    def restore(self, state: dict) -> None:
        self._pushed = int(state["pushed"])
        self._pending = [
            (SegmentRecord.from_dict(entry), int(end_index))
            for entry, end_index in state["pending"]
        ]
        self._lines = [
            (float(ax), float(ay), float(bx), float(by))
            for ax, ay, bx, by in state["lines"]
        ]


def validate_epsilon_ladder(epsilons: Sequence[float]) -> tuple[float, ...]:
    """Validate a pyramid's error-bound ladder.

    Returns the ladder as a float tuple, finest (smallest) level first.

    Raises
    ------
    InvalidParameterError
        Unless every bound is a positive finite number and the sequence is
        strictly ascending (equal levels would be redundant; a descending
        ladder would make a cascade bound non-positive).
    """
    try:
        ladder = tuple(float(epsilon) for epsilon in epsilons)
    except (TypeError, ValueError) as error:
        raise InvalidParameterError(
            f"epsilons must be a sequence of positive finite numbers, "
            f"got {epsilons!r}"
        ) from error
    if not ladder:
        raise InvalidParameterError("epsilons must name at least one level")
    for epsilon in ladder:
        if not (math.isfinite(epsilon) and epsilon > 0.0):
            raise InvalidParameterError(
                f"every pyramid epsilon must be a positive finite number, "
                f"got {epsilon!r}"
            )
    for finer, coarser in zip(ladder, ladder[1:]):
        if coarser <= finer:
            raise InvalidParameterError(
                f"pyramid epsilons must be strictly ascending, "
                f"got {finer!r} before {coarser!r}"
            )
    return ladder


class PyramidSession:
    """One device's epsilon pyramid: a finest stream plus cascaded levels.

    Parameters
    ----------
    simplifier:
        The configured :class:`~repro.api.Simplifier` (algorithm, finest
        epsilon, options).  Its epsilon must equal ``epsilons[0]`` and its
        algorithm must be pyramid capable
        (:attr:`~repro.api.AlgorithmDescriptor.pyramid_capable`).
    epsilons:
        The strictly ascending error-bound ladder; ``epsilons[0]`` is the
        finest level, served byte-identically to a plain single-epsilon
        stream session.

    Level 0 ingest (:meth:`push` / :meth:`iter_block` / :meth:`finish`)
    mirrors :class:`~repro.api.StreamSession` exactly — same return values,
    same lifecycle errors — so callers written for a single-epsilon session
    keep working; the coarse levels ride along invisibly until
    :meth:`drain_levels` is called.
    """

    # Not snapshot state (RPA001): the simplifier is the immutable
    # configuration the restoring side supplies (the ladder itself is
    # checkpointed, via ``epsilons``, to detect configuration mismatches).
    _SNAPSHOT_EXCLUDE = frozenset({"simplifier"})

    def __init__(self, simplifier: Simplifier, epsilons: Sequence[float]) -> None:
        ladder = validate_epsilon_ladder(epsilons)
        if simplifier.epsilon != ladder[0]:
            raise InvalidParameterError(
                f"the simplifier's epsilon ({simplifier.epsilon!r}) must equal "
                f"the finest pyramid level ({ladder[0]!r})"
            )
        if len(ladder) > 1 and not simplifier.descriptor.pyramid_capable:
            raise InvalidParameterError(
                f"algorithm {simplifier.algorithm!r} is not pyramid capable: "
                f"re-ingesting its segment endpoints does not preserve the "
                f"coarse error bound (see AlgorithmDescriptor.pyramid_capable)"
            )
        self.simplifier = simplifier
        self.epsilons = ladder
        # Level 0 is exactly a single-epsilon fire-and-forget session; its
        # segments, statistics and snapshots are byte-identical to a
        # pyramid-less run.
        self.base: StreamSession = simplifier.open_stream(keep_segments=False)
        # Level i >= 1 re-simplifies level i-1's output under the cascade
        # bound epsilons[i] - epsilons[i-1] (see the module docstring).
        self._cascades: list[object] = [
            open_raw_stream(
                simplifier.descriptor, coarser - finer, **simplifier.opts
            )
            for finer, coarser in zip(ladder, ladder[1:])
        ]
        self._primed = [False] * len(self._cascades)
        self._tails: list[Point | None] = [None] * len(self._cascades)
        self._pending: list[list[SegmentRecord]] = [[] for _ in self._cascades]
        # One certify-or-fallback guard per coarse level (module docstring):
        # the nesting bound is enforced chord by chord, not assumed.
        self._verify = [
            _CascadeVerifier(coarser - finer)
            for finer, coarser in zip(ladder, ladder[1:])
        ]
        self._finished = False

    # ------------------------------------------------------------------ #
    # Introspection
    # ------------------------------------------------------------------ #
    @property
    def levels(self) -> int:
        """Number of pyramid levels (1 = a plain single-epsilon session)."""
        return len(self.epsilons)

    @property
    def finished(self) -> bool:
        """Whether :meth:`finish` has been called."""
        return self._finished

    @property
    def points_pushed(self) -> int:
        """Raw points pushed into the finest level."""
        return self.base.points_pushed

    # ------------------------------------------------------------------ #
    # The cascade
    # ------------------------------------------------------------------ #
    def _feed(self, start: int, segments: list[SegmentRecord]) -> None:
        """Propagate finalised segments from level ``start + 1`` downward."""
        for i in range(start, len(self._cascades)):
            if not segments:
                return
            cascade = self._cascades[i]
            verifier = self._verify[i]
            out: list[SegmentRecord] = []
            push_block = getattr(cascade, "push_block", None)
            if push_block is not None and len(segments) >= _BLOCK_FEED_MIN:
                # A long batch (block ingest on the finest level) is packed
                # into one SoA block so the cascade runs its vectorized
                # prefix kernels over the endpoint stream instead of one
                # Python push per segment — the optimisation that keeps a
                # k-level pyramid well under k times the single-level cost.
                points: list[Point] = []
                for segment in segments:
                    include_start = (
                        not self._primed[i] or segment.start != self._tails[i]
                    )
                    if include_start:
                        points.append(segment.start)
                    points.append(segment.end)
                    verifier.register(segment, include_start)
                    self._primed[i] = True
                    self._tails[i] = segment.end
                out = list(push_block(PointBlock.from_points(points)))
            else:
                for segment in segments:
                    # The very first segment (or a joint the finer level
                    # patched away from the previous tail) must contribute
                    # its start vertex too; a continuing segment only adds
                    # its end.
                    include_start = (
                        not self._primed[i] or segment.start != self._tails[i]
                    )
                    verifier.register(segment, include_start)
                    out.extend(
                        cascade.push_segment(segment, include_start=include_start)  # type: ignore[attr-defined]
                    )
                    self._primed[i] = True
                    self._tails[i] = segment.end
            out = verifier.admit(out)
            if out:
                self._pending[i].extend(out)
            segments = out

    # ------------------------------------------------------------------ #
    # Level-0 ingest (mirrors StreamSession)
    # ------------------------------------------------------------------ #
    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed one fix; returns the *finest-level* segments it finalised.

        Coarser levels are updated in the same call and buffered for
        :meth:`drain_levels`.
        """
        emitted = self.base.push(point)
        if emitted:
            self._feed(0, emitted)
        return emitted

    def feed(self, points: Iterable[Point]) -> list[SegmentRecord]:
        """Push many points; returns all finest-level segments emitted."""
        emitted: list[SegmentRecord] = []
        for point in points:
            emitted.extend(self.push(point))
        return emitted

    def iter_block(self, block) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Traced block ingest over the finest level (hub accounting form).

        Yields the base session's ``(count, segments)`` steps unchanged —
        so per-device lag accounting stays byte-identical to a
        single-epsilon session — cascading each step's emissions before it
        is yielded.
        """
        steps = self.base.iter_block(block)  # lifecycle errors raise eagerly
        return self._iter_block(steps)

    def _iter_block(
        self, steps: Iterator[tuple[int, list[SegmentRecord]]]
    ) -> Iterator[tuple[int, list[SegmentRecord]]]:
        # The cascade feed is deferred to block exhaustion: the whole
        # block's emissions go down as one batch, which is what lets
        # ``_feed`` take the vectorized path.  Identical cascade output —
        # the levels see the same segments in the same order — and no
        # visible reordering, because coarse segments only surface through
        # drain_levels() after the ingest call returns.  (A traced block
        # abandoned mid-iteration leaves the finest level mid-block too;
        # partial consumption is not part of the session protocol.)
        emitted: list[SegmentRecord] = []
        for count, segments in steps:
            if segments:
                emitted.extend(segments)
            yield count, segments
        if emitted:
            self._feed(0, emitted)

    def push_block(self, block) -> list[SegmentRecord]:
        """Feed a whole SoA block; returns the finest-level segments."""
        emitted: list[SegmentRecord] = []
        for _, segments in self.iter_block(block):
            emitted.extend(segments)
        return emitted

    def finish(self) -> list[SegmentRecord]:
        """Flush every level; returns the finest level's trailing segments.

        Each coarse level is flushed in order, its tail segments feeding
        the levels below it before they flush — so the deepest level sees
        its complete input.  Coarse tails land in the per-level buffers;
        drain them with :meth:`drain_levels` after finishing.
        """
        emitted = self.base.finish()
        if emitted:
            self._feed(0, emitted)
        for i, cascade in enumerate(self._cascades):
            tail = self._verify[i].admit(list(cascade.finish()))  # type: ignore[attr-defined]
            # Chords the coarse output never moved past get their verdict
            # now; uncertified ones survive into the level's output.
            tail.extend(self._verify[i].flush())
            if tail:
                self._pending[i].extend(tail)
                self._feed(i + 1, tail)
        self._finished = True
        return emitted

    # ------------------------------------------------------------------ #
    # Coarse-level output
    # ------------------------------------------------------------------ #
    def drain_levels(self) -> list[tuple[int, list[SegmentRecord]]]:
        """Pop the coarse segments buffered since the last drain.

        Returns ``(level, segments)`` pairs in ascending level order
        (levels with nothing pending are omitted; level 0 never appears —
        its segments are returned by the ingest calls directly).
        """
        drained: list[tuple[int, list[SegmentRecord]]] = []
        for i, pending in enumerate(self._pending):
            if pending:
                drained.append((i + 1, pending))
                self._pending[i] = []
        return drained

    # ------------------------------------------------------------------ #
    # Checkpoint protocol
    # ------------------------------------------------------------------ #
    def snapshot(self) -> dict:
        """JSON-serialisable state of every level (see :meth:`restore`).

        The finest level's entry is exactly the single-epsilon session's
        snapshot; the cascade state (per-level simplifier snapshots, primed
        flags, forwarded tails, undrained buffers) rides alongside it.
        """
        cascades: list[object] = []
        for cascade in self._cascades:
            raw_snapshot = getattr(cascade, "snapshot", None)
            if raw_snapshot is None:
                raise SimplificationError(
                    f"algorithm {self.simplifier.algorithm!r} streams but does "
                    f"not implement the snapshot()/restore() checkpoint protocol"
                )
            cascades.append(raw_snapshot())
        return {
            "epsilons": list(self.epsilons),
            "base": self.base.snapshot(),
            "cascades": cascades,
            "primed": list(self._primed),
            "tails": [
                None if tail is None else encode_point(tail) for tail in self._tails
            ],
            "pending": [
                [segment.to_dict() for segment in level] for level in self._pending
            ],
            "verify": [verifier.snapshot() for verifier in self._verify],
            "finished": self._finished,
        }

    def restore(self, state: dict) -> None:
        """Load a :meth:`snapshot` into this (fresh) pyramid session.

        Continuing the restored stream yields byte-identical segments — at
        every level — to the uninterrupted run.
        """
        if self._finished or self.base.points_pushed or self.base.finished:
            raise SimplificationError(
                "restore() requires a fresh pyramid session"
            )
        stored = [float(epsilon) for epsilon in state["epsilons"]]
        if tuple(stored) != self.epsilons:
            raise SimplificationError(
                f"pyramid checkpoint was taken under epsilons {stored!r}; "
                f"this session is configured for {list(self.epsilons)!r}"
            )
        self.base = self.simplifier.restore_stream(state["base"])
        for cascade, sub_state in zip(self._cascades, state["cascades"]):
            raw_restore = getattr(cascade, "restore", None)
            if raw_restore is None:
                raise SimplificationError(
                    f"algorithm {self.simplifier.algorithm!r} streams but does "
                    f"not implement the snapshot()/restore() checkpoint protocol"
                )
            raw_restore(sub_state)
        self._primed = [bool(flag) for flag in state["primed"]]
        self._tails = [
            None if tail is None else Point(*tail) for tail in state["tails"]
        ]
        self._pending = [
            [SegmentRecord.from_dict(entry) for entry in level]
            for level in state["pending"]
        ]
        for verifier, sub_state in zip(self._verify, state["verify"]):
            verifier.restore(sub_state)
        self._finished = bool(state["finished"])
