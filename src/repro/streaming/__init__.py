"""Streaming (push-based) simplification pipelines and accounting wrappers."""

from .counting import CountingPointSource, CountingSimplifier
from .interface import STREAMING_ALGORITHMS, BufferedBatchAdapter, make_streaming_simplifier
from .pipeline import PipelineResult, StreamingPipeline, run_pipeline
from .sinks import CollectingSink, CsvSegmentSink, StatisticsSink

__all__ = [
    "STREAMING_ALGORITHMS",
    "BufferedBatchAdapter",
    "CollectingSink",
    "CountingPointSource",
    "CountingSimplifier",
    "CsvSegmentSink",
    "PipelineResult",
    "StatisticsSink",
    "StreamingPipeline",
    "make_streaming_simplifier",
    "run_pipeline",
]
