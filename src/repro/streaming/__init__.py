"""Streaming (push-based) simplification pipelines, the multi-device hub
with checkpoint/restore, and accounting wrappers."""

from .checkpoint import (
    load_checkpoint,
    read_point_log,
    restore_hub,
    save_checkpoint,
    write_point_log,
)
from .counting import CountingPointSource, CountingSimplifier
from .hub import (
    DEFAULT_BLOCK_SIZE,
    DeviceError,
    DeviceStream,
    HubShard,
    HubStats,
    StreamHub,
    shard_index,
)
from .interface import STREAMING_ALGORITHMS, BufferedBatchAdapter, make_streaming_simplifier
from .pipeline import PipelineResult, StreamingPipeline, run_pipeline
from .pyramid import PyramidSession, validate_epsilon_ladder
from .sinks import (
    CollectingSink,
    CsvSegmentSink,
    SegmentSink,
    StatisticsSink,
    close_sink,
    flush_sink,
)
from .wire import (
    FRAME_TYPES,
    POINT_BATCH_FORMATS,
    FrameType,
    decode_frame,
    encode_frame,
    group_records,
    pack_frame,
    read_frame,
    register_frame,
)

__all__ = [
    "DEFAULT_BLOCK_SIZE",
    "FRAME_TYPES",
    "POINT_BATCH_FORMATS",
    "STREAMING_ALGORITHMS",
    "BufferedBatchAdapter",
    "CollectingSink",
    "CountingPointSource",
    "CountingSimplifier",
    "CsvSegmentSink",
    "DeviceError",
    "DeviceStream",
    "FrameType",
    "HubShard",
    "HubStats",
    "PipelineResult",
    "PyramidSession",
    "SegmentSink",
    "StatisticsSink",
    "StreamHub",
    "StreamingPipeline",
    "close_sink",
    "decode_frame",
    "encode_frame",
    "flush_sink",
    "group_records",
    "load_checkpoint",
    "make_streaming_simplifier",
    "pack_frame",
    "read_frame",
    "read_point_log",
    "register_frame",
    "restore_hub",
    "run_pipeline",
    "save_checkpoint",
    "shard_index",
    "validate_epsilon_ladder",
    "write_point_log",
]
