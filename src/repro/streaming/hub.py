"""Multi-device streaming hub: thousands of concurrent GPS streams, one process.

The paper's one-pass algorithms are designed to run at the *edge* — one
simplifier per device, O(1) state each — but a trajectory store ingests the
other end of that pipe: a single service terminating many device streams at
once.  :class:`StreamHub` is that ingest surface.  Devices are hash-sharded
across :class:`HubShard` workers (a deterministic CRC32 shard map, so a
checkpoint restores onto the same layout), each shard owning a dict of
``device_id -> DeviceStream``; every device stream wraps one
:class:`repro.api.StreamSession` opened with ``keep_segments=False`` so hub
memory stays O(devices), not O(points).

Capabilities:

- **per-device configuration** — each device may use its own algorithm,
  epsilon and options (defaults come from the hub);
- **segment routing** — finalised segments are handed to a per-device sink
  (``sink_factory``) or a shared sink the moment they are emitted;
- **backpressure accounting** — per-device and hub-wide lag statistics (how
  many points are pending in the open segment) expose the latency cost of
  buffering algorithms next to the one-pass ones;
- **error isolation** — a device stream that raises is quarantined and
  recorded as a :class:`DeviceError`, mirroring the fleet executor's
  per-trajectory isolation, instead of sinking the hub;
- **checkpoint/restore** — :meth:`StreamHub.checkpoint` serialises every
  live stream via the simplifiers' ``snapshot()`` protocol into one
  JSON-serialisable payload; :meth:`StreamHub.from_checkpoint` resumes with
  byte-identical downstream segments (see :mod:`repro.streaming.checkpoint`).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass
from typing import Callable, Iterable, Iterator

from ..api.session import Simplifier, StreamSession
from ..exceptions import CheckpointError, InvalidParameterError, SimplificationError
from ..geometry.point import Point
from ..trajectory.piecewise import SegmentRecord

__all__ = [
    "DeviceError",
    "DeviceStream",
    "HubShard",
    "HubStats",
    "StreamHub",
    "shard_index",
]

_ON_ERROR_MODES = ("collect", "raise")

CHECKPOINT_KIND = "stream-hub"
"""Payload discriminator stamped into every hub checkpoint."""

CHECKPOINT_FORMAT = 1
"""Version stamp of the checkpoint layout, bumped on incompatible changes."""


def shard_index(device_id: str, n_shards: int) -> int:
    """Deterministic shard of ``device_id`` (CRC32, stable across processes).

    Python's builtin ``hash`` is salted per process, which would scatter a
    restored hub's devices onto different shards than the checkpointing one;
    CRC32 keeps the layout reproducible.
    """
    return zlib.crc32(str(device_id).encode("utf-8")) % n_shards


@dataclass(frozen=True, slots=True)
class DeviceError:
    """One device stream that failed mid-ingest (mirrors ``FleetError``)."""

    device_id: str
    error_type: str
    message: str
    exception: BaseException | None = None

    def __str__(self) -> str:
        return f"device {self.device_id}: {self.error_type}: {self.message}"


@dataclass(slots=True)
class HubStats:
    """Aggregate counters of a hub (see :meth:`StreamHub.stats`)."""

    devices: int
    active: int
    finished: int
    failed: int
    points_pushed: int
    segments_emitted: int
    dropped_points: int
    max_lag: int
    max_segments_per_push: int
    shard_devices: list[int]
    shard_points: list[int]

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for the CLI and reports)."""
        return {
            "devices": self.devices,
            "active": self.active,
            "finished": self.finished,
            "failed": self.failed,
            "points_pushed": self.points_pushed,
            "segments_emitted": self.segments_emitted,
            "dropped_points": self.dropped_points,
            "max_lag": self.max_lag,
            "max_segments_per_push": self.max_segments_per_push,
            "shard_devices": list(self.shard_devices),
            "shard_points": list(self.shard_points),
        }


class DeviceStream:
    """One device's open stream inside the hub.

    Wraps a :class:`~repro.api.StreamSession` (``keep_segments=False`` — the
    sink owns the segments) together with the routing sink and the per-device
    lag/backpressure counters.  Not constructed directly; use
    :meth:`StreamHub.register_device` / :meth:`StreamHub.push`.
    """

    def __init__(self, device_id: str, simplifier: Simplifier, sink: object | None) -> None:
        self.device_id = device_id
        self.simplifier = simplifier
        self.sink = sink
        self.session: StreamSession = simplifier.open_stream(keep_segments=False)
        self.points_pushed = 0
        self.segments_emitted = 0
        self.max_segments_per_push = 0
        self.lag = 0
        """Points pushed since the last emitted segment (open-segment backlog)."""
        self.max_lag = 0
        self.dropped_points = 0
        self.error: DeviceError | None = None

    @property
    def algorithm(self) -> str:
        """Name of the algorithm compressing this device's stream."""
        return self.simplifier.algorithm

    @property
    def failed(self) -> bool:
        """Whether this device stream has been quarantined after an error."""
        return self.error is not None

    @property
    def finished(self) -> bool:
        """Whether this device stream has been flushed."""
        return self.session.finished

    def _route(self, emitted: list[SegmentRecord]) -> None:
        """Fold emitted segments into the statistics and hand them to the sink."""
        count = len(emitted)
        self.segments_emitted += count
        if count > self.max_segments_per_push:
            self.max_segments_per_push = count
        if count:
            self.lag = 0
        if self.sink is not None:
            for segment in emitted:
                self.sink.accept(segment)

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed one fix; returns (and routes) the segments it finalised."""
        emitted = self.session.push(point)
        self.points_pushed += 1
        self.lag += 1
        if self.lag > self.max_lag:
            self.max_lag = self.lag
        self._route(emitted)
        return emitted

    def finish(self) -> list[SegmentRecord]:
        """Flush the stream; returns (and routes) the trailing segments."""
        emitted = self.session.finish()
        self._route(emitted)
        self.lag = 0
        return emitted

    def stats_dict(self) -> dict[str, int]:
        """The per-device counters as a plain dict (checkpointed verbatim)."""
        return {
            "points_pushed": self.points_pushed,
            "segments_emitted": self.segments_emitted,
            "max_segments_per_push": self.max_segments_per_push,
            "lag": self.lag,
            "max_lag": self.max_lag,
            "dropped_points": self.dropped_points,
        }

    def _load_stats(self, stats: dict) -> None:
        self.points_pushed = int(stats["points_pushed"])
        self.segments_emitted = int(stats["segments_emitted"])
        self.max_segments_per_push = int(stats["max_segments_per_push"])
        self.lag = int(stats["lag"])
        self.max_lag = int(stats["max_lag"])
        self.dropped_points = int(stats["dropped_points"])


class HubShard:
    """One worker shard: a slice of the hub's devices plus shard counters.

    Today a shard is an in-process partition; the shard boundary is the seam
    future scale-out PRs turn into a thread, process or node without touching
    hub semantics (the checkpoint layout already records the assignment).
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.devices: dict[str, DeviceStream] = {}
        self.points_pushed = 0

    def __len__(self) -> int:
        return len(self.devices)


class StreamHub:
    """Multiplex many concurrent device streams over the unified API.

    Parameters
    ----------
    algorithm, epsilon:
        Default algorithm and error bound for devices registered without an
        explicit override (``epsilon`` is required when the default algorithm
        is error bounded, exactly as for :class:`~repro.api.Simplifier`).
    options:
        Default algorithm options for implicitly registered devices.
    shards:
        Number of worker shards devices are hash-partitioned across.
    sink_factory:
        Optional ``device_id -> sink`` callable; each registered device gets
        its own sink (any object with ``accept(segment)``).
    shared_sink:
        Optional single sink receiving every device's segments.  Mutually
        exclusive with ``sink_factory``.
    on_error:
        ``"collect"`` (default) quarantines a failing device stream and keeps
        the hub running; ``"raise"`` re-raises immediately.  Either way the
        failure is recorded in :attr:`errors`.
    """

    def __init__(
        self,
        *,
        algorithm: str = "operb",
        epsilon: float | None = None,
        options: dict | None = None,
        shards: int = 4,
        sink_factory: Callable[[str], object] | None = None,
        shared_sink: object | None = None,
        on_error: str = "collect",
    ) -> None:
        if shards < 1:
            raise InvalidParameterError(f"shards must be at least 1, got {shards}")
        if on_error not in _ON_ERROR_MODES:
            raise InvalidParameterError(
                f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
            )
        if sink_factory is not None and shared_sink is not None:
            raise InvalidParameterError(
                "pass either sink_factory or shared_sink, not both"
            )
        # Validates the default configuration eagerly (epsilon, options).
        self._default = Simplifier(algorithm, epsilon, **dict(options or {}))
        self.on_error = on_error
        self._sink_factory = sink_factory
        self._shared_sink = shared_sink
        self._shards = [HubShard(index) for index in range(shards)]
        self.errors: list[DeviceError] = []
        self.points_pushed = 0
        self.segments_emitted = 0

    # ------------------------------------------------------------------ #
    # Device management
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> str:
        """Default algorithm for implicitly registered devices."""
        return self._default.algorithm

    @property
    def epsilon(self) -> float:
        """Default error bound for implicitly registered devices."""
        return self._default.epsilon

    @property
    def n_shards(self) -> int:
        """Number of worker shards."""
        return len(self._shards)

    @property
    def shards(self) -> list[HubShard]:
        """The worker shards (read-only view for tests and reporting)."""
        return list(self._shards)

    def shard_of(self, device_id: str) -> HubShard:
        """The shard owning (or that would own) ``device_id``."""
        return self._shards[shard_index(device_id, len(self._shards))]

    def __len__(self) -> int:
        return sum(len(shard) for shard in self._shards)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self.shard_of(device_id).devices

    def devices(self) -> Iterator[DeviceStream]:
        """Iterate over every device stream (shard order, then insertion)."""
        for shard in self._shards:
            yield from shard.devices.values()

    def device(self, device_id: str) -> DeviceStream:
        """Look up one device stream.

        Raises
        ------
        InvalidParameterError
            If the device is not registered.
        """
        try:
            return self.shard_of(device_id).devices[device_id]
        except KeyError:
            raise InvalidParameterError(
                f"device {device_id!r} is not registered with this hub"
            ) from None

    def register_device(
        self,
        device_id: str,
        *,
        algorithm: str | None = None,
        epsilon: float | None = None,
        **opts,
    ) -> DeviceStream:
        """Open a stream for ``device_id``, optionally overriding defaults.

        Raises
        ------
        InvalidParameterError
            If the device is already registered, or the per-device
            configuration is invalid (unknown algorithm/options, bad
            epsilon) — configuration fails fast, before any point arrives.
        """
        shard = self.shard_of(device_id)
        if device_id in shard.devices:
            raise InvalidParameterError(
                f"device {device_id!r} is already registered with this hub"
            )
        if algorithm is None and epsilon is None and not opts:
            simplifier = self._default
        else:
            # Same algorithm: per-device opts overlay the hub defaults.  A
            # different algorithm starts from a clean slate (the defaults may
            # not even be valid options for it).
            effective_opts = {**self._default.opts, **opts} if algorithm is None else opts
            simplifier = Simplifier(
                algorithm if algorithm is not None else self._default.algorithm,
                epsilon if epsilon is not None else self._default.epsilon,
                **effective_opts,
            )
        sink = self._sink_factory(device_id) if self._sink_factory else self._shared_sink
        device = DeviceStream(device_id, simplifier, sink)
        shard.devices[device_id] = device
        return device

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def _record_failure(self, device: DeviceStream, error: Exception) -> None:
        device.error = DeviceError(
            device_id=device.device_id,
            error_type=type(error).__name__,
            message=str(error),
            exception=error,
        )
        self.errors.append(device.error)

    def push(self, device_id: str, point: Point) -> list[SegmentRecord]:
        """Route one fix to its device stream (registering it on first sight).

        Returns the segments this push finalised (already routed to the
        device's sink).  A device that raised earlier is quarantined — its
        stream state is not trusted again: in ``"collect"`` mode its points
        are counted as dropped and ``[]`` is returned; in ``"raise"`` mode a
        :class:`SimplificationError` naming the original failure is raised
        (only the first failing push propagates the original exception).
        """
        shard = self.shard_of(device_id)
        device = shard.devices.get(device_id)
        if device is None:
            device = self.register_device(device_id)
        if device.failed:
            if self.on_error == "raise":
                raise SimplificationError(
                    f"device {device_id!r} is quarantined after "
                    f"{device.error.error_type}: {device.error.message}"
                )
            device.dropped_points += 1
            return []
        try:
            emitted = device.push(point)
        except Exception as error:
            self._record_failure(device, error)
            if self.on_error == "raise":
                raise
            # The failing point was consumed but produced nothing: account
            # for it as dropped so consumed = points_pushed + dropped holds
            # (what replay resumption uses to find its position).
            device.dropped_points += 1
            return []
        shard.points_pushed += 1
        self.points_pushed += 1
        self.segments_emitted += len(emitted)
        return emitted

    def push_many(self, records: Iterable[tuple[str, Point]]) -> int:
        """Route a batch of ``(device_id, point)`` records; returns segments emitted."""
        emitted = 0
        for device_id, point in records:
            emitted += len(self.push(device_id, point))
        return emitted

    def finish_device(self, device_id: str) -> list[SegmentRecord]:
        """Flush one device stream (idempotent for already-finished devices)."""
        device = self.device(device_id)
        if device.finished or device.failed:
            return []
        try:
            emitted = device.finish()
        except Exception as error:
            self._record_failure(device, error)
            if self.on_error == "raise":
                raise
            return []
        self.segments_emitted += len(emitted)
        return emitted

    def finish_all(self) -> dict[str, list[SegmentRecord]]:
        """Flush every live device stream; maps device id -> trailing segments."""
        return {
            device.device_id: self.finish_device(device.device_id)
            for device in list(self.devices())
        }

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> HubStats:
        """Aggregate hub statistics (lag, throughput counters, shard fill)."""
        active = finished = failed = 0
        dropped = 0
        max_lag = 0
        max_burst = 0
        for device in self.devices():
            if device.failed:
                failed += 1
            elif device.finished:
                finished += 1
            else:
                active += 1
            dropped += device.dropped_points
            if device.max_lag > max_lag:
                max_lag = device.max_lag
            if device.max_segments_per_push > max_burst:
                max_burst = device.max_segments_per_push
        return HubStats(
            devices=len(self),
            active=active,
            finished=finished,
            failed=failed,
            points_pushed=self.points_pushed,
            segments_emitted=self.segments_emitted,
            dropped_points=dropped,
            max_lag=max_lag,
            max_segments_per_push=max_burst,
            shard_devices=[len(shard) for shard in self._shards],
            shard_points=[shard.points_pushed for shard in self._shards],
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> dict:
        """JSON-serialisable snapshot of the hub and every device stream.

        Live streams are captured through the simplifiers' ``snapshot()``
        protocol; finished and failed devices are recorded for bookkeeping
        (counters, error descriptions) without stream state.  Restoring the
        payload with :meth:`from_checkpoint` and continuing the ingest
        produces byte-identical downstream segments.

        Raises
        ------
        CheckpointError
            When a live device uses an algorithm whose streaming
            implementation does not support snapshots (see
            ``AlgorithmDescriptor.snapshot_capable``).
        """
        devices = []
        for device in self.devices():
            entry: dict[str, object] = {
                "device_id": device.device_id,
                "algorithm": device.simplifier.algorithm,
                "epsilon": device.simplifier.epsilon,
                "options": dict(device.simplifier.opts),
                "stats": device.stats_dict(),
                "finished": device.finished,
                "failed": None
                if device.error is None
                else {
                    "error_type": device.error.error_type,
                    "message": device.error.message,
                },
                "session": None,
            }
            if not device.finished and not device.failed:
                try:
                    entry["session"] = device.session.snapshot()
                except Exception as error:
                    raise CheckpointError(
                        f"cannot checkpoint device {device.device_id!r} "
                        f"({device.simplifier.algorithm!r}): {error}"
                    ) from error
            devices.append(entry)
        return {
            "format": CHECKPOINT_FORMAT,
            "kind": CHECKPOINT_KIND,
            "hub": {
                "algorithm": self._default.algorithm,
                "epsilon": self._default.epsilon,
                "options": dict(self._default.opts),
                "shards": len(self._shards),
                "on_error": self.on_error,
                "points_pushed": self.points_pushed,
                "segments_emitted": self.segments_emitted,
                "shard_points": [shard.points_pushed for shard in self._shards],
            },
            "devices": devices,
        }

    @classmethod
    def from_checkpoint(
        cls,
        payload: dict,
        *,
        sink_factory: Callable[[str], object] | None = None,
        shared_sink: object | None = None,
    ) -> "StreamHub":
        """Rebuild a hub (and every live device stream) from a checkpoint.

        Sinks are process-local resources (open files, sockets) and are not
        part of the checkpoint; pass fresh ones here.

        Raises
        ------
        CheckpointError
            On a malformed payload or an incompatible format version.
        """
        if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
            raise CheckpointError(
                f"not a stream-hub checkpoint payload (kind="
                f"{payload.get('kind')!r})" if isinstance(payload, dict)
                else "checkpoint payload must be a dict"
            )
        if payload.get("format") != CHECKPOINT_FORMAT:
            raise CheckpointError(
                f"unsupported checkpoint format {payload.get('format')!r}; "
                f"this build reads format {CHECKPOINT_FORMAT}"
            )
        try:
            hub_config = payload["hub"]
            hub = cls(
                algorithm=hub_config["algorithm"],
                epsilon=hub_config["epsilon"],
                options=dict(hub_config.get("options", {})),
                shards=int(hub_config["shards"]),
                sink_factory=sink_factory,
                shared_sink=shared_sink,
                on_error=hub_config["on_error"],
            )
            hub.points_pushed = int(hub_config["points_pushed"])
            hub.segments_emitted = int(hub_config["segments_emitted"])
            for shard, shard_points in zip(hub._shards, hub_config["shard_points"]):
                shard.points_pushed = int(shard_points)
            for entry in payload["devices"]:
                device = hub.register_device(
                    entry["device_id"],
                    algorithm=entry["algorithm"],
                    epsilon=entry["epsilon"],
                    **dict(entry.get("options", {})),
                )
                device._load_stats(entry["stats"])
                session_state = entry.get("session")
                if session_state is not None:
                    device.session = device.simplifier.restore_stream(session_state)
                elif entry.get("finished"):
                    # Consume the fresh session so the device reads finished.
                    device.session.finish()
                failure = entry.get("failed")
                if failure is not None:
                    device.error = DeviceError(
                        device_id=entry["device_id"],
                        error_type=failure["error_type"],
                        message=failure["message"],
                    )
                    hub.errors.append(device.error)
        except CheckpointError:
            raise
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(f"malformed stream-hub checkpoint: {error!r}") from error
        # The registry may have validated but the snapshot protocol errors
        # surface as SimplificationError; let those propagate untouched —
        # they indicate state (not payload-shape) problems.
        return hub

    def __repr__(self) -> str:
        return (
            f"StreamHub(algorithm={self.algorithm!r}, epsilon={self.epsilon!r}, "
            f"shards={self.n_shards}, devices={len(self)})"
        )
