"""Multi-device streaming hub: thousands of concurrent GPS streams, any backend.

The paper's one-pass algorithms are designed to run at the *edge* — one
simplifier per device, O(1) state each — but a trajectory store ingests the
other end of that pipe: a single service terminating many device streams at
once.  :class:`StreamHub` is that ingest surface.  Devices are hash-sharded
across :class:`HubShard` partitions (a deterministic CRC32 shard map, so a
checkpoint restores onto the same layout), each shard owning a dict of
``device_id -> DeviceStream``; every device stream wraps one
:class:`repro.api.StreamSession` opened with ``keep_segments=False`` so hub
memory stays O(devices), not O(points).

Shards execute on a pluggable :mod:`repro.exec` backend (``backend=``):
``"serial"`` keeps every shard inline in the caller (the reference
semantics), while ``"thread"``, ``"process"`` and ``"node"`` drive the
shards on real worker actors — per-shard FIFO mailboxes, single-owner shard
state (no locks in the ingest path), segments and failures streamed back to
the hub as events.  On the backends whose batches cross a serialization
boundary (process pipes, node sockets) the shipped unit is a *columnar wire
frame* (:mod:`repro.streaming.wire`): per-device little-endian ``float64``
columns instead of pickled point tuples, decoded straight into the SoA
blocks the vectorized ingest path consumes.  All backends are contractually
equivalent: the same device log produces byte-identical per-device segments
and byte-identical checkpoints, a property the test suite locks in.

Concurrent workers ingest in *blocks*: every ``push_many`` batch a worker
receives (``block_size`` records, default :data:`DEFAULT_BLOCK_SIZE`) is
regrouped into per-device :class:`~repro.trajectory.PointBlock` SoA blocks
and fed through the simplifiers' ``push_block`` fast path, so shard workers
run the vectorized prefix kernels of :mod:`repro.geometry.kernels` instead
of per-point Python — which both cuts the GIL-bound interpreter work per
record and is what finally lets the thread backend beat serial on hub
ingest for dense streams.  The block boundary is invisible downstream:
per-device segments, statistics and checkpoint payloads are byte-identical
to per-point routing (the serial backend's reference path).

Capabilities:

- **per-device configuration** — each device may use its own algorithm,
  epsilon and options (defaults come from the hub);
- **segment routing** — finalised segments are handed to a per-device sink
  (``sink_factory``) or a shared sink the moment they are emitted; sinks
  are :class:`repro.streaming.sinks.SegmentSink` protocol instances
  (``accept(segment)`` required, ``flush()``/``close()`` optional) and
  always live in the hub's process, whatever the backend.  The hub owns
  the sink lifecycle: attached sinks are flushed and closed exactly once
  on :meth:`StreamHub.close` / ``__exit__``, and a raising sink is
  detached and counted in :attr:`HubStats.sink_failures` instead of
  crashing the ingest;
- **backpressure accounting** — per-device and hub-wide lag statistics (how
  many points are pending in the open segment) expose the latency cost of
  buffering algorithms next to the one-pass ones;
- **error isolation** — a device stream that raises is quarantined and
  recorded as a :class:`DeviceError`, mirroring the fleet executor's
  per-trajectory isolation, instead of sinking the hub (or its sibling
  shards);
- **checkpoint/restore** — :meth:`StreamHub.checkpoint` barriers every
  shard, then serialises every live stream via the simplifiers'
  ``snapshot()`` protocol into one JSON-serialisable payload;
  :meth:`StreamHub.from_checkpoint` resumes with byte-identical downstream
  segments — on any backend, and optionally onto a *different* shard count
  (devices re-shard through the same CRC32 map).

Concurrency caveats (``thread``/``process``/``node`` backends only): ``push`` routes
asynchronously and returns ``[]`` (segments still reach the sinks);
``on_error="raise"`` surfaces a device failure at the next hub call instead
of mid-push (``push_many`` drains its own batches so its failures surface
on return; ``checkpoint()`` alone never raises for device failures, so a
failed hub can always be checkpointed); counters (``points_pushed``,
``segments_emitted``) are authoritative after a synchronising call
(``stats()``, ``checkpoint()``, ``finish_all()``).  Under the process and
node backends, per-device stream objects live in worker processes and are
not addressable — use ``stats()`` and ``checkpoint()``.
"""

from __future__ import annotations

import traceback as _traceback
import zlib
from dataclasses import dataclass
from functools import partial
from typing import Callable, Iterable, Iterator, Sequence

from ..api.session import Simplifier, StreamSession
from ..exceptions import (
    CheckpointError,
    ExecutionError,
    InvalidParameterError,
    ReproError,
    SimplificationError,
)
from ..exec import ExecutionBackend, resolve_backend
from ..geometry.point import Point
from ..trajectory.piecewise import SegmentRecord
from ..trajectory.soa import PointBlock
from .pyramid import PyramidSession, validate_epsilon_ladder
from .sinks import SegmentSink, close_sink, flush_sink
from .wire import POINT_BATCH_FORMATS, decode_frame, encode_frame, group_records

__all__ = [
    "DeviceError",
    "DeviceStream",
    "HubShard",
    "HubStats",
    "StreamHub",
    "shard_index",
]

_ON_ERROR_MODES = ("collect", "raise")

CHECKPOINT_KIND = "stream-hub"
"""Payload discriminator stamped into every hub checkpoint."""

CHECKPOINT_FORMAT = 1
"""Version stamp of the checkpoint layout, bumped on incompatible changes."""

PYRAMID_CHECKPOINT_FORMAT = 2
"""Checkpoint layout of pyramid hubs (``epsilons=[...]``): format 1 plus an
``"epsilons"`` ladder in the hub section, per-device ``"segments_by_level"``
stats and a pyramid snapshot as each live device's ``"session"``.
Single-epsilon hubs keep stamping format 1 byte-identically, and
:meth:`StreamHub.from_checkpoint` reads both."""

DEFAULT_BLOCK_SIZE = 512
"""Default records buffered per actor before ``push_many`` flushes a batch.

Each flushed batch is regrouped by the receiving shard worker into
per-device :class:`~repro.trajectory.PointBlock` SoA blocks, so this is also
the upper bound on the block sizes the vectorized ingest kernels see (a
device's share of a batch is what actually forms its block).  Larger values
amortise more per-record overhead and give the kernels longer runs at the
cost of ingest latency; tune via ``StreamHub(block_size=...)`` /
``serve-replay --block-size``.
"""


def shard_index(device_id: str, n_shards: int) -> int:
    """Deterministic shard of ``device_id`` (CRC32, stable across processes).

    Python's builtin ``hash`` is salted per process, which would scatter a
    restored hub's devices onto different shards than the checkpointing one;
    CRC32 keeps the layout reproducible.
    """
    return zlib.crc32(str(device_id).encode("utf-8")) % n_shards


@dataclass(frozen=True, slots=True)
class DeviceError:
    """One device stream that failed mid-ingest (mirrors ``FleetError``).

    ``exception`` carries the original exception object when the failure
    happened in the hub's process (serial and thread backends); failures
    crossing a process boundary are described by ``error_type``/``message``.
    ``traceback`` preserves the originally formatted traceback on every
    backend (it crosses process boundaries as a plain string); it is
    diagnostic only and never enters checkpoints — formatted frames differ
    between backends, and checkpoints are byte-identical across them.
    """

    device_id: str
    error_type: str
    message: str
    exception: BaseException | None = None
    traceback: str | None = None

    def __str__(self) -> str:
        return f"device {self.device_id}: {self.error_type}: {self.message}"


@dataclass(slots=True)
class HubStats:
    """Aggregate counters of a hub (see :meth:`StreamHub.stats`)."""

    devices: int
    active: int
    finished: int
    failed: int
    points_pushed: int
    segments_emitted: int
    dropped_points: int
    max_lag: int
    max_segments_per_push: int
    shard_devices: list[int]
    shard_points: list[int]
    sink_failures: int = 0
    """Sinks detached after raising (segments stopped reaching them)."""
    batches_shipped: int = 0
    """``push_many`` batches handed to shard workers (0 on the serial
    backend, whose reference path routes per point)."""
    bytes_shipped: int = 0
    """Encoded wire-frame bytes shipped to shard workers.  Non-zero only on
    backends that cross a serialization boundary (process, node); the
    thread backend shares memory and ships object references."""
    frames_decoded: int = 0
    """Wire frames decoded by the shard workers (process/node backends)."""
    epsilons: list[float] | None = None
    """The hub's pyramid ladder, finest first (``None`` on single-epsilon hubs)."""
    segments_by_level: list[int] | None = None
    """Segments emitted per pyramid level, finest first (``None`` when single)."""

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for the CLI and reports)."""
        out: dict[str, object] = {
            "devices": self.devices,
            "active": self.active,
            "finished": self.finished,
            "failed": self.failed,
            "points_pushed": self.points_pushed,
            "segments_emitted": self.segments_emitted,
            "dropped_points": self.dropped_points,
            "max_lag": self.max_lag,
            "max_segments_per_push": self.max_segments_per_push,
            "shard_devices": list(self.shard_devices),
            "shard_points": list(self.shard_points),
            "sink_failures": self.sink_failures,
            "batches_shipped": self.batches_shipped,
            "bytes_shipped": self.bytes_shipped,
            "frames_decoded": self.frames_decoded,
        }
        if self.epsilons is not None:
            out["epsilons"] = list(self.epsilons)
        if self.segments_by_level is not None:
            out["segments_by_level"] = list(self.segments_by_level)
        return out


class DeviceStream:
    """One device's open stream inside the hub.

    Wraps a :class:`~repro.api.StreamSession` (``keep_segments=False`` — the
    sinks own the segments) together with the per-device lag/backpressure
    counters.  Segment routing happens in the owning shard worker, which
    emits every finalised batch back to the hub; the stream itself holds no
    sink reference.  Not constructed directly; use
    :meth:`StreamHub.register_device` / :meth:`StreamHub.push`.
    """

    def __init__(
        self,
        device_id: str,
        simplifier: Simplifier,
        epsilons: tuple[float, ...] | None = None,
    ) -> None:
        self.device_id = device_id
        self.simplifier = simplifier
        self.session: StreamSession | PyramidSession
        if epsilons is None:
            self.session = simplifier.open_stream(keep_segments=False)
            self.pyramid = False
            self.level_segments: list[int] = []
        else:
            self.session = PyramidSession(simplifier, epsilons)
            self.pyramid = True
            self.level_segments = [0] * (len(epsilons) - 1)
        self.points_pushed = 0
        self.segments_emitted = 0
        self.max_segments_per_push = 0
        self.lag = 0
        """Points pushed since the last emitted segment (open-segment backlog)."""
        self.max_lag = 0
        self.dropped_points = 0
        self.error: DeviceError | None = None

    @property
    def algorithm(self) -> str:
        """Name of the algorithm compressing this device's stream."""
        return self.simplifier.algorithm

    @property
    def failed(self) -> bool:
        """Whether this device stream has been quarantined after an error."""
        return self.error is not None

    @property
    def finished(self) -> bool:
        """Whether this device stream has been flushed."""
        return self.session.finished

    def _account(self, emitted: list[SegmentRecord]) -> None:
        """Fold emitted segments into the per-device statistics."""
        count = len(emitted)
        self.segments_emitted += count
        if count > self.max_segments_per_push:
            self.max_segments_per_push = count
        if count:
            self.lag = 0

    def push(self, point: Point) -> list[SegmentRecord]:
        """Feed one fix; returns the segments it finalised."""
        emitted = self.session.push(point)
        self.points_pushed += 1
        self.lag += 1
        if self.lag > self.max_lag:
            self.max_lag = self.lag
        self._account(emitted)
        return emitted

    def iter_block(self, block: PointBlock) -> Iterator[tuple[int, list[SegmentRecord]]]:
        """Feed a block of fixes, yielding traced ``(count, segments)`` steps.

        Driving the session's traced steps lets the per-device backpressure
        counters (lag, max lag, burst size) evolve exactly as they would
        under per-point :meth:`push` — each step covers ``count`` pushes of
        which only the last emitted — so checkpoints stay byte-identical
        whichever ingest form fed the device.
        """
        for count, emitted in self.session.iter_block(block):
            self.points_pushed += count
            self.lag += count
            if self.lag > self.max_lag:
                self.max_lag = self.lag
            self._account(emitted)
            yield count, emitted

    def push_block(self, block: PointBlock) -> list[SegmentRecord]:
        """Feed a block of fixes; returns all segments it finalised."""
        emitted: list[SegmentRecord] = []
        for _, segments in self.iter_block(block):
            emitted.extend(segments)
        return emitted

    def finish(self) -> list[SegmentRecord]:
        """Flush the stream; returns the trailing segments."""
        emitted = self.session.finish()
        self._account(emitted)
        self.lag = 0
        return emitted

    def drain_levels(self) -> list[tuple[int, list[SegmentRecord]]]:
        """Pop coarse-level segments cascaded since the last drain.

        Only meaningful on pyramid streams; folds the drained counts into
        :attr:`level_segments` so per-level statistics stay authoritative.
        """
        drained = self.session.drain_levels()  # type: ignore[union-attr]
        for level, segments in drained:
            self.level_segments[level - 1] += len(segments)
        return drained

    def stats_dict(self) -> dict[str, object]:
        """The per-device counters as a plain dict (checkpointed verbatim).

        ``segments_by_level`` (finest first; index 0 repeats
        ``segments_emitted``) appears only on pyramid streams, so
        single-epsilon checkpoints stay byte-identical to format 1.
        """
        stats: dict[str, object] = {
            "points_pushed": self.points_pushed,
            "segments_emitted": self.segments_emitted,
            "max_segments_per_push": self.max_segments_per_push,
            "lag": self.lag,
            "max_lag": self.max_lag,
            "dropped_points": self.dropped_points,
        }
        if self.pyramid:
            stats["segments_by_level"] = [self.segments_emitted, *self.level_segments]
        return stats

    def _load_stats(self, stats: dict) -> None:
        self.points_pushed = int(stats["points_pushed"])
        self.segments_emitted = int(stats["segments_emitted"])
        self.max_segments_per_push = int(stats["max_segments_per_push"])
        self.lag = int(stats["lag"])
        self.max_lag = int(stats["max_lag"])
        self.dropped_points = int(stats["dropped_points"])
        by_level = stats.get("segments_by_level")
        if by_level is not None and self.pyramid:
            self.level_segments = [int(count) for count in by_level[1:]]


class HubShard:
    """One hub partition: a slice of the hub's devices plus shard counters.

    A shard is owned by exactly one shard worker (a :mod:`repro.exec`
    actor); between barriers, only that worker touches the shard's state —
    which is what lets the thread and process backends run shards
    concurrently without locks in the ingest path.
    """

    def __init__(self, index: int) -> None:
        self.index = index
        self.devices: dict[str, DeviceStream] = {}
        self.points_pushed = 0

    def __len__(self) -> int:
        return len(self.devices)


@dataclass(frozen=True, slots=True)
class _HubConfig:
    """Picklable shard-worker configuration (crosses process boundaries)."""

    algorithm: str
    epsilon: float
    options: dict
    on_error: str
    carry_exceptions: bool
    """Whether device-error events may carry the original exception object
    (true for in-process backends; exceptions do not reliably pickle)."""
    epsilons: tuple[float, ...] | None = None
    """Pyramid ladder (finest first); ``None`` runs single-epsilon streams."""


class _ShardCore:
    """Owns a slice of the hub's shards; runs wherever the backend puts it.

    This is the single implementation of shard semantics for every
    backend: the serial hub calls it inline (through a
    :class:`~repro.exec.SerialActorGroup`), the concurrent hubs run one
    core per worker actor.  The core never raises for *device* failures —
    those are quarantined and emitted as ``("device_error", ...)`` events,
    so one bad stream cannot crash its worker or poison sibling shards.
    """

    def __init__(
        self,
        config: _HubConfig,
        shard_indices: tuple[int, ...],
        emit: Callable[[object], None],
    ) -> None:
        self._config = config
        self._emit = emit
        self._default = Simplifier(
            config.algorithm, config.epsilon, **dict(config.options)
        )
        self.shards: dict[int, HubShard] = {
            index: HubShard(index) for index in shard_indices
        }
        self.frames_decoded = 0
        """Columnar wire frames this core decoded (``push_frame`` path)."""

    # ------------------------------------------------------------------ #
    # Message dispatch (the actor mailbox entry point)
    # ------------------------------------------------------------------ #
    def handle(self, message: tuple):
        kind = message[0]
        if kind == "push":
            return self.push(*message[1:])
        if kind == "push_batch":
            return self.push_batch(message[1])
        if kind == "push_frame":
            return self.push_frame(message[1])
        if kind == "register":
            return self.register(*message[1:])
        if kind == "finish_device":
            return self.finish_device(*message[1:])
        if kind == "finish_all":
            return self.finish_all()
        if kind == "checkpoint":
            return self.checkpoint_entries()
        if kind == "stats":
            return self.stats()
        if kind == "restore":
            return self.restore(*message[1:])
        if kind == "load_shard_points":
            return self.load_shard_points(message[1])
        raise SimplificationError(f"unknown hub shard message {kind!r}")

    # ------------------------------------------------------------------ #
    # Shard semantics
    # ------------------------------------------------------------------ #
    def register(
        self,
        shard_i: int,
        device_id: str,
        algorithm: str | None,
        epsilon: float | None,
        opts: dict,
    ) -> None:
        shard = self.shards[shard_i]
        if device_id in shard.devices:
            raise InvalidParameterError(
                f"device {device_id!r} is already registered with this hub"
            )
        if algorithm is None and epsilon is None and not opts:
            simplifier = self._default
        else:
            # Same algorithm: per-device opts overlay the hub defaults.  A
            # different algorithm starts from a clean slate (the defaults may
            # not even be valid options for it).
            effective_opts = (
                {**self._default.opts, **opts} if algorithm is None else dict(opts)
            )
            simplifier = Simplifier(
                algorithm if algorithm is not None else self._default.algorithm,
                epsilon if epsilon is not None else self._default.epsilon,
                **effective_opts,
            )
        shard.devices[device_id] = DeviceStream(
            device_id, simplifier, epsilons=self._config.epsilons
        )
        return None

    def _emit_levels(self, device: DeviceStream) -> None:
        """Ship coarse pyramid segments cascaded by the last device call."""
        for level, segments in device.drain_levels():
            self._emit(("level_segments", device.device_id, level, segments))

    def _record_failure(self, device: DeviceStream, error: Exception) -> None:
        formatted = "".join(
            _traceback.format_exception(type(error), error, error.__traceback__)
        )
        device.error = DeviceError(
            device_id=device.device_id,
            error_type=type(error).__name__,
            message=str(error),
            exception=error,
            traceback=formatted,
        )
        # The exception object only survives in-process transport; the
        # formatted traceback is a plain string and survives every backend.
        carried = error if self._config.carry_exceptions else None
        self._emit(
            (
                "device_error",
                device.device_id,
                type(error).__name__,
                str(error),
                carried,
                formatted,
            )
        )

    def push(
        self, shard_i: int, device_id: str, point: Point
    ) -> tuple[list[SegmentRecord], bool]:
        """Route one fix; returns ``(emitted segments, counted?)``."""
        shard = self.shards[shard_i]
        device = shard.devices.get(device_id)
        if device is None:
            # The hub registers every device (and its parent-side sink)
            # before dispatching points; registering here instead would
            # desync the parent's device set and silently drop segments.
            raise SimplificationError(
                f"device {device_id!r} reached shard {shard_i} without "
                f"registration — hub/worker device sets are out of sync"
            )
        if device.error is not None:
            # Quarantined: count the point as dropped so consumed ==
            # points_pushed + dropped holds (what replay resumption uses).
            # In serial "raise" mode the hub raises before dispatching here.
            device.dropped_points += 1
            return [], False
        try:
            emitted = device.push(point)
        except Exception as error:  # noqa: BLE001 — isolation is the contract
            self._record_failure(device, error)
            if self._config.on_error == "collect":
                # The failing point was consumed but produced nothing.
                device.dropped_points += 1
            return [], False
        shard.points_pushed += 1
        if emitted:
            self._emit(("segments", device_id, emitted))
            if device.pyramid:
                self._emit_levels(device)
        return emitted, True

    def push_batch(self, records: list[tuple[int, str, Point]]) -> None:
        """Ingest one shipped batch, regrouped into per-device SoA blocks.

        Arrival order *within* each device is preserved (which is all the
        simplifier state depends on), so per-device segments, statistics and
        checkpoints are byte-identical to per-point routing; only the
        cross-device interleaving of sink deliveries changes, which the hub
        has never guaranteed across backends.  Single-point groups skip the
        block machinery.
        """
        grouped: dict[str, list[Point]] = {}
        shard_of: dict[str, int] = {}
        for shard_i, device_id, point in records:
            bucket = grouped.get(device_id)
            if bucket is None:
                grouped[device_id] = [point]
                shard_of[device_id] = shard_i
            else:
                bucket.append(point)
        for device_id, points in grouped.items():
            if len(points) == 1:
                self.push(shard_of[device_id], device_id, points[0])
            else:
                self.push_block(shard_of[device_id], device_id, PointBlock.from_points(points))
        return None

    def push_frame(self, body: bytes) -> None:
        """Ingest one encoded point-batch wire frame (see :mod:`.wire`).

        The columnar twin of :meth:`push_batch`: the parent already grouped
        the records (same first-appearance device order, same within-device
        arrival order) and shipped them as ``float64`` columns, so the
        decoded blocks route through exactly the paths ``push_batch`` would
        take — per-device segments, statistics and checkpoints stay
        byte-identical to every other ingest route.
        """
        name, groups = decode_frame(body)
        if name not in ("point-batch", "point-batch-jsonl"):
            raise SimplificationError(
                f"shard worker received a {name!r} frame on the ingest path"
            )
        self.frames_decoded += 1
        for shard_i, device_id, block in groups:
            if len(block) == 1:
                self.push(shard_i, device_id, block.point(0))
            else:
                self.push_block(shard_i, device_id, block)
        return None

    def push_block(
        self, shard_i: int, device_id: str, block: PointBlock
    ) -> list[SegmentRecord]:
        """Route a block of fixes to one device stream.

        Matches :meth:`push`'s quarantine and accounting semantics point for
        point: a failure mid-block quarantines the device, counts the
        already-ingested prefix as pushed, and counts the failing point and
        the rest of the block as dropped exactly as per-point routing would.
        """
        shard = self.shards[shard_i]
        device = shard.devices.get(device_id)
        if device is None:
            raise SimplificationError(
                f"device {device_id!r} reached shard {shard_i} without "
                f"registration — hub/worker device sets are out of sync"
            )
        if device.error is not None:
            device.dropped_points += len(block)
            return []
        emitted: list[SegmentRecord] = []
        consumed = 0
        try:
            for count, segments in device.iter_block(block):
                consumed += count
                if segments:
                    emitted.extend(segments)
        except Exception as error:  # noqa: BLE001 — isolation is the contract
            shard.points_pushed += consumed
            if emitted:
                self._emit(("segments", device_id, emitted))
                if device.pyramid:
                    self._emit_levels(device)
            self._record_failure(device, error)
            remaining = len(block) - consumed
            if self._config.on_error == "collect":
                # The failing point was consumed but produced nothing, and
                # the rest of the block hits the quarantine branch.
                device.dropped_points += remaining
            else:
                # In "raise" mode the failing push itself is not dropped;
                # the points after it are.
                device.dropped_points += remaining - 1
            return []
        shard.points_pushed += consumed
        if emitted:
            self._emit(("segments", device_id, emitted))
            if device.pyramid:
                self._emit_levels(device)
        return emitted

    def finish_device(self, shard_i: int, device_id: str) -> list[SegmentRecord]:
        shard = self.shards[shard_i]
        device = shard.devices.get(device_id)
        if device is None:
            raise InvalidParameterError(
                f"device {device_id!r} is not registered with this hub"
            )
        if device.finished or device.error is not None:
            return []
        try:
            emitted = device.finish()
        except Exception as error:  # noqa: BLE001 — isolation is the contract
            self._record_failure(device, error)
            return []
        if emitted:
            self._emit(("segments", device_id, emitted))
        if device.pyramid:
            # The cascade flush can finalise coarse tails even when the
            # finest level emitted nothing, so drain unconditionally.
            self._emit_levels(device)
        return emitted

    def finish_all(self) -> list[tuple[int, list[tuple[str, list[SegmentRecord]]]]]:
        out = []
        for shard_i in sorted(self.shards):
            flushed = [
                (device_id, self.finish_device(shard_i, device_id))
                for device_id in list(self.shards[shard_i].devices)
            ]
            out.append((shard_i, flushed))
        return out

    def checkpoint_entries(self) -> list[tuple[int, list[dict], int]]:
        out = []
        for shard_i in sorted(self.shards):
            shard = self.shards[shard_i]
            entries: list[dict] = []
            for device in shard.devices.values():
                entry: dict[str, object] = {
                    "device_id": device.device_id,
                    "algorithm": device.simplifier.algorithm,
                    "epsilon": device.simplifier.epsilon,
                    "options": dict(device.simplifier.opts),
                    "stats": device.stats_dict(),
                    "finished": device.finished,
                    "failed": None
                    if device.error is None
                    else {
                        "error_type": device.error.error_type,
                        "message": device.error.message,
                    },
                    "session": None,
                }
                if not device.finished and device.error is None:
                    try:
                        entry["session"] = device.session.snapshot()
                    except Exception as error:
                        raise CheckpointError(
                            f"cannot checkpoint device {device.device_id!r} "
                            f"({device.simplifier.algorithm!r}): {error}"
                        ) from error
                entries.append(entry)
            out.append((shard_i, entries, shard.points_pushed))
        return out

    def stats(self) -> dict:
        active = finished = failed = 0
        devices = dropped = segments = points = 0
        max_lag = max_burst = 0
        shard_rows = []
        level_counts: list[int] | None = None
        if self._config.epsilons is not None:
            level_counts = [0] * (len(self._config.epsilons) - 1)
        for shard_i in sorted(self.shards):
            shard = self.shards[shard_i]
            shard_rows.append((shard_i, len(shard.devices), shard.points_pushed))
            points += shard.points_pushed
            for device in shard.devices.values():
                devices += 1
                segments += device.segments_emitted
                if device.error is not None:
                    failed += 1
                elif device.finished:
                    finished += 1
                else:
                    active += 1
                dropped += device.dropped_points
                if device.max_lag > max_lag:
                    max_lag = device.max_lag
                if device.max_segments_per_push > max_burst:
                    max_burst = device.max_segments_per_push
                if level_counts is not None and device.pyramid:
                    for i, count in enumerate(device.level_segments):
                        level_counts[i] += count
        return {
            "shards": shard_rows,
            "devices": devices,
            "active": active,
            "finished": finished,
            "failed": failed,
            "dropped": dropped,
            "max_lag": max_lag,
            "max_burst": max_burst,
            "points_pushed": points,
            "segments_emitted": segments,
            "level_segments": level_counts,
            "frames_decoded": self.frames_decoded,
        }

    def restore(self, shard_i: int, entry: dict) -> None:
        self.register(
            shard_i,
            entry["device_id"],
            entry["algorithm"],
            entry["epsilon"],
            dict(entry.get("options", {})),
        )
        device = self.shards[shard_i].devices[entry["device_id"]]
        device._load_stats(entry["stats"])
        session_state = entry.get("session")
        if session_state is not None:
            if device.pyramid:
                # The fresh PyramidSession restores in place (base session
                # plus every cascade level and its priming state).
                device.session.restore(session_state)  # type: ignore[union-attr]
            else:
                device.session = device.simplifier.restore_stream(session_state)
        elif entry.get("finished"):
            # Consume the fresh session so the device reads finished.
            device.session.finish()
        failure = entry.get("failed")
        if failure is not None:
            device.error = DeviceError(
                device_id=entry["device_id"],
                error_type=failure["error_type"],
                message=failure["message"],
            )
        return None

    def load_shard_points(self, mapping: dict) -> None:
        for shard_i, points in mapping.items():
            self.shards[int(shard_i)].points_pushed = int(points)
        return None


class StreamHub:
    """Multiplex many concurrent device streams over the unified API.

    Parameters
    ----------
    algorithm, epsilon:
        Default algorithm and error bound for devices registered without an
        explicit override (``epsilon`` is required when the default algorithm
        is error bounded, exactly as for :class:`~repro.api.Simplifier`).
    epsilons:
        Optional strictly ascending error-bound ladder (finest first).  With
        two or more levels the hub runs an *epsilon pyramid*: every device
        wraps a :class:`~repro.streaming.PyramidSession` that simplifies the
        raw stream once at ``epsilons[0]`` and cascades the emitted segments
        into ``len(epsilons) - 1`` coarser simplifiers in the same pass.
        The finest level is byte-identical to a single-epsilon hub run at
        ``epsilons[0]`` (segments, statistics, snapshots); coarse levels add
        only O(segments) work.  Mutually exclusive with a conflicting
        ``epsilon`` (``epsilons[0]`` *is* the hub epsilon); a one-element
        ladder is exactly ``epsilon=epsilons[0]``.  Pyramid hubs checkpoint
        as format :data:`PYRAMID_CHECKPOINT_FORMAT` and refuse per-device
        overrides (the ladder is hub-wide).
    options:
        Default algorithm options for implicitly registered devices.
    shards:
        Number of partitions devices are hash-sharded across.
    sink_factory:
        Optional ``device_id -> sink`` callable; each registered device gets
        its own :class:`~repro.streaming.sinks.SegmentSink` (the protocol is
        checked on every sink the factory returns).  The hub owns the
        returned sinks: they are flushed and closed on :meth:`close` /
        ``__exit__``.
    shared_sink:
        Optional single :class:`~repro.streaming.sinks.SegmentSink`
        receiving every device's segments.  Mutually exclusive with
        ``sink_factory``; closed exactly once by the hub.
    level_sink_factory:
        Optional ``(device_id, level) -> sink`` callable for pyramid hubs:
        coarse levels ``1..len(epsilons)-1`` route their segments to these
        sinks (the finest level keeps using ``sink_factory`` /
        ``shared_sink``).  Owned by the hub like every other sink; requires
        a multi-level ``epsilons`` ladder.
    on_error:
        ``"collect"`` (default) quarantines a failing device stream and keeps
        the hub running; ``"raise"`` re-raises — immediately on the serial
        backend, at the next hub call on concurrent ones.  Either way the
        failure is recorded in :attr:`errors`.
    backend:
        Execution backend for the shards: ``"serial"`` (default),
        ``"thread"``, ``"process"``, ``"node"``, ``"auto"``, or a
        :class:`repro.exec.ExecutionBackend`.  See the module docstring for
        the concurrent-backend caveats.
    workers:
        Worker count for concurrent backends (clamped to ``shards``; each
        worker owns the shard slice ``[worker::n_workers]``).  Defaults to
        the backend's own default (CPU count).
    block_size:
        Records buffered per shard worker before ``push_many`` ships a
        batch (default :data:`DEFAULT_BLOCK_SIZE`).  Shard workers regroup
        each batch into per-device SoA point blocks and drive the
        simplifiers' vectorized ``push_block`` path, so a device's share of
        a batch is the block size its kernels see.  Purely an execution
        knob: any value produces byte-identical per-device segments and
        checkpoints.
    wire_format:
        Encoding of the batches shipped to process/node shard workers:
        ``"columnar"`` (default, little-endian ``float64`` columns per
        device — the fast path) or ``"jsonl"`` (one JSON object per device
        line, a human-readable debug fallback).  See
        :mod:`repro.streaming.wire`.  Ignored by the in-process backends,
        whose batches never cross a serialization boundary.  Any value
        produces byte-identical per-device segments and checkpoints.
    """

    def __init__(
        self,
        *,
        algorithm: str = "operb",
        epsilon: float | None = None,
        epsilons: Sequence[float] | None = None,
        options: dict | None = None,
        shards: int = 4,
        sink_factory: Callable[[str], SegmentSink] | None = None,
        shared_sink: SegmentSink | None = None,
        level_sink_factory: Callable[[str, int], SegmentSink] | None = None,
        on_error: str = "collect",
        backend: str | ExecutionBackend = "serial",
        workers: int | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
        wire_format: str = "columnar",
    ) -> None:
        if shards < 1:
            raise InvalidParameterError(f"shards must be at least 1, got {shards}")
        if block_size < 1:
            raise InvalidParameterError(
                f"block_size must be at least 1, got {block_size}"
            )
        if wire_format not in POINT_BATCH_FORMATS:
            raise InvalidParameterError(
                f"wire_format must be one of "
                f"{tuple(POINT_BATCH_FORMATS)}, got {wire_format!r}"
            )
        if on_error not in _ON_ERROR_MODES:
            raise InvalidParameterError(
                f"on_error must be one of {_ON_ERROR_MODES}, got {on_error!r}"
            )
        if sink_factory is not None and shared_sink is not None:
            raise InvalidParameterError(
                "pass either sink_factory or shared_sink, not both"
            )
        if shared_sink is not None and not isinstance(shared_sink, SegmentSink):
            raise InvalidParameterError(
                f"shared_sink must satisfy the SegmentSink protocol "
                f"(an accept(segment) method); got {type(shared_sink).__name__}"
            )
        pyramid_epsilons: tuple[float, ...] | None = None
        if epsilons is not None:
            ladder = validate_epsilon_ladder(epsilons)
            if epsilon is not None and float(epsilon) != ladder[0]:
                raise InvalidParameterError(
                    f"epsilon={epsilon!r} conflicts with epsilons[0]={ladder[0]!r}; "
                    f"the ladder's finest level is the hub epsilon"
                )
            epsilon = ladder[0]
            # A one-rung ladder is exactly a single-epsilon hub; collapsing
            # it keeps the checkpoint format (and every downstream byte)
            # identical to passing epsilon= directly.
            if len(ladder) > 1:
                pyramid_epsilons = ladder
        if level_sink_factory is not None and pyramid_epsilons is None:
            raise InvalidParameterError(
                "level_sink_factory requires a multi-level pyramid "
                "(epsilons=[...] with at least two levels)"
            )
        # Validates the default configuration eagerly (epsilon, options).
        self._default = Simplifier(algorithm, epsilon, **dict(options or {}))
        if (
            pyramid_epsilons is not None
            and not self._default.descriptor.pyramid_capable
        ):
            raise InvalidParameterError(
                f"algorithm {self._default.algorithm!r} cannot serve an epsilon "
                f"pyramid: cascading its segment endpoints does not preserve "
                f"the coarse error bound (descriptor.pyramid_capable is false)"
            )
        self._epsilons = pyramid_epsilons
        self._level_sink_factory = level_sink_factory
        self._level_sinks: dict[tuple[str, int], SegmentSink | None] = {}
        self._level_counts: list[int] | None = (
            [0] * (len(pyramid_epsilons) - 1) if pyramid_epsilons else None
        )
        self.on_error = on_error
        self._block_size = block_size
        self._sink_factory = sink_factory
        self._shared_sink = shared_sink
        self._n_shards = shards
        self._backend = resolve_backend(backend, workers=workers)
        self._concurrent = self._backend.name != "serial"
        self._n_actors = min(self._backend.workers, shards) if self._concurrent else 1
        # Backends whose batches cross a serialization boundary ship them as
        # columnar wire frames; the in-process backends pass references.
        self._use_wire = self._backend.name in ("process", "node")
        self._wire_frame = POINT_BATCH_FORMATS[wire_format]
        self.errors: list[DeviceError] = []
        self.points_pushed = 0
        self.segments_emitted = 0
        self.sink_failures = 0
        self.batches_shipped = 0
        self.bytes_shipped = 0
        self._known: set[str] = set()
        self._failed: set[str] = set()
        self._sinks: dict[str, SegmentSink | None] = {}
        self._sinks_closed = False
        self._raise_cursor = 0
        config = _HubConfig(
            algorithm=self._default.algorithm,
            epsilon=self._default.epsilon,
            options=dict(self._default.opts),
            on_error=on_error,
            carry_exceptions=self._backend.name not in ("process", "node"),
            epsilons=pyramid_epsilons,
        )
        factories = [
            partial(_ShardCore, config, tuple(range(actor, shards, self._n_actors)))
            for actor in range(self._n_actors)
        ]
        self._group = self._backend.start_actors(factories, on_event=self._on_actor_event)
        # Serial fast path: the single core is called directly on the hot
        # ingest path, skipping message-tuple construction and dispatch.
        self._serial_core: _ShardCore | None = (
            None if self._concurrent else self._group.handler(0)
        )

    # ------------------------------------------------------------------ #
    # Backend plumbing
    # ------------------------------------------------------------------ #
    def _actor_of(self, shard_i: int) -> int:
        return shard_i % self._n_actors

    def _ship_batch(self, actor: int, buffer: list[tuple[int, str, Point]]) -> None:
        """Hand one buffered ``push_many`` batch to its shard worker.

        In-process backends pass the record list by reference; process and
        node workers receive the batch as one columnar wire frame (grouped
        into per-device ``float64`` columns by :func:`~.wire.group_records`,
        replicating exactly the regrouping ``push_batch`` performs), so the
        only pickled object on the hot path is a single ``bytes`` payload —
        and the node transport ships even that raw.
        """
        self.batches_shipped += 1
        if self._use_wire:
            frame = encode_frame(self._wire_frame, group_records(buffer))
            self.bytes_shipped += len(frame)
            self._group.tell(actor, ("push_frame", frame))
        else:
            self._group.tell(actor, ("push_batch", buffer))

    def _on_actor_event(self, actor: int, event: tuple) -> None:
        """Route one shard-worker event (serialised by the actor group)."""
        kind = event[0]
        if kind == "level_segments":
            _, device_id, level, segments = event
            if self._level_counts is not None:
                self._level_counts[level - 1] += len(segments)
            sink = self._level_sinks.get((device_id, level))
            if sink is not None:
                try:
                    for segment in segments:
                        sink.accept(segment)
                except Exception as error:  # noqa: BLE001 — sink isolation
                    # Same contract as the finest-level branch below: detach
                    # only the raising level's sink, keep the stream (and
                    # the other levels' sinks) running.
                    self._record_sink_failure(
                        device_id,
                        error,
                        f"level-{level} sink rejected segments: {error}",
                        level=level,
                    )
        elif kind == "segments":
            _, device_id, segments = event
            self.segments_emitted += len(segments)
            sink = self._sinks.get(device_id)
            if sink is not None:
                try:
                    for segment in segments:
                        sink.accept(segment)
                except Exception as error:  # noqa: BLE001 — sink isolation
                    # A raising sink (full disk, closed socket) must not
                    # crash the ingest on any backend: record one
                    # DeviceError, count it in ``sink_failures``, stop
                    # routing to the sink, keep the hub running.  The
                    # device stream itself keeps compressing and is NOT
                    # quarantined — sinks are process-local resources, not
                    # stream state (so the device stays out of ``_failed``
                    # and checkpoints as healthy).  In ``"raise"`` mode the
                    # recorded error still surfaces once, with the original
                    # exception, at the next hub call — loud, but the hub
                    # stays usable.  Nulling the sink also dedupes: this
                    # branch runs once per device.
                    self._record_sink_failure(
                        device_id, error, f"sink rejected segments: {error}"
                    )
        elif kind == "device_error":
            _, device_id, error_type, message, exception, formatted = event
            self.errors.append(
                DeviceError(
                    device_id=device_id,
                    error_type=error_type,
                    message=message,
                    exception=exception,
                    traceback=formatted,
                )
            )
            self._failed.add(device_id)

    def _surface_new_failures(self) -> None:
        """In ``"raise"`` mode, raise the oldest not-yet-surfaced failure.

        On the serial backend this runs synchronously after each dispatch,
        reproducing raise-on-the-failing-push semantics with the original
        exception; on concurrent backends it runs at every hub entry point,
        surfacing asynchronous failures at the next call.
        """
        if self.on_error != "raise" or self._raise_cursor >= len(self.errors):
            return
        error = self.errors[self._raise_cursor]
        self._raise_cursor += 1
        if error.exception is not None:
            raise error.exception
        raise SimplificationError(
            f"device {error.device_id!r} failed mid-stream: "
            f"{error.error_type}: {error.message}"
        )

    def _error_for(self, device_id: str) -> DeviceError:
        return next(
            error for error in reversed(self.errors) if error.device_id == device_id
        )

    def _record_sink_failure(
        self, device_id: str, error: Exception, message: str, *, level: int | None = None
    ) -> None:
        """Detach a raising sink and record the failure (once per device).

        ``level`` selects a pyramid level's sink; ``None`` detaches the
        device's finest-level sink.
        """
        self.sink_failures += 1
        if level is None:
            self._sinks[device_id] = None
        else:
            self._level_sinks[(device_id, level)] = None
        self.errors.append(
            DeviceError(
                device_id=device_id,
                error_type=type(error).__name__,
                message=message,
                exception=error,
                traceback="".join(
                    _traceback.format_exception(type(error), error, error.__traceback__)
                ),
            )
        )

    def _register_parent(self, device_id: str) -> None:
        self._known.add(device_id)
        self._attach_sink(device_id)

    def _attach_sink(self, device_id: str) -> None:
        """Create/route the device's sink (runs caller-supplied code)."""
        if self._sink_factory is not None:
            sink = self._sink_factory(device_id)
            if not isinstance(sink, SegmentSink):
                raise InvalidParameterError(
                    f"sink_factory returned a {type(sink).__name__} for device "
                    f"{device_id!r}, which does not satisfy the SegmentSink "
                    f"protocol (an accept(segment) method)"
                )
            self._sinks[device_id] = sink
        elif self._shared_sink is not None:
            self._sinks[device_id] = self._shared_sink
        if self._level_sink_factory is not None and self._epsilons is not None:
            for level in range(1, len(self._epsilons)):
                level_sink = self._level_sink_factory(device_id, level)
                if not isinstance(level_sink, SegmentSink):
                    raise InvalidParameterError(
                        f"level_sink_factory returned a "
                        f"{type(level_sink).__name__} for device {device_id!r} "
                        f"level {level}, which does not satisfy the SegmentSink "
                        f"protocol (an accept(segment) method)"
                    )
                self._level_sinks[(device_id, level)] = level_sink

    def _close_sinks(self) -> None:
        """Flush and close every attached sink exactly once (idempotent).

        A shared sink is attached under every device id; closing dedupes by
        identity so its ``close()`` runs once.  Sinks already detached by
        the failure path are skipped.  A sink that raises while flushing or
        closing is recorded as a sink failure — surfacing like any other
        (``stats().sink_failures``, and in ``"raise"`` mode at the next
        surface point) — without stopping the teardown of the others.
        """
        if self._sinks_closed:
            return
        self._sinks_closed = True
        seen: set[int] = set()
        entries: list[tuple[str, int | None, SegmentSink | None]] = [
            (device_id, None, self._sinks[device_id])
            for device_id in sorted(self._sinks)
        ]
        entries.extend(
            (device_id, level, self._level_sinks[(device_id, level)])
            for device_id, level in sorted(self._level_sinks)
        )
        for device_id, level, sink in entries:
            if sink is None or id(sink) in seen:
                continue
            seen.add(id(sink))
            try:
                flush_sink(sink)
                close_sink(sink)
            except Exception as error:  # noqa: BLE001 — sink isolation
                self._record_sink_failure(
                    device_id, error, f"sink close failed: {error}", level=level
                )

    def _ask_all(self, message: tuple) -> list:
        """Ask every shard worker, overlapping the round-trips.

        Sequential asks would serialise drain/snapshot work across workers
        (worker 1 idles while worker 0 flushes); fanning the asks out from
        short-lived threads makes the cost ~max instead of ~sum.  Replies
        come back indexed by actor.
        """
        if self._n_actors == 1:
            return [self._group.ask(0, message)]
        from concurrent.futures import ThreadPoolExecutor

        with ThreadPoolExecutor(max_workers=self._n_actors) as pool:
            return list(
                pool.map(
                    lambda actor: self._group.ask(actor, message),
                    range(self._n_actors),
                )
            )

    def _sync(self) -> list[dict]:
        """Barrier the shard workers and refresh the hub-level counters."""
        if self._concurrent:
            self._group.barrier()
        replies = self._ask_all(("stats",))
        self.points_pushed = sum(reply["points_pushed"] for reply in replies)
        self.segments_emitted = sum(reply["segments_emitted"] for reply in replies)
        if self._level_counts is not None:
            totals = [0] * len(self._level_counts)
            for reply in replies:
                counts = reply.get("level_segments")
                if counts:
                    for i, count in enumerate(counts):
                        totals[i] += count
            self._level_counts = totals
        return replies

    def _local_shards(self) -> list[HubShard]:
        if self._group.closed:  # uniform across backends (serial included)
            raise ExecutionError("actor group is closed")
        # local_handlers synchronises: the thread group barriers internally,
        # so the returned shard state is quiescent.
        handlers = self._group.local_handlers
        if handlers is None:
            raise SimplificationError(
                f"per-device stream objects are not addressable under the "
                f"{self._backend.name} backend; use stats() or checkpoint()"
            )
        return [
            handlers[self._actor_of(index)].shards[index]
            for index in range(self._n_shards)
        ]

    def close(self) -> None:
        """Shut down the shard workers and close the sinks (idempotent).

        Serial hubs have nothing to release; thread/process hubs stop their
        workers — pending asynchronous pushes are processed first, so every
        in-flight segment reaches its sink before the sinks are flushed and
        closed.  In ``"raise"`` mode, a device failure that has not
        surfaced yet raises here, after the workers have stopped:
        ``close()`` is a hub call too, and must not swallow the failure
        when it is the last one.
        """
        self._group.close()
        self._close_sinks()
        self._surface_new_failures()

    def __enter__(self) -> "StreamHub":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        if exc_type is None:
            self.close()
            return
        try:
            self._group.close()
        except ReproError:
            # Library errors from the teardown (a dead worker, an
            # unpicklable reply) must never mask the in-flight exception.
            pass
        # Sinks still release their resources on the error path; failures
        # are recorded (never raised) so the in-flight exception stays.
        self._close_sinks()

    # ------------------------------------------------------------------ #
    # Device management
    # ------------------------------------------------------------------ #
    @property
    def algorithm(self) -> str:
        """Default algorithm for implicitly registered devices."""
        return self._default.algorithm

    @property
    def epsilon(self) -> float:
        """Default error bound for implicitly registered devices.

        On a pyramid hub this is the finest level (``epsilons[0]``)."""
        return self._default.epsilon

    @property
    def epsilons(self) -> tuple[float, ...] | None:
        """The pyramid ladder, finest first (``None`` on single-epsilon hubs)."""
        return self._epsilons

    @property
    def pyramid(self) -> bool:
        """Whether this hub cascades every stream into coarser levels."""
        return self._epsilons is not None

    @property
    def backend(self) -> str:
        """Name of the execution backend driving the shards."""
        return self._backend.name

    @property
    def n_workers(self) -> int:
        """Number of shard workers (1 on the serial backend)."""
        return self._n_actors

    @property
    def n_shards(self) -> int:
        """Number of hash partitions."""
        return self._n_shards

    @property
    def block_size(self) -> int:
        """Records buffered per worker before ``push_many`` ships a batch."""
        return self._block_size

    @property
    def shards(self) -> list[HubShard]:
        """The live shard objects, in shard order.

        Serial and thread backends share the caller's memory (the thread
        backend barriers first); under the process backend shard state is
        not addressable and this raises :class:`SimplificationError`.
        """
        return self._local_shards()

    def shard_of(self, device_id: str) -> HubShard:
        """The shard owning (or that would own) ``device_id``."""
        return self._local_shards()[shard_index(device_id, self._n_shards)]

    def __len__(self) -> int:
        return len(self._known)

    def __contains__(self, device_id: str) -> bool:
        return device_id in self._known

    def devices(self) -> Iterator[DeviceStream]:
        """Iterate over every device stream (shard order, then insertion).

        Not available under the process backend (see :attr:`shards`).
        """
        for shard in self._local_shards():
            yield from shard.devices.values()

    def device(self, device_id: str) -> DeviceStream:
        """Look up one device stream.

        Raises
        ------
        InvalidParameterError
            If the device is not registered.
        SimplificationError
            Under the process backend (stream objects live in workers).
        ExecutionError
            When the hub has been closed (any backend).
        """
        if device_id not in self._known:
            raise InvalidParameterError(
                f"device {device_id!r} is not registered with this hub"
            )
        shard_i = shard_index(device_id, self._n_shards)
        return self._local_shards()[shard_i].devices[device_id]

    def register_device(
        self,
        device_id: str,
        *,
        algorithm: str | None = None,
        epsilon: float | None = None,
        **opts,
    ) -> DeviceStream | None:
        """Open a stream for ``device_id``, optionally overriding defaults.

        Returns the live :class:`DeviceStream` on in-process backends;
        ``None`` under the process backend (the stream lives in a worker).

        Raises
        ------
        InvalidParameterError
            If the device is already registered, or the per-device
            configuration is invalid (unknown algorithm/options, bad
            epsilon) — configuration fails fast, before any point arrives.
        """
        if device_id in self._known:
            raise InvalidParameterError(
                f"device {device_id!r} is already registered with this hub"
            )
        if self._epsilons is not None and (
            algorithm is not None or epsilon is not None or opts
        ):
            raise InvalidParameterError(
                "per-device overrides are not supported on a pyramid hub; "
                "every device shares the hub-wide epsilons=[...] ladder"
            )
        shard_i = shard_index(device_id, self._n_shards)
        actor = self._actor_of(shard_i)
        self._group.ask(
            actor, ("register", shard_i, device_id, algorithm, epsilon, dict(opts))
        )
        self._register_parent(device_id)
        # The ask round-trip guarantees the registration was processed, so
        # the new entry is readable without a group-wide barrier.
        core = self._group.handler(actor)
        if core is None:
            return None
        return core.shards[shard_i].devices[device_id]

    # ------------------------------------------------------------------ #
    # Ingest
    # ------------------------------------------------------------------ #
    def push(self, device_id: str, point: Point) -> list[SegmentRecord]:
        """Route one fix to its device stream (registering it on first sight).

        On the serial backend, returns the segments this push finalised
        (already routed to the device's sink); concurrent backends route
        asynchronously and return ``[]`` (sinks still receive every
        segment).  A device that raised earlier is quarantined — its stream
        state is not trusted again: in ``"collect"`` mode its points are
        counted as dropped and ``[]`` is returned; in ``"raise"`` mode a
        :class:`SimplificationError` naming the original failure is raised
        (only the first failing push propagates the original exception,
        synchronously on serial, at the next hub call on concurrent
        backends).
        """
        shard_i = shard_index(device_id, self._n_shards)
        actor = self._actor_of(shard_i)
        if self._concurrent:
            self._surface_new_failures()
        if device_id not in self._known:
            self._group.ask(actor, ("register", shard_i, device_id, None, None, {}))
            self._register_parent(device_id)
        elif device_id in self._failed and self.on_error == "raise":
            error = self._error_for(device_id)
            raise SimplificationError(
                f"device {device_id!r} is quarantined after "
                f"{error.error_type}: {error.message}"
            )
        if self._concurrent:
            self._group.tell(actor, ("push", shard_i, device_id, point))
            return []
        if self._group.closed:  # the fast path must not outlive close()
            raise ExecutionError("actor group is closed")
        emitted, counted = self._serial_core.push(shard_i, device_id, point)
        if counted:
            self.points_pushed += 1
        self._surface_new_failures()
        return emitted

    def push_many(self, records: Iterable[tuple[str, Point]]) -> int:
        """Route a batch of ``(device_id, point)`` records.

        Returns the number of segments emitted on the serial backend;
        concurrent backends ingest asynchronously (records are shipped to
        the shard workers in ``block_size``-record batches, which each
        worker regroups into per-device SoA blocks for the simplifiers'
        vectorized ``push_block`` path) and return ``0`` — read
        ``stats().segments_emitted`` after a synchronising call instead.
        The serial backend stays on the per-point reference path, which is
        also what keeps its ``on_error="raise"`` semantics (raise at the
        failing record, later records untouched) exact.
        """
        if not self._concurrent:
            emitted = 0
            for device_id, point in records:
                emitted += len(self.push(device_id, point))
            return emitted
        self._surface_new_failures()  # pending originals surface before any
        # quarantine error derived from them, matching push()'s ordering
        buffers: list[list[tuple[int, str, Point]]] = [
            [] for _ in range(self._n_actors)
        ]

        def flush_all() -> None:
            for actor, buffer in enumerate(buffers):
                if buffer:
                    self._ship_batch(actor, buffer)
                    buffers[actor] = []

        for device_id, point in records:
            shard_i = shard_index(device_id, self._n_shards)
            actor = self._actor_of(shard_i)
            if device_id not in self._known:
                # Ship the buffered records before surfacing: a failure
                # raising here must not strand other devices' buffered
                # points, exactly as in the quarantine branch below.
                flush_all()
                self._surface_new_failures()
                self._group.ask(actor, ("register", shard_i, device_id, None, None, {}))
                self._register_parent(device_id)
            elif device_id in self._failed and self.on_error == "raise":
                # Same quarantine contract as push() and the serial path —
                # but ship the already-buffered records first, so the
                # records preceding the quarantined one are ingested exactly
                # as they would have been serially.
                flush_all()
                error = self._error_for(device_id)
                raise SimplificationError(
                    f"device {device_id!r} is quarantined after "
                    f"{error.error_type}: {error.message}"
                )
            buffers[actor].append((shard_i, device_id, point))
            if len(buffers[actor]) >= self._block_size:
                self._ship_batch(actor, buffers[actor])
                buffers[actor] = []
        flush_all()
        if self.on_error == "raise":
            # Deterministic raise semantics: drain this call's own batches
            # so a device failure inside them surfaces here, not at some
            # later call (or never, if the caller goes straight to close()).
            self._group.barrier()
        self._surface_new_failures()
        return 0

    def finish_device(self, device_id: str) -> list[SegmentRecord]:
        """Flush one device stream (idempotent for already-finished devices)."""
        if device_id not in self._known:
            raise InvalidParameterError(
                f"device {device_id!r} is not registered with this hub"
            )
        shard_i = shard_index(device_id, self._n_shards)
        if self._concurrent:
            self._surface_new_failures()
        emitted = self._group.ask(
            self._actor_of(shard_i), ("finish_device", shard_i, device_id)
        )
        self._surface_new_failures()
        return emitted

    def finish_all(self) -> dict[str, list[SegmentRecord]]:
        """Flush every live device stream; maps device id -> trailing segments.

        Synchronises all backends: pending asynchronous pushes are processed
        before the flush, and the returned mapping is complete on return.
        """
        if self._concurrent:
            self._surface_new_failures()
        by_shard: dict[int, list] = {}
        for reply in self._ask_all(("finish_all",)):
            for shard_i, flushed in reply:
                by_shard[shard_i] = flushed
        result: dict[str, list[SegmentRecord]] = {}
        for shard_i in range(self._n_shards):
            for device_id, emitted in by_shard.get(shard_i, []):
                result[device_id] = emitted
        # The flush already drained every mailbox; refresh the hub-level
        # counters so they are authoritative on return, as documented.
        self._sync()
        self._surface_new_failures()
        return result

    # ------------------------------------------------------------------ #
    # Statistics
    # ------------------------------------------------------------------ #
    def stats(self) -> HubStats:
        """Aggregate hub statistics (lag, throughput counters, shard fill).

        Synchronising: barriers the shard workers first, so the counters
        reflect every push routed before the call.  In ``"raise"`` mode a
        not-yet-surfaced device failure raises here (``checkpoint()`` is the
        one synchronising call that never raises for device failures, so a
        failed hub can always be checkpointed).
        """
        replies = self._sync()
        self._surface_new_failures()
        shard_devices = [0] * self._n_shards
        shard_points = [0] * self._n_shards
        for reply in replies:
            for shard_i, n_devices, points in reply["shards"]:
                shard_devices[shard_i] = n_devices
                shard_points[shard_i] = points
        return HubStats(
            devices=sum(reply["devices"] for reply in replies),
            active=sum(reply["active"] for reply in replies),
            finished=sum(reply["finished"] for reply in replies),
            failed=sum(reply["failed"] for reply in replies),
            points_pushed=self.points_pushed,
            segments_emitted=self.segments_emitted,
            dropped_points=sum(reply["dropped"] for reply in replies),
            max_lag=max(reply["max_lag"] for reply in replies),
            max_segments_per_push=max(reply["max_burst"] for reply in replies),
            shard_devices=shard_devices,
            shard_points=shard_points,
            sink_failures=self.sink_failures,
            batches_shipped=self.batches_shipped,
            bytes_shipped=self.bytes_shipped,
            frames_decoded=sum(reply.get("frames_decoded", 0) for reply in replies),
            epsilons=None if self._epsilons is None else list(self._epsilons),
            segments_by_level=(
                None
                if self._level_counts is None
                else [self.segments_emitted, *self._level_counts]
            ),
        )

    # ------------------------------------------------------------------ #
    # Checkpoint / restore
    # ------------------------------------------------------------------ #
    def checkpoint(self) -> dict:
        """JSON-serialisable snapshot of the hub and every device stream.

        Barriers the shard workers first (every routed point is reflected),
        then captures live streams through the simplifiers' ``snapshot()``
        protocol; finished and failed devices are recorded for bookkeeping
        (counters, error descriptions) without stream state.  For the same
        ingested records the payload is byte-identical whichever backend
        produced it (in ``"raise"`` mode, a surfaced failure interrupts the
        serial backend mid-batch while concurrent workers drain records
        already in flight, so post-failure ``dropped_points`` accounting may
        differ — quarantine a failing device via ``"collect"`` when
        byte-stable checkpoints across backends matter).  Restoring the
        payload with :meth:`from_checkpoint` and continuing the ingest
        produces byte-identical downstream segments.

        Raises
        ------
        CheckpointError
            When a live device uses an algorithm whose streaming
            implementation does not support snapshots (see
            ``AlgorithmDescriptor.snapshot_capable``).
        """
        self._group.barrier()
        by_shard: dict[int, list[dict]] = {}
        shard_points = [0] * self._n_shards
        for reply in self._ask_all(("checkpoint",)):
            for shard_i, entries, points in reply:
                by_shard[shard_i] = entries
                shard_points[shard_i] = points
        devices: list[dict] = []
        for shard_i in range(self._n_shards):
            devices.extend(by_shard.get(shard_i, []))
        # The hub-level counters are fully derivable from the entries (they
        # were recomputed the same way by _sync() before) — refreshing them
        # here spares the periodic-checkpoint path a second per-device walk.
        self.points_pushed = sum(shard_points)
        self.segments_emitted = sum(
            int(entry["stats"]["segments_emitted"]) for entry in devices
        )
        hub_section: dict[str, object] = {
            "algorithm": self._default.algorithm,
            "epsilon": self._default.epsilon,
            "options": dict(self._default.opts),
            "shards": self._n_shards,
            "on_error": self.on_error,
            "points_pushed": self.points_pushed,
            "segments_emitted": self.segments_emitted,
            "shard_points": shard_points,
        }
        if self._epsilons is not None:
            hub_section["epsilons"] = list(self._epsilons)
        return {
            "format": (
                CHECKPOINT_FORMAT
                if self._epsilons is None
                else PYRAMID_CHECKPOINT_FORMAT
            ),
            "kind": CHECKPOINT_KIND,
            "hub": hub_section,
            "devices": devices,
        }

    @classmethod
    def from_checkpoint(
        cls,
        payload: dict,
        *,
        sink_factory: Callable[[str], SegmentSink] | None = None,
        shared_sink: SegmentSink | None = None,
        level_sink_factory: Callable[[str, int], SegmentSink] | None = None,
        shards: int | None = None,
        backend: str | ExecutionBackend = "serial",
        workers: int | None = None,
        block_size: int = DEFAULT_BLOCK_SIZE,
    ) -> "StreamHub":
        """Rebuild a hub (and every live device stream) from a checkpoint.

        Sinks are process-local resources (open files, sockets) and are not
        part of the checkpoint; pass fresh ones here.  ``shards`` restores
        onto a different shard count: devices re-shard deterministically
        through the CRC32 map and per-shard counters are recomputed from the
        per-device ones (the default keeps the checkpointing layout).
        ``backend``/``workers``/``block_size`` choose the execution shape of
        the restored hub independently of the one that checkpointed —
        checkpoints are mutually restorable across backends and block sizes.

        Raises
        ------
        CheckpointError
            On a malformed payload or an incompatible format version.
        """
        if not isinstance(payload, dict) or payload.get("kind") != CHECKPOINT_KIND:
            raise CheckpointError(
                f"not a stream-hub checkpoint payload (kind="
                f"{payload.get('kind')!r})" if isinstance(payload, dict)
                else "checkpoint payload must be a dict"
            )
        payload_format = payload.get("format")
        if payload_format not in (CHECKPOINT_FORMAT, PYRAMID_CHECKPOINT_FORMAT):
            raise CheckpointError(
                f"unsupported checkpoint format {payload_format!r}; this build "
                f"reads formats {CHECKPOINT_FORMAT} (single-epsilon) and "
                f"{PYRAMID_CHECKPOINT_FORMAT} (pyramid)"
            )
        # Caller-supplied arguments are validated before the payload-shape
        # try block: a bad backend/workers/shards argument is the caller's
        # InvalidParameterError, not a "malformed checkpoint".
        executor = resolve_backend(backend, workers=workers)
        if shards is not None and int(shards) < 1:
            raise InvalidParameterError(f"shards must be at least 1, got {shards}")
        try:
            hub_config = payload["hub"]
            stored_epsilons = hub_config.get("epsilons")
            if (payload_format == PYRAMID_CHECKPOINT_FORMAT) != (
                stored_epsilons is not None
            ):
                raise CheckpointError(
                    f"checkpoint format {payload_format!r} is inconsistent with "
                    f"its hub section (epsilons={stored_epsilons!r}); pyramid "
                    f"checkpoints are format {PYRAMID_CHECKPOINT_FORMAT} and "
                    f"carry the ladder"
                )
            n_shards = int(shards) if shards is not None else int(hub_config["shards"])
            hub = cls(
                algorithm=hub_config["algorithm"],
                epsilon=None if stored_epsilons else hub_config["epsilon"],
                epsilons=stored_epsilons,
                options=dict(hub_config.get("options", {})),
                shards=n_shards,
                sink_factory=sink_factory,
                shared_sink=shared_sink,
                level_sink_factory=level_sink_factory,
                on_error=hub_config["on_error"],
                backend=executor,
                workers=workers,
                block_size=block_size,
            )
        except (KeyError, TypeError, ValueError) as error:
            raise CheckpointError(f"malformed stream-hub checkpoint: {error!r}") from error
        try:
            stored_points = [int(points) for points in hub_config["shard_points"]]
            recomputed = [0] * n_shards
            restored_ids: list[str] = []
            for entry in payload["devices"]:
                device_id = entry["device_id"]
                if device_id in hub._known:
                    raise InvalidParameterError(
                        f"device {device_id!r} appears twice in the checkpoint"
                    )
                shard_i = shard_index(device_id, n_shards)
                hub._group.ask(hub._actor_of(shard_i), ("restore", shard_i, entry))
                # Sinks are attached after this payload-domain block: a
                # raising caller-supplied sink_factory must not be relabelled
                # as a malformed checkpoint.
                hub._known.add(device_id)
                restored_ids.append(device_id)
                recomputed[shard_i] += int(entry["stats"]["points_pushed"])
                failure = entry.get("failed")
                if failure is not None:
                    error = DeviceError(
                        device_id=device_id,
                        error_type=failure["error_type"],
                        message=failure["message"],
                    )
                    hub.errors.append(error)
                    hub._failed.add(device_id)
            # Same layout: restore the exact shard counters.  Re-sharded:
            # recompute them from the per-device counters (their sums agree).
            shard_points = (
                stored_points if len(stored_points) == n_shards else recomputed
            )
            per_actor: list[dict[int, int]] = [{} for _ in range(hub._n_actors)]
            for shard_i, points in enumerate(shard_points):
                per_actor[hub._actor_of(shard_i)][shard_i] = points
            for actor, mapping in enumerate(per_actor):
                hub._group.ask(actor, ("load_shard_points", mapping))
            hub.points_pushed = int(hub_config["points_pushed"])
            hub.segments_emitted = int(hub_config["segments_emitted"])
            # Restored failures were surfaced in the checkpointing process;
            # only failures after the restore are new.
            hub._raise_cursor = len(hub.errors)
        except BaseException as error:
            # The hub already spawned its shard workers: never leak them on
            # a failed restore (a resume-retry loop would pile up worker
            # processes otherwise).
            try:
                hub.close()
            except ReproError:
                # Teardown errors (dead workers, restored failures surfacing
                # in "raise" mode) must not mask the restore failure.
                pass
            if isinstance(error, CheckpointError):
                raise
            if isinstance(error, (KeyError, TypeError, ValueError)):
                raise CheckpointError(
                    f"malformed stream-hub checkpoint: {error!r}"
                ) from error
            # The registry may have validated but the snapshot protocol
            # errors surface as SimplificationError; those (and anything
            # else) propagate untouched — they indicate state (not
            # payload-shape) problems.
            raise
        try:
            # Caller-supplied sink code runs outside the payload-shape
            # mapping: its exceptions are the caller's, raised untouched.
            for device_id in restored_ids:
                hub._attach_sink(device_id)
        except BaseException:
            try:
                hub.close()
            except ReproError:
                # Same teardown rule: never mask the sink factory's error.
                pass
            raise
        return hub

    def __repr__(self) -> str:
        return (
            f"StreamHub(algorithm={self.algorithm!r}, epsilon={self.epsilon!r}, "
            f"shards={self.n_shards}, devices={len(self)}, "
            f"backend={self.backend!r})"
        )
