"""End-to-end streaming pipelines: point source -> simplifier -> sink.

This mirrors how the paper's algorithms are meant to be deployed on a mobile
device: GPS fixes arrive one at a time, the simplifier keeps O(1) state, and
every finalised segment is handed to a sink (radio uplink, flash store, ...)
immediately.  The pipeline also records latency-style statistics: how many
points were processed, how many segments were emitted before ``finish`` and
the largest backlog a single push produced.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..api.session import Simplifier
from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .counting import CountingSimplifier
from .sinks import CollectingSink

__all__ = ["PipelineResult", "StreamingPipeline", "run_pipeline"]


@dataclass
class PipelineResult:
    """Outcome of one pipeline run."""

    representation: PiecewiseRepresentation
    points_processed: int
    segments_before_finish: int
    segments_after_finish: int
    max_segments_per_push: int

    @property
    def total_segments(self) -> int:
        """Total number of segments produced by the run."""
        return self.segments_before_finish + self.segments_after_finish


class StreamingPipeline:
    """Drive a streaming simplifier over an iterable of points."""

    def __init__(self, algorithm: str, epsilon: float, **kwargs) -> None:
        self._session = Simplifier(algorithm, epsilon, **kwargs)
        self.algorithm = self._session.algorithm
        self.epsilon = self._session.epsilon

    def run(self, points: Iterable[Point], *, source_size: int | None = None) -> PipelineResult:
        """Process ``points`` and return the pipeline result."""
        # The sink owns the segments; keep_segments=False avoids a second copy
        # in the stream session.
        simplifier = CountingSimplifier(self._session.open_stream(keep_segments=False))
        sink = CollectingSink(algorithm=self.algorithm)
        processed = 0
        for point in points:
            processed += 1
            for segment in simplifier.push(point):
                sink.accept(segment)
        before_finish = simplifier.segments_emitted
        for segment in simplifier.finish():
            sink.accept(segment)
        after_finish = simplifier.segments_emitted - before_finish
        size = source_size if source_size is not None else processed
        return PipelineResult(
            representation=sink.as_representation(size),
            points_processed=processed,
            segments_before_finish=before_finish,
            segments_after_finish=after_finish,
            max_segments_per_push=simplifier.max_segments_per_push,
        )

    def run_trajectory(self, trajectory: Trajectory) -> PipelineResult:
        """Convenience wrapper for whole trajectories."""
        return self.run(iter(trajectory), source_size=len(trajectory))


def run_pipeline(
    trajectory: Trajectory, epsilon: float, *, algorithm: str = "operb", **kwargs
) -> PipelineResult:
    """One-call helper: stream ``trajectory`` through ``algorithm``."""
    return StreamingPipeline(algorithm, epsilon, **kwargs).run_trajectory(trajectory)
