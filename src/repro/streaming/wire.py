"""Columnar wire codec for the hub's shipped batches and control frames.

The concurrent hub ships ingest work to its shard workers as batches.  On
the in-process backends a batch is just a Python list; on the process and
node backends it has to cross a serialization boundary, and pickling a
``list[tuple[int, str, Point]]`` pays per-point object overhead on the
hottest path in the system.  This module makes :class:`PointBlock` the wire
unit instead: a *frame* carries each device's points as three little-endian
``float64`` columns plus the device id, so encoding is three ``tobytes``
calls per device and decoding lands directly in the SoA blocks the
simplifiers' vectorized ``push_block`` path consumes.

Frame model
-----------
A frame body is ``magic (2B, b"RW") | version (1B) | kind (1B) | payload``.
On a byte stream (the node backend's sockets) frames travel length-prefixed:
``u32 LE body length | body`` — see :func:`pack_frame` / :func:`read_frame`.
Inside an in-process message (the process backend's pipes) the body travels
bare, because the pipe already frames messages.

Every frame kind is registered in :data:`FRAME_TYPES` with an explicit
``encode``/``decode`` function pair — the codec never falls back to pickle,
and rule RPA006 machine-checks both properties.  Registered kinds:

====  ===================  ==============================================
kind  name                 payload
====  ===================  ==============================================
0x01  json                 any JSON value (handshakes, control replies)
0x02  point-batch          ``list[(shard, device_id, PointBlock)]``,
                           columnar ``<f8`` x/y/t columns per device
0x03  point-batch-jsonl    same payload, one JSON object per line —
                           human-readable debug fallback
0x04  segment-batch        one ``("segments" | "level_segments", device,
                           level, [SegmentRecord, ...])`` event, columnar
0x05  blob                 opaque ``bytes`` (the transport layer's escape
                           hatch; *this module* never interprets them)
====  ===================  ==============================================

Determinism contract: encoding is a pure function of the payload (stable
key order, no clocks, no ambient state), and every decode reconstructs the
payload bit for bit — ``float64`` columns round-trip exactly through both
the binary and the JSONL form (JSON floats round-trip via ``repr``).
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Any, BinaryIO, Callable, Iterable

import numpy as np

from ..exceptions import WireFormatError
from ..geometry.point import Point
from ..trajectory.piecewise import SegmentRecord
from ..trajectory.soa import PointBlock

__all__ = [
    "WIRE_MAGIC",
    "WIRE_VERSION",
    "JSON_FRAME",
    "POINT_BATCH_FRAME",
    "POINT_BATCH_JSONL_FRAME",
    "SEGMENT_BATCH_FRAME",
    "BLOB_FRAME",
    "POINT_BATCH_FORMATS",
    "FRAME_TYPES",
    "FrameType",
    "register_frame",
    "encode_frame",
    "decode_frame",
    "pack_frame",
    "read_frame",
    "group_records",
    "encode_json",
    "decode_json",
    "encode_point_batch",
    "decode_point_batch",
    "encode_point_batch_jsonl",
    "decode_point_batch_jsonl",
    "encode_segment_batch",
    "decode_segment_batch",
    "encode_blob",
    "decode_blob",
]

WIRE_MAGIC = b"RW"
"""Leading magic bytes of every frame body."""

WIRE_VERSION = 1
"""Wire protocol version; bumped on incompatible layout changes."""

PointBatch = list[tuple[int, str, PointBlock]]
"""Payload type of the point-batch frames: per-device SoA groups, each
tagged with the shard index that owns the device."""

SegmentBatch = tuple[str, str, int, list[SegmentRecord]]
"""Payload type of the segment-batch frame: ``(event kind, device id,
pyramid level, records)`` — exactly one shard-worker segment event."""

_HEADER = struct.Struct("<2sBB")
_LENGTH = struct.Struct("<I")
_GROUP_HEADER = struct.Struct("<IHI")
"""Per-device group header of a point-batch: shard index, device-id byte
length, point count."""
_SEGMENT_HEADER = struct.Struct("<BHII")
"""Segment-batch header: event-kind tag, device-id byte length, level,
record count."""
_SEGMENT_RECORD = struct.Struct("<6d4qB")
"""One segment record: start/end ``(x, y, t)`` as ``<f8``, the four index
counters as ``<i8``, and a patched-endpoint flag byte."""

_SEGMENT_EVENT_TAGS = ("segments", "level_segments")


@dataclass(frozen=True, slots=True)
class FrameType:
    """One registered frame kind and its explicit codec pair."""

    kind: int
    name: str
    encode: Callable[[Any], bytes]
    decode: Callable[[bytes], Any]


FRAME_TYPES: dict[int, FrameType] = {}
"""Registered frame types by kind byte (see :func:`register_frame`)."""

_FRAME_NAMES: dict[str, FrameType] = {}


def register_frame(
    kind: int,
    name: str,
    encode: Callable[[Any], bytes],
    decode: Callable[[bytes], Any],
) -> FrameType:
    """Register a frame kind with its explicit ``encode``/``decode`` pair.

    ``kind`` must be an unused byte value and ``name`` an unused slug; the
    pair contract (every registered kind round-trips through two named
    module-level functions, no pickle anywhere in a wire module) is
    enforced statically by analysis rule RPA006.
    """
    if not 0 < kind < 256:
        raise WireFormatError(f"frame kind must be a byte value in 1..255, got {kind}")
    if kind in FRAME_TYPES:
        raise WireFormatError(f"frame kind {kind:#04x} is already registered")
    if name in _FRAME_NAMES:
        raise WireFormatError(f"frame name {name!r} is already registered")
    frame_type = FrameType(kind, name, encode, decode)
    FRAME_TYPES[kind] = frame_type
    _FRAME_NAMES[name] = frame_type
    return frame_type


# ---------------------------------------------------------------------- #
# Frame envelope
# ---------------------------------------------------------------------- #
def encode_frame(name: str, payload: Any) -> bytes:
    """Encode ``payload`` as one frame body of the named kind."""
    frame_type = _FRAME_NAMES.get(name)
    if frame_type is None:
        raise WireFormatError(
            f"unknown frame type {name!r}; registered: {', '.join(sorted(_FRAME_NAMES))}"
        )
    return _HEADER.pack(WIRE_MAGIC, WIRE_VERSION, frame_type.kind) + frame_type.encode(
        payload
    )


def decode_frame(body: bytes) -> tuple[str, Any]:
    """Decode one frame body; returns ``(frame name, payload)``."""
    if len(body) < _HEADER.size:
        raise WireFormatError(f"frame truncated: {len(body)} bytes is not even a header")
    magic, version, kind = _HEADER.unpack_from(body)
    if magic != WIRE_MAGIC:
        raise WireFormatError(f"bad frame magic {magic!r} (expected {WIRE_MAGIC!r})")
    if version != WIRE_VERSION:
        raise WireFormatError(
            f"unsupported wire version {version} (this codec speaks {WIRE_VERSION})"
        )
    frame_type = FRAME_TYPES.get(kind)
    if frame_type is None:
        raise WireFormatError(f"unknown frame kind {kind:#04x}")
    return frame_type.name, frame_type.decode(body[_HEADER.size :])


def pack_frame(body: bytes) -> bytes:
    """Length-prefix one frame body for a byte stream (``u32 LE`` length)."""
    return _LENGTH.pack(len(body)) + body


def read_frame(reader: BinaryIO) -> bytes | None:
    """Read one length-prefixed frame body from a byte stream.

    Returns ``None`` on a clean end-of-stream (no bytes at all); raises
    :class:`WireFormatError` when the stream ends inside a frame.
    """
    prefix = reader.read(_LENGTH.size)
    if not prefix:
        return None
    if len(prefix) < _LENGTH.size:
        raise WireFormatError("stream ended inside a frame length prefix")
    (length,) = _LENGTH.unpack(prefix)
    body = reader.read(length)
    if len(body) < length:
        raise WireFormatError(
            f"stream ended inside a frame: expected {length} bytes, got {len(body)}"
        )
    return body


def _read_exact(body: bytes, offset: int, size: int, what: str) -> int:
    end = offset + size
    if end > len(body):
        raise WireFormatError(
            f"frame truncated inside {what}: need {size} bytes at offset {offset}, "
            f"have {len(body) - offset}"
        )
    return end


# ---------------------------------------------------------------------- #
# json — control payloads
# ---------------------------------------------------------------------- #
def encode_json(payload: Any) -> bytes:
    """Encode a JSON-serialisable control payload (stable key order)."""
    try:
        text = json.dumps(payload, sort_keys=True, separators=(",", ":"))
    except (TypeError, ValueError) as error:
        raise WireFormatError(f"payload is not JSON-encodable: {error}") from error
    return text.encode("utf-8")


def decode_json(body: bytes) -> Any:
    """Inverse of :func:`encode_json`."""
    try:
        return json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as error:
        raise WireFormatError(f"malformed json frame: {error}") from error


# ---------------------------------------------------------------------- #
# point-batch — the ingest hot path
# ---------------------------------------------------------------------- #
def group_records(records: Iterable[tuple[int, str, Point]]) -> PointBatch:
    """Group shipped ``(shard, device, point)`` records into SoA blocks.

    First-appearance device order and within-device arrival order are both
    preserved — the exact regrouping the shard workers' ``push_batch`` has
    always performed, now done once on the encoding side so the columns can
    go straight onto the wire.
    """
    grouped: dict[str, list[Point]] = {}
    shard_of: dict[str, int] = {}
    for shard_i, device_id, point in records:
        bucket = grouped.get(device_id)
        if bucket is None:
            grouped[device_id] = [point]
            shard_of[device_id] = shard_i
        else:
            bucket.append(point)
    return [
        (shard_of[device_id], device_id, PointBlock.from_points(points))
        for device_id, points in grouped.items()
    ]


def encode_point_batch(payload: PointBatch) -> bytes:
    """Encode per-device point groups as little-endian ``float64`` columns."""
    chunks = [_LENGTH.pack(len(payload))]
    for shard_i, device_id, block in payload:
        ident = device_id.encode("utf-8")
        if len(ident) > 0xFFFF:
            raise WireFormatError(
                f"device id too long for the wire ({len(ident)} utf-8 bytes)"
            )
        chunks.append(_GROUP_HEADER.pack(shard_i, len(ident), len(block)))
        chunks.append(ident)
        chunks.append(np.ascontiguousarray(block.xs, dtype="<f8").tobytes())
        chunks.append(np.ascontiguousarray(block.ys, dtype="<f8").tobytes())
        chunks.append(np.ascontiguousarray(block.ts, dtype="<f8").tobytes())
    return b"".join(chunks)


def _decode_column(body: bytes, offset: int, count: int) -> tuple[np.ndarray, int]:
    end = _read_exact(body, offset, 8 * count, "a float64 column")
    column = np.frombuffer(body, dtype="<f8", count=count, offset=offset)
    # Copy off the wire buffer: blocks outlive the frame, and downstream
    # consumers expect ordinary writable arrays.
    return column.astype(float, copy=True), end


def decode_point_batch(body: bytes) -> PointBatch:
    """Inverse of :func:`encode_point_batch`."""
    offset = _read_exact(body, 0, _LENGTH.size, "the group count")
    (n_groups,) = _LENGTH.unpack_from(body)
    groups: PointBatch = []
    for _ in range(n_groups):
        end = _read_exact(body, offset, _GROUP_HEADER.size, "a group header")
        shard_i, ident_len, n_points = _GROUP_HEADER.unpack_from(body, offset)
        offset = end
        end = _read_exact(body, offset, ident_len, "a device id")
        device_id = body[offset:end].decode("utf-8")
        offset = end
        xs, offset = _decode_column(body, offset, n_points)
        ys, offset = _decode_column(body, offset, n_points)
        ts, offset = _decode_column(body, offset, n_points)
        groups.append((shard_i, device_id, PointBlock(xs, ys, ts)))
    if offset != len(body):
        raise WireFormatError(
            f"point-batch frame has {len(body) - offset} trailing bytes"
        )
    return groups


def encode_point_batch_jsonl(payload: PointBatch) -> bytes:
    """Debug fallback: the point-batch payload as one JSON object per line.

    Byte-for-byte equivalent after a round trip (floats survive JSON via
    ``repr``), just human-readable — switch a hub to it with
    ``wire_format="jsonl"`` when eyeballing shipped traffic.
    """
    lines = []
    for shard_i, device_id, block in payload:
        points = [
            [float(block.xs[i]), float(block.ys[i]), float(block.ts[i])]
            for i in range(len(block))
        ]
        lines.append(
            json.dumps(
                {"device": device_id, "points": points, "shard": shard_i},
                sort_keys=True,
                separators=(",", ":"),
            )
        )
    return "\n".join(lines).encode("utf-8")


def decode_point_batch_jsonl(body: bytes) -> PointBatch:
    """Inverse of :func:`encode_point_batch_jsonl`."""
    groups: PointBatch = []
    if not body:
        return groups
    for line in body.decode("utf-8").split("\n"):
        try:
            entry = json.loads(line)
        except json.JSONDecodeError as error:
            raise WireFormatError(f"malformed point-batch-jsonl line: {error}") from error
        points = entry["points"]
        groups.append(
            (
                int(entry["shard"]),
                str(entry["device"]),
                PointBlock(
                    np.array([p[0] for p in points], dtype=float),
                    np.array([p[1] for p in points], dtype=float),
                    np.array([p[2] for p in points], dtype=float),
                ),
            )
        )
    return groups


# ---------------------------------------------------------------------- #
# segment-batch — shard-worker segment events
# ---------------------------------------------------------------------- #
def encode_segment_batch(payload: SegmentBatch) -> bytes:
    """Encode one segment event columnarly (endpoints as ``<f8`` sextets)."""
    tag, device_id, level, records = payload
    if tag not in _SEGMENT_EVENT_TAGS:
        raise WireFormatError(
            f"segment-batch event kind must be one of {_SEGMENT_EVENT_TAGS}, got {tag!r}"
        )
    ident = device_id.encode("utf-8")
    if len(ident) > 0xFFFF:
        raise WireFormatError(
            f"device id too long for the wire ({len(ident)} utf-8 bytes)"
        )
    chunks = [
        _SEGMENT_HEADER.pack(
            _SEGMENT_EVENT_TAGS.index(tag), len(ident), level, len(records)
        ),
        ident,
    ]
    for record in records:
        flags = (1 if record.patched_start else 0) | (2 if record.patched_end else 0)
        chunks.append(
            _SEGMENT_RECORD.pack(
                record.start.x,
                record.start.y,
                record.start.t,
                record.end.x,
                record.end.y,
                record.end.t,
                record.first_index,
                record.last_index,
                record.point_count,
                record.covered_last_index,
                flags,
            )
        )
    return b"".join(chunks)


def decode_segment_batch(body: bytes) -> SegmentBatch:
    """Inverse of :func:`encode_segment_batch`."""
    offset = _read_exact(body, 0, _SEGMENT_HEADER.size, "the segment-batch header")
    tag_index, ident_len, level, n_records = _SEGMENT_HEADER.unpack_from(body)
    if tag_index >= len(_SEGMENT_EVENT_TAGS):
        raise WireFormatError(f"unknown segment-batch event tag {tag_index}")
    end = _read_exact(body, offset, ident_len, "a device id")
    device_id = body[offset:end].decode("utf-8")
    offset = end
    records = []
    for _ in range(n_records):
        offset_end = _read_exact(body, offset, _SEGMENT_RECORD.size, "a segment record")
        (
            start_x,
            start_y,
            start_t,
            end_x,
            end_y,
            end_t,
            first_index,
            last_index,
            point_count,
            covered_last_index,
            flags,
        ) = _SEGMENT_RECORD.unpack_from(body, offset)
        offset = offset_end
        records.append(
            SegmentRecord(
                start=Point(start_x, start_y, start_t),
                end=Point(end_x, end_y, end_t),
                first_index=first_index,
                last_index=last_index,
                point_count=point_count,
                covered_last_index=covered_last_index,
                patched_start=bool(flags & 1),
                patched_end=bool(flags & 2),
            )
        )
    if offset != len(body):
        raise WireFormatError(
            f"segment-batch frame has {len(body) - offset} trailing bytes"
        )
    return (_SEGMENT_EVENT_TAGS[tag_index], device_id, level, records)


# ---------------------------------------------------------------------- #
# blob — opaque transport payloads
# ---------------------------------------------------------------------- #
def encode_blob(payload: bytes) -> bytes:
    """Pass opaque bytes through unchanged (the transport's escape hatch)."""
    if not isinstance(payload, (bytes, bytearray, memoryview)):
        raise WireFormatError(
            f"blob frames carry bytes, got {type(payload).__name__}"
        )
    return bytes(payload)


def decode_blob(body: bytes) -> bytes:
    """Inverse of :func:`encode_blob`."""
    return bytes(body)


JSON_FRAME = register_frame(0x01, "json", encode_json, decode_json).name
POINT_BATCH_FRAME = register_frame(
    0x02, "point-batch", encode_point_batch, decode_point_batch
).name
POINT_BATCH_JSONL_FRAME = register_frame(
    0x03, "point-batch-jsonl", encode_point_batch_jsonl, decode_point_batch_jsonl
).name
SEGMENT_BATCH_FRAME = register_frame(
    0x04, "segment-batch", encode_segment_batch, decode_segment_batch
).name
BLOB_FRAME = register_frame(0x05, "blob", encode_blob, decode_blob).name

POINT_BATCH_FORMATS = {
    "columnar": POINT_BATCH_FRAME,
    "jsonl": POINT_BATCH_JSONL_FRAME,
}
"""Hub ``wire_format`` knob values and the point-batch frame each selects."""
