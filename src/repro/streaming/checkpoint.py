"""Checkpoint persistence and multi-device point logs.

This module is the durability layer under :class:`repro.streaming.StreamHub`:

- :func:`save_checkpoint` / :func:`load_checkpoint` /
  :func:`restore_hub` persist a hub checkpoint as strict JSON (``NaN`` and
  ``Infinity`` are rejected — every snapshot in the protocol serialises
  finite numbers only) and rebuild a live hub from it;
- :func:`write_point_log` / :func:`read_point_log` store the hub's *input*
  side: a multi-device point log, one JSON object per line
  (``{"device": ..., "x": ..., "y": ..., "t": ...}``), in arrival order —
  the replay format consumed by ``repro-traj serve-replay``.

Checkpoint payloads carry ``format`` (layout version) and ``kind``
discriminators; loaders refuse payloads they cannot faithfully restore
instead of guessing.  Floats survive the JSON round-trip exactly (Python
serialises them via ``repr``), which is what makes a resumed hub's output
byte-identical to an uninterrupted run.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Callable, Iterable, Iterator, TextIO

from ..exceptions import CheckpointError
from ..exec import ExecutionBackend
from ..geometry.point import Point
from .hub import DEFAULT_BLOCK_SIZE, StreamHub

__all__ = [
    "save_checkpoint",
    "load_checkpoint",
    "restore_hub",
    "write_point_log",
    "read_point_log",
]


def save_checkpoint(hub: StreamHub, path: str | Path) -> Path:
    """Checkpoint ``hub`` to ``path`` as strict JSON.

    The file is written atomically (temp file + rename) so a crash during
    checkpointing never leaves a truncated checkpoint behind — the previous
    one, if any, survives intact.
    """
    payload = hub.checkpoint()
    try:
        text = json.dumps(payload, indent=2, sort_keys=True, allow_nan=False) + "\n"
    except ValueError as error:
        raise CheckpointError(
            f"hub state is not strict-JSON serialisable: {error}"
        ) from error
    path = Path(path)
    temporary = path.with_name(path.name + ".tmp")
    temporary.write_text(text)
    temporary.replace(path)
    return path


def load_checkpoint(path: str | Path) -> dict:
    """Load and structurally validate a checkpoint payload.

    Raises
    ------
    CheckpointError
        When the file is unreadable, not valid JSON, or not a checkpoint
        payload (missing the ``format``/``kind`` discriminators).
    """
    try:
        payload = json.loads(Path(path).read_text())
    except OSError as error:
        raise CheckpointError(f"cannot read checkpoint {str(path)!r}: {error}") from error
    except ValueError as error:
        raise CheckpointError(
            f"checkpoint {str(path)!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or "format" not in payload or "kind" not in payload:
        raise CheckpointError(
            f"checkpoint {str(path)!r} is missing the format/kind discriminators"
        )
    return payload


def restore_hub(
    source: str | Path | dict,
    *,
    sink_factory: Callable[[str], object] | None = None,
    shared_sink: object | None = None,
    level_sink_factory: Callable[[str, int], object] | None = None,
    shards: int | None = None,
    backend: str | ExecutionBackend = "serial",
    workers: int | None = None,
    block_size: int = DEFAULT_BLOCK_SIZE,
) -> StreamHub:
    """One-call resume: load a checkpoint (path or payload) into a live hub.

    Sinks are process-local resources and are not checkpointed; pass fresh
    ones here — including ``level_sink_factory`` when resuming a pyramid
    checkpoint whose coarse levels should keep flowing somewhere.
    ``shards`` re-shards the devices onto a different partition count, and
    ``backend``/``workers``/``block_size`` pick the execution shape of the
    restored hub — all independent of the checkpointing hub's layout (see
    :meth:`StreamHub.from_checkpoint`).
    """
    payload = source if isinstance(source, dict) else load_checkpoint(source)
    return StreamHub.from_checkpoint(
        payload,
        sink_factory=sink_factory,
        shared_sink=shared_sink,
        level_sink_factory=level_sink_factory,
        shards=shards,
        backend=backend,
        workers=workers,
        block_size=block_size,
    )


def write_point_log(
    records: Iterable[tuple[str, Point]], destination: str | Path | TextIO
) -> int:
    """Write ``(device_id, point)`` records as a JSONL point log.

    Returns the number of records written.  The log preserves arrival order
    across devices — exactly what a replay needs to reproduce an ingest run.
    Path destinations are written atomically (temp file + rename), so a
    failure mid-write — including a non-finite coordinate, reported as
    :class:`CheckpointError` — never leaves a truncated log behind.
    """
    if isinstance(destination, (str, Path)):
        destination = Path(destination)
        temporary = destination.with_name(destination.name + ".tmp")
        try:
            with open(temporary, "w") as handle:
                written = _write_point_records(records, handle)
        except BaseException:
            temporary.unlink(missing_ok=True)
            raise
        temporary.replace(destination)
        return written
    return _write_point_records(records, destination)


def _write_point_records(records: Iterable[tuple[str, Point]], handle: TextIO) -> int:
    written = 0
    for device_id, point in records:
        try:
            line = json.dumps(
                {"device": str(device_id), "x": point.x, "y": point.y, "t": point.t},
                allow_nan=False,
            )
        except ValueError as error:
            raise CheckpointError(
                f"point-log record {written} for device {device_id!r} is not "
                f"strict-JSON serialisable: {error}"
            ) from error
        handle.write(line + "\n")
        written += 1
    return written


def read_point_log(source: str | Path | TextIO) -> Iterator[tuple[str, Point]]:
    """Iterate the ``(device_id, point)`` records of a JSONL point log.

    Raises
    ------
    CheckpointError
        On a malformed line (bad JSON or missing fields), naming the line
        number.
    """
    if isinstance(source, (str, Path)):
        handle: TextIO = open(source)
        owns_handle = True
    else:
        handle = source
        owns_handle = False
    try:
        for line_number, raw_line in enumerate(handle, start=1):
            text = raw_line.strip()
            if not text:
                continue
            try:
                record = json.loads(text)
                device_id = str(record["device"])
                point = Point(float(record["x"]), float(record["y"]), float(record.get("t", 0.0)))
            except (ValueError, KeyError, TypeError) as error:
                raise CheckpointError(
                    f"malformed point-log line {line_number}: {error!r}"
                ) from error
            yield device_id, point
    finally:
        if owns_handle:
            handle.close()
