"""Sinks that consume the segments produced by a streaming simplifier.

A sink receives finalised :class:`~repro.trajectory.piecewise.SegmentRecord`
objects one at a time (exactly as a radio uplink or an on-device store
would).  The contract is the runtime-checkable :class:`SegmentSink`
protocol: ``accept(segment)`` is required; ``flush()`` and ``close()`` are
optional lifecycle hooks that owners (the hub, the fleet executor) invoke
through :func:`flush_sink` / :func:`close_sink` when present.

Three in-package sinks are provided — an in-memory collector, a CSV writer
for the retained vertices and a simple statistics accumulator — and
:class:`repro.store.StoreSink` persists segments into the queryable
segment store.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import Protocol, TextIO, runtime_checkable

from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord

__all__ = [
    "SegmentSink",
    "CollectingSink",
    "CsvSegmentSink",
    "StatisticsSink",
    "close_sink",
    "flush_sink",
]


@runtime_checkable
class SegmentSink(Protocol):
    """Structural contract for consumers of finalised segments.

    Any object with an ``accept(segment)`` method satisfies the protocol
    (``isinstance(obj, SegmentSink)`` checks it at runtime).  Two optional
    lifecycle methods are recognised when present:

    - ``flush()`` — push buffered state downstream without ending the sink;
    - ``close()`` — release resources; the sink may reject further accepts.

    Owners call the optional hooks through :func:`flush_sink` and
    :func:`close_sink`, which no-op when a sink does not define them —
    plain collectors stay exactly as simple as before.
    """

    def accept(self, segment: SegmentRecord) -> None:
        """Receive one finalised segment."""
        ...


def flush_sink(sink: object) -> None:
    """Invoke ``sink.flush()`` when the sink defines it (else no-op)."""
    flush = getattr(sink, "flush", None)
    if callable(flush):
        flush()


def close_sink(sink: object) -> None:
    """Invoke ``sink.close()`` when the sink defines it (else no-op)."""
    close = getattr(sink, "close", None)
    if callable(close):
        close()


class CollectingSink:
    """Accumulate segments in memory and expose them as a representation."""

    def __init__(self, *, algorithm: str = "") -> None:
        self.segments: list[SegmentRecord] = []
        self.algorithm = algorithm

    def accept(self, segment: SegmentRecord) -> None:
        """Receive one finalised segment."""
        self.segments.append(segment)

    def as_representation(self, source_size: int) -> PiecewiseRepresentation:
        """Wrap the collected segments into a piecewise representation."""
        return PiecewiseRepresentation(
            segments=list(self.segments), source_size=source_size, algorithm=self.algorithm
        )


class CsvSegmentSink:
    """Stream finalised segments to a CSV file as they are produced."""

    def __init__(self, destination: str | Path | TextIO) -> None:
        if isinstance(destination, (str, Path)):
            self._handle: TextIO = open(destination, "w", newline="")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self._writer = csv.writer(self._handle)
        self._writer.writerow(
            ["start_x", "start_y", "start_t", "end_x", "end_y", "end_t", "first_index", "last_index"]
        )
        self.rows_written = 0

    def accept(self, segment: SegmentRecord) -> None:
        """Write one finalised segment as a CSV row."""
        self._writer.writerow(
            [
                repr(segment.start.x),
                repr(segment.start.y),
                repr(segment.start.t),
                repr(segment.end.x),
                repr(segment.end.y),
                repr(segment.end.t),
                segment.first_index,
                segment.last_index,
            ]
        )
        self.rows_written += 1

    def close(self) -> None:
        """Close the underlying file if this sink opened it."""
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "CsvSegmentSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StatisticsSink:
    """Accumulate simple statistics without keeping the segments."""

    def __init__(self) -> None:
        self.segments_received = 0
        self.points_covered = 0
        self.anomalous_segments = 0
        self.total_length = 0.0

    def accept(self, segment: SegmentRecord) -> None:
        """Fold one finalised segment into the running statistics."""
        self.segments_received += 1
        self.points_covered += segment.point_count
        self.total_length += segment.length
        if segment.is_anomalous:
            self.anomalous_segments += 1
