"""Sinks that consume the segments produced by a streaming simplifier.

A sink receives finalised :class:`~repro.trajectory.piecewise.SegmentRecord`
objects one at a time (exactly as a radio uplink or an on-device store
would).  Three sinks are provided: an in-memory collector, a CSV writer for
the retained vertices and a simple statistics accumulator.
"""

from __future__ import annotations

import csv
from pathlib import Path
from typing import TextIO

from ..trajectory.piecewise import PiecewiseRepresentation, SegmentRecord

__all__ = ["CollectingSink", "CsvSegmentSink", "StatisticsSink"]


class CollectingSink:
    """Accumulate segments in memory and expose them as a representation."""

    def __init__(self, *, algorithm: str = "") -> None:
        self.segments: list[SegmentRecord] = []
        self.algorithm = algorithm

    def accept(self, segment: SegmentRecord) -> None:
        """Receive one finalised segment."""
        self.segments.append(segment)

    def as_representation(self, source_size: int) -> PiecewiseRepresentation:
        """Wrap the collected segments into a piecewise representation."""
        return PiecewiseRepresentation(
            segments=list(self.segments), source_size=source_size, algorithm=self.algorithm
        )


class CsvSegmentSink:
    """Stream finalised segments to a CSV file as they are produced."""

    def __init__(self, destination: str | Path | TextIO) -> None:
        if isinstance(destination, (str, Path)):
            self._handle: TextIO = open(destination, "w", newline="")
            self._owns_handle = True
        else:
            self._handle = destination
            self._owns_handle = False
        self._writer = csv.writer(self._handle)
        self._writer.writerow(
            ["start_x", "start_y", "start_t", "end_x", "end_y", "end_t", "first_index", "last_index"]
        )
        self.rows_written = 0

    def accept(self, segment: SegmentRecord) -> None:
        """Write one finalised segment as a CSV row."""
        self._writer.writerow(
            [
                repr(segment.start.x),
                repr(segment.start.y),
                repr(segment.start.t),
                repr(segment.end.x),
                repr(segment.end.y),
                repr(segment.end.t),
                segment.first_index,
                segment.last_index,
            ]
        )
        self.rows_written += 1

    def close(self) -> None:
        """Close the underlying file if this sink opened it."""
        if self._owns_handle:
            self._handle.close()

    def __enter__(self) -> "CsvSegmentSink":
        return self

    def __exit__(self, *exc_info) -> None:
        self.close()


class StatisticsSink:
    """Accumulate simple statistics without keeping the segments."""

    def __init__(self) -> None:
        self.segments_received = 0
        self.points_covered = 0
        self.anomalous_segments = 0
        self.total_length = 0.0

    def accept(self, segment: SegmentRecord) -> None:
        """Fold one finalised segment into the running statistics."""
        self.segments_received += 1
        self.points_covered += segment.point_count
        self.total_length += segment.length
        if segment.is_anomalous:
            self.anomalous_segments += 1
