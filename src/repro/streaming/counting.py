"""Accounting wrappers that make the one-pass property observable.

The paper's central claim is that OPERB examines each data point once and
only once.  :class:`CountingPointSource` hands out points while counting how
many times each one was requested, and :class:`CountingSimplifier` wraps any
streaming simplifier and counts pushes, emissions and peak pending output.
Tests and benchmarks use these wrappers to verify (rather than assume) the
one-pass and O(1)-output-latency behaviour.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterator

from ..geometry.point import Point
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import SegmentRecord

__all__ = ["CountingPointSource", "CountingSimplifier"]


class CountingPointSource:
    """Iterate over a trajectory while counting per-point accesses."""

    def __init__(self, trajectory: Trajectory) -> None:
        self._trajectory = trajectory
        self.access_counts: Counter[int] = Counter()

    def __len__(self) -> int:
        return len(self._trajectory)

    def __iter__(self) -> Iterator[Point]:
        for index in range(len(self._trajectory)):
            yield self.get(index)

    def get(self, index: int) -> Point:
        """Fetch one point, recording the access."""
        self.access_counts[index] += 1
        return self._trajectory[index]

    @property
    def max_accesses(self) -> int:
        """The largest number of times any single point was requested."""
        if not self.access_counts:
            return 0
        return max(self.access_counts.values())

    @property
    def total_accesses(self) -> int:
        """Total number of point fetches."""
        return sum(self.access_counts.values())


class CountingSimplifier:
    """Wrap a streaming simplifier and record push/emit statistics."""

    def __init__(self, inner) -> None:
        self.inner = inner
        self.pushes = 0
        self.segments_emitted = 0
        self.max_segments_per_push = 0

    def push(self, point: Point) -> list[SegmentRecord]:
        """Forward the push, recording how many segments it released."""
        self.pushes += 1
        emitted = self.inner.push(point)
        self.segments_emitted += len(emitted)
        self.max_segments_per_push = max(self.max_segments_per_push, len(emitted))
        return emitted

    def finish(self) -> list[SegmentRecord]:
        """Forward the finish call, recording the flushed segments."""
        emitted = self.inner.finish()
        self.segments_emitted += len(emitted)
        return emitted
