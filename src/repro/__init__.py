"""repro — One-Pass Error Bounded Trajectory Simplification (OPERB / OPERB-A).

A from-scratch Python reproduction of Lin et al., *One-Pass Error Bounded
Trajectory Simplification*, PVLDB 10(7), 2017, together with every baseline
and substrate the paper's evaluation depends on: the Douglas–Peucker family,
open-window algorithms, BQS/FBQS, trajectory containers and I/O, synthetic
GPS workload generators, quality metrics and an experiment harness that
regenerates every table and figure of the paper's Section 6.

Quick start
-----------
Every algorithm is described by an :class:`~repro.api.AlgorithmDescriptor`
in one registry, and the :class:`~repro.api.Simplifier` session facade
routes batch, streaming and fleet workloads through it:

>>> from repro import Simplifier, evaluate, generate_trajectory
>>> trajectory = generate_trajectory("sercar", 5_000, seed=7)
>>> session = Simplifier("operb", epsilon=40.0)
>>> compressed = session.run(trajectory)                      # batch
>>> evaluate(trajectory, compressed, epsilon=40.0).error_bound_satisfied
True

Streaming (one fix at a time, as on a GPS device) and fleet-scale execution
use the same session:

>>> with session.open_stream() as stream:
...     segments = stream.feed(trajectory)      # push() also works per-fix
...     representation = stream.result()
>>> fleet_result = session.run_many([trajectory] * 8, workers=4)
>>> len(fleet_result.successful())
8

``repro.api.register_algorithm`` adds new algorithms to the same registry,
making them available to the CLI, the experiment harness and the streaming
pipelines at once.  The legacy ``simplify`` / ``get_algorithm`` /
``make_streaming_simplifier`` entry points keep working as deprecation
shims.
"""

from ._version import __version__
from .algorithms import (
    ALGORITHMS,
    bqs,
    dead_reckoning,
    douglas_peucker,
    douglas_peucker_sed,
    fbqs,
    get_algorithm,
    list_algorithms,
    opw,
    opw_tr,
    simplify,
    uniform_sampling,
)
from .api import (
    AlgorithmDescriptor,
    FleetError,
    FleetResult,
    Simplifier,
    StreamSession,
    get_descriptor,
    list_descriptors,
    register_algorithm,
)
from .core import (
    OPERBASimplifier,
    OPERBSimplifier,
    OperbAConfig,
    OperbConfig,
    operb,
    operb_a,
    raw_operb,
    raw_operb_a,
)
from .datasets import (
    GEOLIFE,
    PROFILES,
    SERCAR,
    TAXI,
    TRUCK,
    DatasetProfile,
    generate_dataset,
    generate_trajectory,
    get_profile,
    load_geolife,
)
from .exceptions import (
    CheckpointError,
    DatasetError,
    ExecutionError,
    ExperimentError,
    FleetExecutionError,
    InvalidParameterError,
    InvalidTrajectoryError,
    ReproError,
    SimplificationError,
    UnknownAlgorithmError,
)
from .geometry import DirectedSegment, LocalProjection, Point
from .metrics import (
    EvaluationReport,
    average_error,
    check_error_bound,
    compression_ratio,
    evaluate,
    evaluate_fleet,
    fleet_compression_ratio,
    max_error,
    segment_size_distribution,
)
from .streaming import (
    StreamHub,
    StreamingPipeline,
    make_streaming_simplifier,
    restore_hub,
    run_pipeline,
    save_checkpoint,
)
from .trajectory import PiecewiseRepresentation, PointBlock, SegmentRecord, Trajectory

__all__ = [
    "ALGORITHMS",
    "AlgorithmDescriptor",
    "CheckpointError",
    "DatasetError",
    "ExecutionError",
    "DatasetProfile",
    "DirectedSegment",
    "EvaluationReport",
    "ExperimentError",
    "FleetError",
    "FleetExecutionError",
    "FleetResult",
    "GEOLIFE",
    "InvalidParameterError",
    "InvalidTrajectoryError",
    "LocalProjection",
    "OPERBASimplifier",
    "OPERBSimplifier",
    "OperbAConfig",
    "OperbConfig",
    "PROFILES",
    "PiecewiseRepresentation",
    "Point",
    "PointBlock",
    "ReproError",
    "SERCAR",
    "SegmentRecord",
    "SimplificationError",
    "Simplifier",
    "StreamHub",
    "StreamSession",
    "StreamingPipeline",
    "TAXI",
    "TRUCK",
    "Trajectory",
    "UnknownAlgorithmError",
    "__version__",
    "average_error",
    "bqs",
    "check_error_bound",
    "compression_ratio",
    "dead_reckoning",
    "douglas_peucker",
    "douglas_peucker_sed",
    "evaluate",
    "evaluate_fleet",
    "fbqs",
    "fleet_compression_ratio",
    "generate_dataset",
    "generate_trajectory",
    "get_algorithm",
    "get_descriptor",
    "get_profile",
    "list_algorithms",
    "list_descriptors",
    "load_geolife",
    "make_streaming_simplifier",
    "max_error",
    "operb",
    "operb_a",
    "opw",
    "opw_tr",
    "raw_operb",
    "raw_operb_a",
    "register_algorithm",
    "restore_hub",
    "run_pipeline",
    "save_checkpoint",
    "segment_size_distribution",
    "simplify",
    "uniform_sampling",
]
