"""repro — One-Pass Error Bounded Trajectory Simplification (OPERB / OPERB-A).

A from-scratch Python reproduction of Lin et al., *One-Pass Error Bounded
Trajectory Simplification*, PVLDB 10(7), 2017, together with every baseline
and substrate the paper's evaluation depends on: the Douglas–Peucker family,
open-window algorithms, BQS/FBQS, trajectory containers and I/O, synthetic
GPS workload generators, quality metrics and an experiment harness that
regenerates every table and figure of the paper's Section 6.

Quick start
-----------
>>> from repro import generate_trajectory, simplify, evaluate
>>> trajectory = generate_trajectory("sercar", 5_000, seed=7)
>>> compressed = simplify(trajectory, epsilon=40.0, algorithm="operb")
>>> report = evaluate(trajectory, compressed, epsilon=40.0)
>>> report.error_bound_satisfied
True
"""

from ._version import __version__
from .algorithms import (
    ALGORITHMS,
    bqs,
    dead_reckoning,
    douglas_peucker,
    douglas_peucker_sed,
    fbqs,
    get_algorithm,
    list_algorithms,
    opw,
    opw_tr,
    simplify,
    uniform_sampling,
)
from .core import (
    OPERBASimplifier,
    OPERBSimplifier,
    OperbAConfig,
    OperbConfig,
    operb,
    operb_a,
    raw_operb,
    raw_operb_a,
)
from .datasets import (
    GEOLIFE,
    PROFILES,
    SERCAR,
    TAXI,
    TRUCK,
    DatasetProfile,
    generate_dataset,
    generate_trajectory,
    get_profile,
    load_geolife,
)
from .exceptions import (
    DatasetError,
    ExperimentError,
    InvalidParameterError,
    InvalidTrajectoryError,
    ReproError,
    SimplificationError,
    UnknownAlgorithmError,
)
from .geometry import DirectedSegment, LocalProjection, Point
from .metrics import (
    EvaluationReport,
    average_error,
    check_error_bound,
    compression_ratio,
    evaluate,
    evaluate_fleet,
    fleet_compression_ratio,
    max_error,
    segment_size_distribution,
)
from .streaming import StreamingPipeline, make_streaming_simplifier, run_pipeline
from .trajectory import PiecewiseRepresentation, SegmentRecord, Trajectory

__all__ = [
    "ALGORITHMS",
    "DatasetError",
    "DatasetProfile",
    "DirectedSegment",
    "EvaluationReport",
    "ExperimentError",
    "GEOLIFE",
    "InvalidParameterError",
    "InvalidTrajectoryError",
    "LocalProjection",
    "OPERBASimplifier",
    "OPERBSimplifier",
    "OperbAConfig",
    "OperbConfig",
    "PROFILES",
    "PiecewiseRepresentation",
    "Point",
    "ReproError",
    "SERCAR",
    "SegmentRecord",
    "SimplificationError",
    "StreamingPipeline",
    "TAXI",
    "TRUCK",
    "Trajectory",
    "UnknownAlgorithmError",
    "__version__",
    "average_error",
    "bqs",
    "check_error_bound",
    "compression_ratio",
    "dead_reckoning",
    "douglas_peucker",
    "douglas_peucker_sed",
    "evaluate",
    "evaluate_fleet",
    "fbqs",
    "fleet_compression_ratio",
    "generate_dataset",
    "generate_trajectory",
    "get_algorithm",
    "get_profile",
    "list_algorithms",
    "load_geolife",
    "make_streaming_simplifier",
    "max_error",
    "operb",
    "operb_a",
    "opw",
    "opw_tr",
    "raw_operb",
    "raw_operb_a",
    "run_pipeline",
    "segment_size_distribution",
    "simplify",
    "uniform_sampling",
]
