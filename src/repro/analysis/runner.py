"""Two-pass analysis driver: build the project index, then run every rule.

The runner walks the requested paths, parses each ``.py`` file once, builds
the shared :class:`~repro.analysis.astutil.ProjectIndex` from *all* parsed
modules (so cross-file rules see the whole tree even when a single file is
analysed alongside it), and feeds each module through each rule.  Files
that fail to parse become ``RPA000`` findings instead of crashing the run —
a linter must always produce a report.
"""

from __future__ import annotations

import os
from typing import Iterable

from ..exceptions import InvalidParameterError
from . import rules as _builtin_rules  # noqa: F401 — registers the rule set
from .astutil import ModuleInfo, ProjectIndex, parse_source
from .findings import Finding, sort_findings
from .registry import Rule, all_rules, get_rule

__all__ = ["analyze_paths", "analyze_source", "iter_python_files", "resolve_rules"]

PARSE_ERROR_RULE = "RPA000"


def resolve_rules(rule_ids: Iterable[str] | None) -> list[Rule]:
    """The requested rules (all registered ones when ``rule_ids`` is None)."""
    if rule_ids is None:
        return all_rules()
    resolved = [get_rule(rule_id) for rule_id in rule_ids]
    if not resolved:
        raise InvalidParameterError("no rules selected")
    return resolved


def iter_python_files(paths: Iterable[str]) -> list[str]:
    """Expand files/directories into a sorted list of ``.py`` file paths.

    Raises
    ------
    InvalidParameterError
        For a path that does not exist (a silent skip would report a clean
        lint over nothing).
    """
    out: list[str] = []
    for path in paths:
        if os.path.isfile(path):
            out.append(path)
        elif os.path.isdir(path):
            for root, dirs, files in os.walk(path):
                dirs.sort()
                dirs[:] = [d for d in dirs if d != "__pycache__"]
                for name in sorted(files):
                    if name.endswith(".py"):
                        out.append(os.path.join(root, name))
        else:
            raise InvalidParameterError(f"no such file or directory: {path!r}")
    return sorted(dict.fromkeys(out))


def _display_path(path: str) -> str:
    """POSIX-style path as reported in findings (and matched by baselines).

    Paths are kept relative when given relative, so a repo-root invocation
    (the committed baseline's frame of reference) reports ``src/repro/...``.
    """
    return os.path.normpath(path).replace(os.sep, "/")


def _parse_modules(files: Iterable[str]) -> tuple[list[ModuleInfo], list[Finding]]:
    modules: list[ModuleInfo] = []
    errors: list[Finding] = []
    for path in files:
        display = _display_path(path)
        try:
            with open(path, encoding="utf-8") as handle:
                source = handle.read()
        except OSError as error:
            raise InvalidParameterError(f"cannot read {path!r}: {error}") from error
        try:
            modules.append(parse_source(source, display))
        except SyntaxError as error:
            errors.append(
                Finding(
                    rule_id=PARSE_ERROR_RULE,
                    path=display,
                    line=error.lineno or 1,
                    symbol="<parse>",
                    message=f"file does not parse: {error.msg}",
                    hint="fix the syntax error; no rules ran on this file",
                )
            )
    return modules, errors


def _run(modules: list[ModuleInfo], rules: list[Rule]) -> list[Finding]:
    project = ProjectIndex(modules)
    findings: list[Finding] = []
    for module in modules:
        for rule in rules:
            findings.extend(rule.check(module, project))
    return findings


def analyze_paths(
    paths: Iterable[str], *, rule_ids: Iterable[str] | None = None
) -> list[Finding]:
    """Lint every ``.py`` file under ``paths`` with the selected rules."""
    rules = resolve_rules(rule_ids)
    modules, findings = _parse_modules(iter_python_files(paths))
    findings.extend(_run(modules, rules))
    return sort_findings(findings)


def analyze_source(
    source: str,
    *,
    path: str = "src/repro/snippet.py",
    rule_ids: Iterable[str] | None = None,
) -> list[Finding]:
    """Lint one in-memory source string (the fixture-test entry point).

    ``path`` participates in the path-scoped rules exactly as on disk —
    pass e.g. ``src/repro/core/fixture.py`` to put the snippet on the
    deterministic paths.
    """
    rules = resolve_rules(rule_ids)
    try:
        module = parse_source(source, path)
    except SyntaxError as error:
        raise InvalidParameterError(
            f"fixture source does not parse: {error.msg} (line {error.lineno})"
        ) from error
    return sort_findings(_run([module], rules))
