"""Static analysis: AST-based rules enforcing the repo's runtime contracts.

The package is a self-contained linter — no third-party dependencies, just
:mod:`ast` — exposed as ``repro-traj lint``.  Each rule mechanically checks
one invariant the test suite otherwise only samples:

========  =====================  ==================================================
Rule      Name                   Invariant
========  =====================  ==================================================
RPA001    checkpoint-drift       snapshot() covers every mutable attribute
RPA002    capability-consistency descriptor flags match the factory's methods
RPA003    determinism            no ambient input on the byte-identical paths
RPA004    actor-ownership        handler cores mutate only state they own
RPA005    process-safety         exceptions revivable across process boundaries
========  =====================  ==================================================

See :mod:`repro.analysis.registry` for adding a rule and
:mod:`repro.analysis.baseline` for the tracked-findings allowlist.
"""

from __future__ import annotations

from .baseline import Baseline, baseline_payload, load_baseline
from .findings import Finding, format_findings, sort_findings
from .registry import Rule, all_rules, get_rule, register_rule, rule_ids
from .runner import analyze_paths, analyze_source, iter_python_files, resolve_rules

__all__ = [
    "Baseline",
    "Finding",
    "Rule",
    "all_rules",
    "analyze_paths",
    "analyze_source",
    "baseline_payload",
    "format_findings",
    "get_rule",
    "iter_python_files",
    "load_baseline",
    "register_rule",
    "resolve_rules",
    "rule_ids",
    "sort_findings",
]
