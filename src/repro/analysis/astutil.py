"""Shared AST infrastructure for the invariant rules.

Every rule sees the same two inputs: a :class:`ModuleInfo` (one parsed file)
and a :class:`ProjectIndex` (the cross-file view: class name -> definition,
function name -> return annotation).  The index is what lets the capability
rule follow ``streaming_factory=_make_operb`` from the registration in
``api/builtin.py`` to the :class:`OPERBSimplifier` methods defined in
``core/operb.py`` without importing anything.
"""

from __future__ import annotations

import ast
from dataclasses import dataclass, field
from typing import Iterator

__all__ = [
    "ModuleInfo",
    "ClassInfo",
    "ProjectIndex",
    "parse_source",
    "iter_classes",
    "class_methods",
    "self_attribute_stores",
    "self_attribute_reads",
    "string_literal_set",
    "dotted_name",
    "in_packages",
]

FunctionNode = ast.FunctionDef | ast.AsyncFunctionDef


@dataclass(frozen=True, slots=True)
class ModuleInfo:
    """One parsed source file, as the rules see it.

    ``path`` uses POSIX separators and is reported verbatim in findings;
    scope predicates (:func:`in_packages`) match against it.
    """

    path: str
    tree: ast.Module


@dataclass(slots=True)
class ClassInfo:
    """One class definition in the project index."""

    name: str
    node: ast.ClassDef
    module: ModuleInfo
    base_names: tuple[str, ...]
    methods: dict[str, FunctionNode] = field(default_factory=dict)


def parse_source(source: str, path: str) -> ModuleInfo:
    """Parse one file's source into a :class:`ModuleInfo`.

    Raises
    ------
    SyntaxError
        Propagated from :func:`ast.parse`; the runner converts it into a
        parse-error finding.
    """
    return ModuleInfo(path=path.replace("\\", "/"), tree=ast.parse(source, filename=path))


def iter_classes(tree: ast.AST) -> Iterator[ast.ClassDef]:
    """Every class definition in ``tree``, nested ones included."""
    for node in ast.walk(tree):
        if isinstance(node, ast.ClassDef):
            yield node


def class_methods(node: ast.ClassDef) -> dict[str, FunctionNode]:
    """Directly defined methods of ``node`` (no inheritance)."""
    return {
        item.name: item
        for item in node.body
        if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
    }


def _base_name(base: ast.expr) -> str | None:
    """The usable name of one class base (``Name`` or dotted ``Attribute``)."""
    if isinstance(base, ast.Name):
        return base.id
    if isinstance(base, ast.Attribute):
        # ``module.ClassName`` — the index keys on the bare class name.
        return base.attr
    return None


def class_base_names(node: ast.ClassDef) -> tuple[str, ...]:
    """Resolvable base-class names of ``node`` (subscripted bases skipped)."""
    names = []
    for base in node.bases:
        name = _base_name(base)
        if name is not None:
            names.append(name)
    return tuple(names)


def self_attribute_stores(func: FunctionNode) -> list[tuple[str, int]]:
    """``(attribute, line)`` pairs for every ``self.X = ...`` in ``func``.

    Covers plain, annotated and augmented assignments, tuple-unpacking
    targets, and ``self.X`` loop/with targets.  Attributes of attributes
    (``self.a.b = ...``) are *not* stores of ``self`` state and are skipped.
    """
    stores: list[tuple[str, int]] = []
    for node in ast.walk(func):
        targets: list[ast.expr] = []
        if isinstance(node, ast.Assign):
            targets = list(node.targets)
        elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
            targets = [node.target]
        elif isinstance(node, ast.For):
            targets = [node.target]
        for target in targets:
            for leaf in ast.walk(target):
                if (
                    isinstance(leaf, ast.Attribute)
                    and isinstance(leaf.ctx, ast.Store)
                    and isinstance(leaf.value, ast.Name)
                    and leaf.value.id == "self"
                ):
                    stores.append((leaf.attr, leaf.lineno))
    return stores


def self_attribute_reads(node: ast.AST) -> set[str]:
    """Names of every ``self.X`` attribute accessed anywhere under ``node``."""
    return {
        leaf.attr
        for leaf in ast.walk(node)
        if isinstance(leaf, ast.Attribute)
        and isinstance(leaf.value, ast.Name)
        and leaf.value.id == "self"
    }


def string_literal_set(node: ast.ClassDef, name: str) -> frozenset[str] | None:
    """The string constants of a class-level ``name = frozenset({...})``.

    Accepts a set/tuple/list literal, optionally wrapped in a single
    ``frozenset(...)``/``set(...)`` call.  Returns ``None`` when the class
    has no such assignment (distinct from an empty set).
    """
    for item in node.body:
        value: ast.expr | None = None
        if isinstance(item, ast.Assign):
            if any(isinstance(t, ast.Name) and t.id == name for t in item.targets):
                value = item.value
        elif isinstance(item, ast.AnnAssign):
            if isinstance(item.target, ast.Name) and item.target.id == name:
                value = item.value
        if value is None:
            continue
        if (
            isinstance(value, ast.Call)
            and isinstance(value.func, ast.Name)
            and value.func.id in ("frozenset", "set")
            and len(value.args) == 1
        ):
            value = value.args[0]
        if isinstance(value, (ast.Set, ast.Tuple, ast.List)):
            return frozenset(
                elt.value
                for elt in value.elts
                if isinstance(elt, ast.Constant) and isinstance(elt.value, str)
            )
        return frozenset()
    return None


def dotted_name(node: ast.expr) -> str | None:
    """``"a.b.c"`` for a pure ``Name``/``Attribute`` chain, else ``None``."""
    parts: list[str] = []
    while isinstance(node, ast.Attribute):
        parts.append(node.attr)
        node = node.value
    if not isinstance(node, ast.Name):
        return None
    parts.append(node.id)
    return ".".join(reversed(parts))


def in_packages(path: str, packages: tuple[str, ...]) -> bool:
    """Whether ``path`` lies inside one of the ``repro`` sub-``packages``."""
    posix = path.replace("\\", "/")
    return any(f"repro/{package}/" in posix for package in packages)


class ScopedVisitor(ast.NodeVisitor):
    """Node visitor tracking the enclosing class/function qualname.

    Rules subclass this to anchor findings to a stable symbol
    (``Class.method`` rather than a line number).
    """

    def __init__(self) -> None:
        self._scope: list[str] = []

    @property
    def qualname(self) -> str:
        return ".".join(self._scope) or "<module>"

    def _enter(self, node: ast.ClassDef | FunctionNode) -> None:
        self._scope.append(node.name)
        self.generic_visit(node)
        self._scope.pop()

    def visit_ClassDef(self, node: ast.ClassDef) -> None:
        self._enter(node)

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._enter(node)


class ProjectIndex:
    """Cross-module view: class and factory-function resolution by name.

    Names are indexed bare (``OPERBSimplifier``, not the dotted module
    path); the repo keeps class names unique, and a colliding name would at
    worst make a rule stay silent — rules must treat unresolved names as
    "don't know", never as a finding.
    """

    def __init__(self, modules: list[ModuleInfo]) -> None:
        self.modules = modules
        self.classes: dict[str, ClassInfo] = {}
        #: Top-level function name -> return-annotation name (or ``None``).
        self.function_returns: dict[str, str | None] = {}
        for module in modules:
            for node in iter_classes(module.tree):
                self.classes[node.name] = ClassInfo(
                    name=node.name,
                    node=node,
                    module=module,
                    base_names=class_base_names(node),
                    methods=class_methods(node),
                )
            for item in module.tree.body:
                if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef)):
                    self.function_returns[item.name] = _annotation_name(item.returns)

    def resolve_class(self, name: str) -> ClassInfo | None:
        """The project-local class called ``name``, if any."""
        return self.classes.get(name)

    def resolve_factory(self, name: str) -> ClassInfo | None:
        """Resolve a streaming-factory name to the class it instantiates.

        A factory is either the simplifier class itself or a module-level
        helper whose return annotation names the class.  Unresolvable names
        (imports from outside the scanned tree, un-annotated helpers)
        return ``None`` — the caller must stay silent on them.
        """
        direct = self.classes.get(name)
        if direct is not None:
            return direct
        returns = self.function_returns.get(name)
        if returns is not None:
            return self.classes.get(returns)
        return None

    def class_defines(self, info: ClassInfo, method: str) -> bool | None:
        """Whether ``info`` (or a project-local base) defines ``method``.

        Returns ``None`` ("don't know") when the method is not found but
        some transitive base could not be resolved inside the project, so
        rules never report against inherited behaviour they cannot see.
        ``object`` counts as resolved.
        """
        seen: set[str] = set()
        unresolved = False
        stack = [info]
        while stack:
            current = stack.pop()
            if current.name in seen:
                continue
            seen.add(current.name)
            if method in current.methods:
                return True
            for base in current.base_names:
                if base == "object":
                    continue
                resolved = self.classes.get(base)
                if resolved is None:
                    unresolved = True
                else:
                    stack.append(resolved)
        return None if unresolved else False


def _annotation_name(annotation: ast.expr | None) -> str | None:
    """The class name an annotation refers to (``Name``, dotted, or string)."""
    if annotation is None:
        return None
    if isinstance(annotation, ast.Constant) and isinstance(annotation.value, str):
        # String annotation: "OPERBSimplifier" (possibly dotted).
        return annotation.value.split(".")[-1].strip() or None
    name = dotted_name(annotation)
    if name is not None:
        return name.split(".")[-1]
    return None
