"""RPA003 — determinism on the byte-identical paths.

``repro/core``, ``repro/geometry``, ``repro/store``, ``repro/streaming``
and ``repro/trajectory`` carry the contracts the test suite locks in bit
for bit: identical segments across kernel backends, byte-identical
checkpoints across execution backends and block splits, byte-identical
segment-store files for the same appends.  Any ambient input — wall
clocks, random draws, environment variables, salted set ordering — breaks
those guarantees in ways no fixture reliably catches.  This rule bans the
usual suspects inside the scoped packages:

- ``random.*`` / ``np.random.*`` draws and seeding;
- wall/monotonic clock reads (``time.time``, ``time.monotonic``,
  ``time.perf_counter`` and their ``_ns`` variants);
- ``datetime.now``/``utcnow``/``today``;
- environment reads (``os.environ``, ``os.getenv``);
- iterating a syntactic set construct (set literal, set comprehension,
  ``set(...)``/``frozenset(...)`` call) without ``sorted(...)`` — set
  order is hash-salted per process and must never feed serialization.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import ModuleInfo, ProjectIndex, ScopedVisitor, dotted_name, in_packages
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["DeterminismRule"]

#: Packages under ``repro/`` whose outputs must be reproducible bit for bit.
DETERMINISTIC_PACKAGES = ("core", "geometry", "store", "streaming", "trajectory")

_CLOCK_CALLS = frozenset(
    {
        "time.time",
        "time.time_ns",
        "time.monotonic",
        "time.monotonic_ns",
        "time.perf_counter",
        "time.perf_counter_ns",
        "time.process_time",
        "time.process_time_ns",
    }
)
_DATETIME_TAILS = frozenset({"now", "utcnow", "today"})
_ENV_CALLS = frozenset({"os.getenv"})
_ENV_ATTRS = frozenset({"os.environ", "os.environb"})


def _is_set_construct(node: ast.expr) -> bool:
    if isinstance(node, (ast.Set, ast.SetComp)):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in ("set", "frozenset")
    )


class _Visitor(ScopedVisitor):
    def __init__(self, rule: "DeterminismRule", module: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []

    def _report(self, node: ast.AST, offender: str, message: str, hint: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node.lineno,
                f"{self.qualname}:{offender}",
                message,
                hint=hint,
                col=node.col_offset,
            )
        )

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and not name.startswith("self."):
            parts = name.split(".")
            if "random" in parts:
                self._report(
                    node,
                    name,
                    f"{name}() draws random state on a byte-identical path",
                    "thread an explicit seeded generator in from the caller",
                )
            elif name in _CLOCK_CALLS:
                self._report(
                    node,
                    name,
                    f"{name}() reads a clock on a byte-identical path",
                    "pass timestamps in as data; timing belongs to repro/perf",
                )
            elif (
                parts[-1] in _DATETIME_TAILS
                and any(part in ("datetime", "date") for part in parts[:-1])
            ):
                self._report(
                    node,
                    name,
                    f"{name}() reads the wall clock on a byte-identical path",
                    "pass timestamps in as data",
                )
            elif name in _ENV_CALLS:
                self._report(
                    node,
                    name,
                    f"{name}() reads the process environment on a "
                    f"byte-identical path",
                    "thread configuration in explicitly",
                )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        if name in _ENV_ATTRS:
            self._report(
                node,
                name,
                f"{name} reads the process environment on a byte-identical path",
                "thread configuration in explicitly",
            )
        self.generic_visit(node)

    def _check_iteration(self, node: ast.AST, iterable: ast.expr) -> None:
        if _is_set_construct(iterable):
            self._report(
                node,
                "set-iteration",
                "iterating a set yields hash-salted order on a "
                "byte-identical path",
                "wrap the iterable in sorted(...)",
            )

    def visit_For(self, node: ast.For) -> None:
        self._check_iteration(node, node.iter)
        self.generic_visit(node)

    def _visit_comprehension(self, node: ast.AST) -> None:
        for comp in node.generators:
            self._check_iteration(node, comp.iter)
        self.generic_visit(node)

    visit_ListComp = _visit_comprehension
    visit_SetComp = _visit_comprehension
    visit_DictComp = _visit_comprehension
    visit_GeneratorExp = _visit_comprehension


@register_rule
class DeterminismRule(Rule):
    rule_id = "RPA003"
    name = "determinism"
    description = (
        "no clock reads, random draws, environment reads or unordered set "
        "iteration inside repro/core, repro/geometry, repro/store, "
        "repro/streaming, repro/trajectory"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        if not in_packages(module.path, DETERMINISTIC_PACKAGES):
            return
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        yield from visitor.findings
