"""RPA006 — wire codecs stay pickle-free and explicitly paired.

The streaming wire protocol (``repro/streaming/wire.py``) is the unit the
process and node backends ship between OS processes.  Its frames carry the
byte-identical contract across machine boundaries, which imposes two rules
no fixture can lock on its own:

- **No pickle.**  A pickled payload embeds interpreter-specific detail
  (protocol version, memo ordering, class import paths) and executes
  arbitrary code on decode.  Every byte on the wire must come from an
  explicit ``struct``/JSON layout so the same input encodes to the same
  frame on every host and decoding untrusted bytes stays safe.
- **Explicit codec pairs.**  Every frame type registered with
  ``register_frame`` must name a module-level ``encode_*`` function and a
  module-level ``decode_*`` function.  Lambdas, bound methods and
  arbitrarily named callables hide one direction of the round-trip from
  review and from the round-trip property tests keyed on those names.

The rule scopes itself to wire-codec modules: any ``wire.py`` under the
``repro`` package tree.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import ModuleInfo, ProjectIndex, dotted_name
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["WireCodecRule"]

#: Modules whose import (or attribute use) marks a pickle dependency.
_PICKLE_MODULES = frozenset({"pickle", "cPickle", "_pickle", "dill", "cloudpickle"})

_REGISTER_CALL = "register_frame"
_CODEC_ARGS = (("encode", 2, "encode_"), ("decode", 3, "decode_"))


def _is_wire_module(path: str) -> bool:
    posix = path.replace("\\", "/")
    return "repro/" in posix and posix.rsplit("/", 1)[-1] == "wire.py"


def _pickle_root(name: str | None) -> str | None:
    if name is None:
        return None
    root = name.split(".", 1)[0]
    return root if root in _PICKLE_MODULES else None


class _Visitor(ast.NodeVisitor):
    def __init__(self, rule: "WireCodecRule", module: ModuleInfo) -> None:
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []
        #: Module-level function definitions, for codec-pair resolution.
        self.toplevel: set[str] = {
            item.name
            for item in module.tree.body
            if isinstance(item, (ast.FunctionDef, ast.AsyncFunctionDef))
        }

    def _report(self, node: ast.AST, symbol: str, message: str, hint: str) -> None:
        self.findings.append(
            self.rule.finding(
                self.module,
                node.lineno,
                symbol,
                message,
                hint=hint,
                col=node.col_offset,
            )
        )

    # -- pickle bans -----------------------------------------------------

    def visit_Import(self, node: ast.Import) -> None:
        for alias in node.names:
            root = _pickle_root(alias.name)
            if root is not None:
                self._report(
                    node,
                    f"import:{alias.name}",
                    f"wire codec imports {alias.name}; frames must use an "
                    f"explicit byte layout, never pickle",
                    "encode with struct/JSON primitives instead",
                )
        self.generic_visit(node)

    def visit_ImportFrom(self, node: ast.ImportFrom) -> None:
        root = _pickle_root(node.module)
        if root is not None:
            self._report(
                node,
                f"import:{node.module}",
                f"wire codec imports from {node.module}; frames must use an "
                f"explicit byte layout, never pickle",
                "encode with struct/JSON primitives instead",
            )
        self.generic_visit(node)

    def visit_Attribute(self, node: ast.Attribute) -> None:
        name = dotted_name(node)
        root = _pickle_root(name)
        if root is not None:
            self._report(
                node,
                str(name),
                f"wire codec calls into {root}; frames must use an explicit "
                f"byte layout, never pickle",
                "encode with struct/JSON primitives instead",
            )
        self.generic_visit(node)

    # -- register_frame codec pairs --------------------------------------

    def _codec_argument(self, node: ast.Call, keyword: str, position: int) -> ast.expr | None:
        for kw in node.keywords:
            if kw.arg == keyword:
                return kw.value
        if len(node.args) > position:
            return node.args[position]
        return None

    def visit_Call(self, node: ast.Call) -> None:
        name = dotted_name(node.func)
        if name is not None and name.split(".")[-1] == _REGISTER_CALL:
            for keyword, position, prefix in _CODEC_ARGS:
                value = self._codec_argument(node, keyword, position)
                if value is None:
                    self._report(
                        node,
                        f"{_REGISTER_CALL}:{keyword}",
                        f"register_frame call is missing its {keyword} "
                        f"function; every frame type needs an explicit "
                        f"encode/decode pair",
                        f"pass a module-level {prefix}* function",
                    )
                    continue
                if not (
                    isinstance(value, ast.Name)
                    and value.id.startswith(prefix)
                    and value.id in self.toplevel
                ):
                    shown = (
                        value.id
                        if isinstance(value, ast.Name)
                        else type(value).__name__
                    )
                    self._report(
                        value,
                        f"{_REGISTER_CALL}:{keyword}",
                        f"register_frame {keyword} argument {shown!r} is not "
                        f"a module-level {prefix}* function; the round-trip "
                        f"pair must be explicit and reviewable",
                        f"define and pass a module-level {prefix}* function",
                    )
        self.generic_visit(node)


@register_rule
class WireCodecRule(Rule):
    rule_id = "RPA006"
    name = "wire-codec"
    description = (
        "wire-codec modules (wire.py under repro/) must not touch pickle, "
        "and every register_frame call must pass module-level "
        "encode_*/decode_* functions"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        if not _is_wire_module(module.path):
            return
        visitor = _Visitor(self, module)
        visitor.visit(module.tree)
        yield from visitor.findings
