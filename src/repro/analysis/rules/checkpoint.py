"""RPA001 — checkpoint drift.

The format-1 checkpoint contract says a restored stream continues
byte-identically.  That only holds while ``snapshot()`` captures *every*
piece of mutable state the push path can change — a field added to
``__init__``/``push``/``push_block`` but forgotten in the snapshot payload
resumes with a stale default and silently diverges.  This rule makes the
coupling explicit: every ``self.X`` assigned in those methods of a class
that defines ``snapshot()`` must either be read somewhere in ``snapshot()``
or be listed in a class-level ``_SNAPSHOT_EXCLUDE`` allowlist (immutable
configuration, derived caches) with a justifying comment.
"""

from __future__ import annotations

from typing import Iterator

from ..astutil import (
    ModuleInfo,
    ProjectIndex,
    class_methods,
    iter_classes,
    self_attribute_reads,
    self_attribute_stores,
    string_literal_set,
)
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["CheckpointDriftRule"]

#: Methods whose ``self.X = ...`` assignments define the mutable state the
#: snapshot must cover (construction plus the two ingest entry points).
MUTATING_METHODS = ("__init__", "push", "push_block")


@register_rule
class CheckpointDriftRule(Rule):
    rule_id = "RPA001"
    name = "checkpoint-drift"
    description = (
        "every mutable attribute assigned in __init__/push/push_block of a "
        "class defining snapshot() must appear in the snapshot payload or in "
        "_SNAPSHOT_EXCLUDE"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for node in iter_classes(module.tree):
            methods = class_methods(node)
            snapshot = methods.get("snapshot")
            if snapshot is None:
                continue
            covered = self_attribute_reads(snapshot)
            exclude = string_literal_set(node, "_SNAPSHOT_EXCLUDE") or frozenset()
            reported: set[str] = set()
            for method_name in MUTATING_METHODS:
                method = methods.get(method_name)
                if method is None:
                    continue
                for attr, line in self_attribute_stores(method):
                    if attr in covered or attr in exclude or attr in reported:
                        continue
                    reported.add(attr)
                    yield self.finding(
                        module,
                        line,
                        f"{node.name}.{attr}",
                        f"attribute {attr!r} is assigned in "
                        f"{node.name}.{method_name} but never read by "
                        f"{node.name}.snapshot()",
                        hint=(
                            "include it in the snapshot payload, or add it to "
                            "a class-level _SNAPSHOT_EXCLUDE frozenset with a "
                            "comment saying why it is not stream state"
                        ),
                    )
