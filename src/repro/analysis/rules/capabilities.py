"""RPA002 — capability consistency.

The capability flags on :class:`repro.api.AlgorithmDescriptor` are routing
decisions: ``checkpointable`` sends live hub streams through
``snapshot()``/``restore()``, ``batched`` sends SoA blocks through
``push_block``, ``pyramid`` sends a finer level's segments through the
``push_segment`` re-ingest hook, and a ``streaming_factory`` at all
promises ``push`` and ``finish``.  A flag whose methods do not exist fails deep inside a fleet
run or a checkpoint, not at registration.  This rule statically follows
``streaming_factory=`` from each ``register_algorithm``/
``AlgorithmDescriptor`` call to the class it instantiates (directly, or via
a helper function's return annotation) and checks the promised methods are
actually defined.  Factories it cannot resolve are skipped, never guessed.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import ClassInfo, ModuleInfo, ProjectIndex
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["CapabilityConsistencyRule"]

_REGISTRATION_CALLS = ("register_algorithm", "AlgorithmDescriptor")

#: flag -> methods its simplifier class must define.
FLAG_REQUIREMENTS: dict[str, tuple[str, ...]] = {
    "checkpointable": ("snapshot", "restore"),
    "batched": ("push_block",),
    "pyramid": ("push_segment",),
}

#: Any streaming factory at all promises the push/finish protocol.
STREAMING_METHODS = ("push", "finish")


def _call_name(func: ast.expr) -> str | None:
    if isinstance(func, ast.Name):
        return func.id
    if isinstance(func, ast.Attribute):
        return func.attr
    return None


def _is_true(node: ast.expr | None) -> bool:
    return isinstance(node, ast.Constant) and node.value is True


def _algorithm_name(call: ast.Call) -> str:
    if call.args and isinstance(call.args[0], ast.Constant):
        value = call.args[0].value
        if isinstance(value, str):
            return value
    for keyword in call.keywords:
        if keyword.arg == "name" and isinstance(keyword.value, ast.Constant):
            value = keyword.value.value
            if isinstance(value, str):
                return value
    return "<anonymous>"


@register_rule
class CapabilityConsistencyRule(Rule):
    rule_id = "RPA002"
    name = "capability-consistency"
    description = (
        "descriptor capability flags must match the methods the streaming "
        "factory's class actually defines (checkpointable => snapshot/"
        "restore, batched => push_block, pyramid => push_segment, "
        "streaming => push/finish)"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for node in ast.walk(module.tree):
            if not isinstance(node, ast.Call):
                continue
            if _call_name(node.func) not in _REGISTRATION_CALLS:
                continue
            keywords = {kw.arg: kw.value for kw in node.keywords if kw.arg}
            factory = keywords.get("streaming_factory")
            if not isinstance(factory, ast.Name):
                # No factory (batch-only), or an expression we cannot
                # follow: the runtime validation in __post_init__ owns
                # those cases.
                continue
            target = project.resolve_factory(factory.id)
            if target is None:
                continue
            algorithm = _algorithm_name(node)
            yield from self._check_flags(module, node, keywords, algorithm, target, project)

    def _check_flags(
        self,
        module: ModuleInfo,
        call: ast.Call,
        keywords: dict[str, ast.expr],
        algorithm: str,
        target: ClassInfo,
        project: ProjectIndex,
    ) -> Iterator[Finding]:
        required: dict[str, str] = {}
        for method in STREAMING_METHODS:
            required[method] = "streaming_factory"
        for flag, methods in FLAG_REQUIREMENTS.items():
            if _is_true(keywords.get(flag)):
                for method in methods:
                    required[method] = flag
        for method, flag in required.items():
            defined = project.class_defines(target, method)
            if defined is False:
                yield self.finding(
                    module,
                    call.lineno,
                    f"{algorithm}.{flag}",
                    f"algorithm {algorithm!r} declares {flag} but its "
                    f"simplifier class {target.name} does not define "
                    f"{method}()",
                    hint=(
                        f"implement {method}() on {target.name} or drop the "
                        f"{flag} declaration from the registration"
                    ),
                )
