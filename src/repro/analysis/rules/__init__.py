"""Built-in invariant rules (importing this package registers them all)."""

from __future__ import annotations

from .capabilities import CapabilityConsistencyRule
from .checkpoint import CheckpointDriftRule
from .determinism import DeterminismRule
from .ownership import ActorOwnershipRule
from .process_safety import ProcessSafetyRule
from .wire import WireCodecRule

__all__ = [
    "CheckpointDriftRule",
    "CapabilityConsistencyRule",
    "DeterminismRule",
    "ActorOwnershipRule",
    "ProcessSafetyRule",
    "WireCodecRule",
]
