"""RPA004 — actor ownership and shared mutable state.

The execution runtime's lock-free design rests on single ownership: between
barriers, a shard worker's state is touched only by that worker's handler
core (``_ShardCore`` in the hub, actor handlers in :mod:`repro.exec`).  A
handler that writes through a module global or another object's attribute
re-introduces exactly the shared mutable state the actor model removed —
correct on the serial backend, racy on threads, silently diverging on
processes.  Two checks enforce the discipline:

- inside any class that defines a ``handle`` method (the actor-handler
  contract), every attribute or subscript assignment must be rooted at
  ``self`` or a method-local name; writes through module-level names and
  ``global``/``nonlocal`` declarations are findings;
- mutable default arguments (``def f(x=[])``) anywhere in ``src/repro`` —
  one shared instance per process is the same bug in miniature, and a
  pickled default diverging from the parent's makes it backend-dependent.
"""

from __future__ import annotations

import ast
from typing import Iterator

from ..astutil import ModuleInfo, ProjectIndex, ScopedVisitor, class_methods, iter_classes
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["ActorOwnershipRule"]

_MUTABLE_LITERALS = (ast.List, ast.Dict, ast.Set, ast.ListComp, ast.DictComp, ast.SetComp)
_MUTABLE_CALLS = frozenset(
    {"list", "dict", "set", "bytearray", "defaultdict", "deque", "Counter", "OrderedDict"}
)


def _is_mutable_default(node: ast.expr) -> bool:
    if isinstance(node, _MUTABLE_LITERALS):
        return True
    return (
        isinstance(node, ast.Call)
        and isinstance(node.func, ast.Name)
        and node.func.id in _MUTABLE_CALLS
    )


def _root_name(node: ast.expr) -> str | None:
    """The base ``Name`` an attribute/subscript chain hangs off, if any."""
    while isinstance(node, (ast.Attribute, ast.Subscript)):
        node = node.value
    if isinstance(node, ast.Name):
        return node.id
    return None


def _local_names(func: ast.FunctionDef | ast.AsyncFunctionDef) -> set[str]:
    """Parameters plus every name the method itself binds."""
    args = func.args
    locals_: set[str] = {
        arg.arg
        for arg in (*args.posonlyargs, *args.args, *args.kwonlyargs)
    }
    if args.vararg is not None:
        locals_.add(args.vararg.arg)
    if args.kwarg is not None:
        locals_.add(args.kwarg.arg)
    for node in ast.walk(func):
        if isinstance(node, ast.Name) and isinstance(node.ctx, ast.Store):
            locals_.add(node.id)
        elif isinstance(node, (ast.FunctionDef, ast.AsyncFunctionDef, ast.ClassDef)):
            locals_.add(node.name)
    return locals_


class _DefaultsVisitor(ScopedVisitor):
    def __init__(self, rule: "ActorOwnershipRule", module: ModuleInfo) -> None:
        super().__init__()
        self.rule = rule
        self.module = module
        self.findings: list[Finding] = []

    def _check_defaults(self, node: ast.FunctionDef | ast.AsyncFunctionDef) -> None:
        args = node.args
        positional = [*args.posonlyargs, *args.args]
        for arg, default in zip(positional[len(positional) - len(args.defaults):], args.defaults):
            self._check_one(node, arg.arg, default)
        for arg, default in zip(args.kwonlyargs, args.kw_defaults):
            if default is not None:
                self._check_one(node, arg.arg, default)

    def _check_one(self, func: ast.AST, arg: str, default: ast.expr) -> None:
        if _is_mutable_default(default):
            self.findings.append(
                self.rule.finding(
                    self.module,
                    default.lineno,
                    f"{self.qualname}.{func.name}.{arg}",
                    f"parameter {arg!r} of {func.name} has a mutable default "
                    f"shared across calls (and across pickles, backends "
                    f"permitting)",
                    hint="default to None and build the container inside the function",
                    col=default.col_offset,
                )
            )

    def visit_FunctionDef(self, node: ast.FunctionDef) -> None:
        self._check_defaults(node)
        self._enter(node)

    def visit_AsyncFunctionDef(self, node: ast.AsyncFunctionDef) -> None:
        self._check_defaults(node)
        self._enter(node)


@register_rule
class ActorOwnershipRule(Rule):
    rule_id = "RPA004"
    name = "actor-ownership"
    description = (
        "actor handler cores may only mutate state they own (self or "
        "locals); mutable default arguments are banned everywhere"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        defaults = _DefaultsVisitor(self, module)
        defaults.visit(module.tree)
        yield from defaults.findings
        for node in iter_classes(module.tree):
            methods = class_methods(node)
            if "handle" not in methods:
                continue
            for method in methods.values():
                yield from self._check_handler(module, node.name, method)

    def _check_handler(
        self,
        module: ModuleInfo,
        class_name: str,
        method: ast.FunctionDef | ast.AsyncFunctionDef,
    ) -> Iterator[Finding]:
        locals_ = _local_names(method)
        reported: set[str] = set()
        for node in ast.walk(method):
            if isinstance(node, (ast.Global, ast.Nonlocal)):
                for name in node.names:
                    yield self.finding(
                        module,
                        node.lineno,
                        f"{class_name}.{method.name}:{name}",
                        f"handler {class_name}.{method.name} declares "
                        f"{type(node).__name__.lower()} {name!r} — handler "
                        f"cores must not rebind shared names",
                        hint="keep the state on the core object (self)",
                    )
                continue
            targets: list[ast.expr] = []
            if isinstance(node, ast.Assign):
                targets = list(node.targets)
            elif isinstance(node, (ast.AnnAssign, ast.AugAssign)):
                targets = [node.target]
            for target in targets:
                for leaf in ast.walk(target):
                    if not isinstance(leaf, (ast.Attribute, ast.Subscript)):
                        continue
                    if not isinstance(leaf.ctx, ast.Store):
                        continue
                    root = _root_name(leaf)
                    if root is None or root == "self" or root in locals_:
                        continue
                    if root in reported:
                        continue
                    reported.add(root)
                    yield self.finding(
                        module,
                        leaf.lineno,
                        f"{class_name}.{method.name}:{root}",
                        f"handler {class_name}.{method.name} mutates "
                        f"{root!r}, which the handler core does not own",
                        hint=(
                            "route the mutation through self (the core's own "
                            "state) or emit an event for the hub to apply"
                        ),
                    )
