"""RPA005 — process-boundary exception safety.

Exceptions crossing the process backend are reduced to ``(type name,
message)`` pairs and revived on the parent side by calling the class with
the message (see ``repro.exec.actors._revive_exception``).  A class whose
constructor demands extra positional arguments, or whose instances carry
closure/lambda state, silently downgrades to a generic error when revived —
the caller loses the type it was promised it could catch.  This rule checks
every project-defined exception class:

- ``__init__`` (when defined) must be callable as ``cls(message)``: at
  most one required positional parameter besides ``self``, and every
  keyword-only parameter defaulted;
- no ``self.X = lambda ...`` attributes (unpicklable, and meaningless
  after revival).
"""

from __future__ import annotations

import ast
import builtins
from typing import Iterator

from ..astutil import ModuleInfo, ProjectIndex, class_methods, iter_classes
from ..findings import Finding
from ..registry import Rule, register_rule

__all__ = ["ProcessSafetyRule"]

#: Every builtin exception type name (``Exception``, ``ValueError``, ...).
BUILTIN_EXCEPTIONS = frozenset(
    name
    for name in dir(builtins)
    if isinstance(getattr(builtins, name), type)
    and issubclass(getattr(builtins, name), BaseException)
)


def _is_exception_class(node: ast.ClassDef, project: ProjectIndex) -> bool:
    """Whether ``node`` transitively derives from a builtin exception."""
    seen: set[str] = set()
    stack: list[str] = []
    for base in node.bases:
        if isinstance(base, ast.Name):
            stack.append(base.id)
        elif isinstance(base, ast.Attribute):
            stack.append(base.attr)
    while stack:
        name = stack.pop()
        if name in seen:
            continue
        seen.add(name)
        if name in BUILTIN_EXCEPTIONS:
            return True
        info = project.resolve_class(name)
        if info is not None:
            stack.extend(info.base_names)
    return False


def _required_positionals(init: ast.FunctionDef | ast.AsyncFunctionDef) -> int:
    args = init.args
    positional = [*args.posonlyargs, *args.args][1:]  # drop self
    return len(positional) - len(args.defaults)


def _undefaulted_kwonly(init: ast.FunctionDef | ast.AsyncFunctionDef) -> list[str]:
    return [
        arg.arg
        for arg, default in zip(init.args.kwonlyargs, init.args.kw_defaults)
        if default is None
    ]


@register_rule
class ProcessSafetyRule(Rule):
    rule_id = "RPA005"
    name = "process-boundary-safety"
    description = (
        "exception classes must be revivable across the process backend: "
        "constructor callable as cls(message), no lambda attributes"
    )

    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        for node in iter_classes(module.tree):
            if not _is_exception_class(node, project):
                continue
            init = class_methods(node).get("__init__")
            if init is None:
                continue  # inherits a message-compatible constructor
            required = _required_positionals(init)
            if required > 1:
                yield self.finding(
                    module,
                    init.lineno,
                    f"{node.name}.__init__",
                    f"{node.name}.__init__ requires {required} positional "
                    f"arguments — cls(message) revival across the process "
                    f"backend would raise TypeError",
                    hint="default every positional parameter after the message",
                )
            for name in _undefaulted_kwonly(init):
                yield self.finding(
                    module,
                    init.lineno,
                    f"{node.name}.__init__:{name}",
                    f"{node.name}.__init__ has a required keyword-only "
                    f"parameter {name!r} — cls(message) revival would raise "
                    f"TypeError",
                    hint=f"give {name!r} a default value",
                )
            for item in ast.walk(init):
                if (
                    isinstance(item, ast.Assign)
                    and isinstance(item.value, ast.Lambda)
                    and any(
                        isinstance(target, ast.Attribute)
                        and isinstance(target.value, ast.Name)
                        and target.value.id == "self"
                        for target in item.targets
                    )
                ):
                    attr = next(
                        target.attr
                        for target in item.targets
                        if isinstance(target, ast.Attribute)
                    )
                    yield self.finding(
                        module,
                        item.lineno,
                        f"{node.name}.{attr}",
                        f"{node.name} stores a lambda on self.{attr} — "
                        f"unpicklable, lost on process-boundary revival",
                        hint="store plain data; recompute behaviour from it",
                    )
