"""Rule registry of the invariant linter.

Each rule is a class with a stable ``rule_id`` (``RPA...``), registered at
import time with :func:`register_rule`.  The runner instantiates every
registered rule (or the requested subset) and calls ``check`` once per
module; rules that need the cross-file view use the shared
:class:`~repro.analysis.astutil.ProjectIndex`.
"""

from __future__ import annotations

from abc import ABC, abstractmethod
from typing import Iterator

from ..exceptions import InvalidParameterError
from .astutil import ModuleInfo, ProjectIndex
from .findings import Finding

__all__ = ["Rule", "register_rule", "all_rules", "get_rule", "rule_ids"]


class Rule(ABC):
    """One machine-checked repo invariant.

    Subclasses set ``rule_id`` (stable, referenced by baselines and
    ``--rule``), ``name`` (short slug used in docs) and ``description``,
    and implement :meth:`check`.
    """

    rule_id: str
    name: str
    description: str

    @abstractmethod
    def check(self, module: ModuleInfo, project: ProjectIndex) -> Iterator[Finding]:
        """Yield every violation of this invariant in ``module``."""

    def finding(
        self,
        module: ModuleInfo,
        line: int,
        symbol: str,
        message: str,
        *,
        hint: str = "",
        col: int = 0,
    ) -> Finding:
        """Convenience constructor stamping this rule's id and the module path."""
        return Finding(
            rule_id=self.rule_id,
            path=module.path,
            line=line,
            symbol=symbol,
            message=message,
            hint=hint,
            col=col,
        )


_RULES: dict[str, type[Rule]] = {}


def register_rule(cls: type[Rule]) -> type[Rule]:
    """Class decorator adding a rule to the registry (id must be unique)."""
    rule_id = getattr(cls, "rule_id", "")
    if not rule_id:
        raise InvalidParameterError(f"rule class {cls.__name__} has no rule_id")
    if rule_id in _RULES:
        raise InvalidParameterError(f"rule id {rule_id!r} is already registered")
    _RULES[rule_id] = cls
    return cls


def rule_ids() -> list[str]:
    """Registered rule ids, sorted."""
    return sorted(_RULES)


def get_rule(rule_id: str) -> Rule:
    """Instantiate one rule by id.

    Raises
    ------
    InvalidParameterError
        For an unknown rule id (names the available ones).
    """
    key = rule_id.strip().upper()
    if key not in _RULES:
        raise InvalidParameterError(
            f"unknown rule {rule_id!r}; available: {', '.join(rule_ids())}"
        )
    return _RULES[key]()


def all_rules() -> list[Rule]:
    """One instance of every registered rule, in id order."""
    return [_RULES[rule_id]() for rule_id in rule_ids()]
