"""Baseline allowlist: tracked, justified findings that do not fail the lint.

The committed ``analysis_baseline.json`` records findings that are
*deliberate* — each entry carries a one-line justification — so the linter
can gate on "no new findings" instead of "no findings ever".  Entries match
on the line-independent fingerprint (rule id, path, symbol); fixing the
underlying code makes the entry stale, and ``--format json`` output plus
:func:`baseline_payload` regenerate the file when the set changes.
"""

from __future__ import annotations

import json
from dataclasses import dataclass, field

from ..exceptions import InvalidParameterError
from .findings import Finding, sort_findings

__all__ = ["Baseline", "load_baseline", "baseline_payload"]

BASELINE_VERSION = 1


@dataclass(slots=True)
class Baseline:
    """Fingerprint -> justification map of allowlisted findings."""

    entries: dict[str, str] = field(default_factory=dict)

    def __len__(self) -> int:
        return len(self.entries)

    def split(self, findings: list[Finding]) -> tuple[list[Finding], list[Finding]]:
        """Partition ``findings`` into ``(new, baselined)``."""
        new: list[Finding] = []
        baselined: list[Finding] = []
        for finding in findings:
            (baselined if finding.fingerprint in self.entries else new).append(finding)
        return new, baselined


def load_baseline(path: str) -> Baseline:
    """Read a baseline file.

    Raises
    ------
    InvalidParameterError
        When the file is unreadable or not a valid baseline document
        (missing justifications included — an unjustified allowlist entry
        defeats the point of tracking).
    """
    try:
        with open(path, encoding="utf-8") as handle:
            payload = json.load(handle)
    except OSError as error:
        raise InvalidParameterError(f"cannot read baseline {path!r}: {error}") from error
    except json.JSONDecodeError as error:
        raise InvalidParameterError(
            f"baseline {path!r} is not valid JSON: {error}"
        ) from error
    if not isinstance(payload, dict) or payload.get("version") != BASELINE_VERSION:
        raise InvalidParameterError(
            f"baseline {path!r} must be a version-{BASELINE_VERSION} document"
        )
    entries: dict[str, str] = {}
    for row in payload.get("findings", ()):
        if not isinstance(row, dict):
            raise InvalidParameterError(f"baseline {path!r} has a non-object entry")
        try:
            rule = row["rule"]
            rel = row["path"]
            symbol = row["symbol"]
            justification = row["justification"]
        except KeyError as error:
            raise InvalidParameterError(
                f"baseline {path!r} entry is missing key {error.args[0]!r}"
            ) from error
        if not justification:
            raise InvalidParameterError(
                f"baseline {path!r}: entry {rule}::{rel}::{symbol} has an "
                f"empty justification"
            )
        entries[f"{rule}::{rel}::{symbol}"] = justification
    return Baseline(entries)


def baseline_payload(findings: list[Finding], justifications: dict[str, str]) -> dict:
    """Build a baseline document for ``findings``.

    ``justifications`` maps fingerprints to one-line reasons; every finding
    must have one.
    """
    rows = []
    for finding in sort_findings(findings):
        justification = justifications.get(finding.fingerprint, "")
        if not justification:
            raise InvalidParameterError(
                f"no justification provided for {finding.fingerprint}"
            )
        rows.append(
            {
                "rule": finding.rule_id,
                "path": finding.path,
                "symbol": finding.symbol,
                "justification": justification,
            }
        )
    return {"version": BASELINE_VERSION, "findings": rows}
