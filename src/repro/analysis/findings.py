"""Finding records and report formatting for the invariant linter.

A :class:`Finding` is one violation of a repo invariant, anchored to a file
and line and identified by a stable *fingerprint* — ``rule::path::symbol`` —
that survives unrelated line drift, so the committed baseline keeps matching
after routine edits.  Formatting helpers render findings for the terminal
(``text``) and for tooling (``json``).
"""

from __future__ import annotations

import json
from dataclasses import dataclass

__all__ = ["Finding", "format_findings", "sort_findings"]


@dataclass(frozen=True, slots=True)
class Finding:
    """One invariant violation reported by a rule.

    Attributes
    ----------
    rule_id:
        The rule that produced the finding (``RPA001`` ... ``RPA005``).
    path:
        File path as given to the runner (POSIX separators, typically
        relative to the repository root — the baseline matches on it).
    line, col:
        1-based line and 0-based column of the offending node.
    symbol:
        Stable anchor of the violation (``Class.attr``, ``func.arg``,
        ``qualname:dotted.call`` ...) — the baseline matches on it, so it
        must not contain line numbers.
    message:
        Human-readable description of what is wrong.
    hint:
        One-line suggestion for fixing the finding.
    """

    rule_id: str
    path: str
    line: int
    symbol: str
    message: str
    hint: str = ""
    col: int = 0

    @property
    def fingerprint(self) -> str:
        """Line-independent identity used for baseline matching."""
        return f"{self.rule_id}::{self.path}::{self.symbol}"

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (the ``--format json`` payload)."""
        return {
            "rule": self.rule_id,
            "path": self.path,
            "line": self.line,
            "col": self.col,
            "symbol": self.symbol,
            "message": self.message,
            "hint": self.hint,
        }

    def __str__(self) -> str:
        text = f"{self.path}:{self.line}: {self.rule_id} {self.message}"
        if self.hint:
            text += f" (hint: {self.hint})"
        return text


def sort_findings(findings: list[Finding]) -> list[Finding]:
    """Deterministic report order: by path, then line, then rule id."""
    return sorted(findings, key=lambda f: (f.path, f.line, f.rule_id, f.symbol))


def format_findings(
    findings: list[Finding],
    *,
    fmt: str = "text",
    baselined: int = 0,
) -> str:
    """Render ``findings`` as a terminal report or a JSON document."""
    findings = sort_findings(findings)
    if fmt == "json":
        return json.dumps(
            {
                "version": 1,
                "findings": [finding.as_dict() for finding in findings],
                "baselined": baselined,
            },
            indent=2,
            sort_keys=True,
        )
    lines = [str(finding) for finding in findings]
    summary = f"{len(findings)} finding(s)"
    if baselined:
        summary += f", {baselined} baselined"
    lines.append(summary)
    return "\n".join(lines)
