"""Segment-size distribution metrics (paper Exp-2.3).

For a compressed trajectory ``T = (L_1, ..., L_M)`` with ``C_i`` original
points credited to segment ``L_i`` (shared endpoints counted for both
neighbours), ``Z(k) = |{C_i : C_i = k}|`` is the number of segments containing
exactly ``k`` points.  Heavy segments (large ``k``) drive good compression
ratios; anomalous segments (``k = 2``) are the target of OPERB-A's patching.
"""

from __future__ import annotations

from collections import Counter
from typing import Iterable

from ..trajectory.piecewise import PiecewiseRepresentation

__all__ = [
    "segment_size_distribution",
    "merge_distributions",
    "anomalous_segment_count",
    "heavy_segment_count",
    "distribution_to_rows",
]


def segment_size_distribution(representation: PiecewiseRepresentation) -> dict[int, int]:
    """The ``Z(k)`` histogram of one representation."""
    return dict(Counter(segment.point_count for segment in representation.segments))


def merge_distributions(distributions: Iterable[dict[int, int]]) -> dict[int, int]:
    """Sum several ``Z(k)`` histograms (e.g. over a fleet of trajectories)."""
    merged: Counter[int] = Counter()
    for distribution in distributions:
        merged.update(distribution)
    return dict(merged)


def anomalous_segment_count(representation: PiecewiseRepresentation) -> int:
    """Number of anomalous segments (at most two credited points)."""
    return sum(1 for segment in representation.segments if segment.is_anomalous)


def heavy_segment_count(representation: PiecewiseRepresentation, *, threshold: int = 10) -> int:
    """Number of segments credited with at least ``threshold`` points."""
    return sum(1 for segment in representation.segments if segment.point_count >= threshold)


def distribution_to_rows(
    distribution: dict[int, int], *, max_k: int | None = None
) -> list[tuple[int, int]]:
    """Sorted ``(k, Z(k))`` rows, optionally clipping the tail at ``max_k``.

    When ``max_k`` is given, all heavier segments are accumulated into the
    final row, mirroring how the paper's Figure 17 is typically binned.
    """
    if not distribution:
        return []
    rows: list[tuple[int, int]] = []
    if max_k is None:
        for k in sorted(distribution):
            rows.append((k, distribution[k]))
        return rows
    tail = 0
    for k in sorted(distribution):
        if k < max_k:
            rows.append((k, distribution[k]))
        else:
            tail += distribution[k]
    rows.append((max_k, tail))
    return rows
