"""Quality metrics: compression ratios, errors, distributions, patching."""

from .compression import compression_ratio, fleet_compression_ratio, retained_point_ratio
from .distribution import (
    anomalous_segment_count,
    distribution_to_rows,
    heavy_segment_count,
    merge_distributions,
    segment_size_distribution,
)
from .error import (
    ErrorSummary,
    average_error,
    check_error_bound,
    error_bound_violations,
    max_error,
    per_point_errors,
    summarize_errors,
)
from .patching import PatchingSummary, aggregate_patching, patched_vertex_count, patching_summary
from .summary import EvaluationReport, evaluate, evaluate_fleet

__all__ = [
    "ErrorSummary",
    "EvaluationReport",
    "PatchingSummary",
    "aggregate_patching",
    "anomalous_segment_count",
    "average_error",
    "check_error_bound",
    "compression_ratio",
    "distribution_to_rows",
    "error_bound_violations",
    "evaluate",
    "evaluate_fleet",
    "fleet_compression_ratio",
    "heavy_segment_count",
    "max_error",
    "merge_distributions",
    "patched_vertex_count",
    "patching_summary",
    "per_point_errors",
    "retained_point_ratio",
    "segment_size_distribution",
    "summarize_errors",
]
