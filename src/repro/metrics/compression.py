"""Compression-ratio metrics (paper Section 6.2.2).

Given trajectories ``T_1 ... T_M`` and their piecewise representations
``T'_1 ... T'_M``, the compression ratio is ``sum |T'_j| / sum |T_j|`` where
``|T'_j|`` is the number of line segments and ``|T_j|`` the number of data
points.  Lower is better.
"""

from __future__ import annotations

from typing import Iterable

from ..trajectory.piecewise import PiecewiseRepresentation

__all__ = ["compression_ratio", "fleet_compression_ratio", "retained_point_ratio"]


def compression_ratio(representation: PiecewiseRepresentation) -> float:
    """Compression ratio (segments / original points) of one trajectory."""
    if representation.source_size == 0:
        return 0.0
    return representation.n_segments / representation.source_size


def fleet_compression_ratio(
    representations: Iterable[PiecewiseRepresentation],
) -> float:
    """Aggregate compression ratio over a fleet of trajectories.

    This matches the paper's definition: total segments over total points,
    not the mean of the per-trajectory ratios.
    """
    total_segments = 0
    total_points = 0
    for representation in representations:
        total_segments += representation.n_segments
        total_points += representation.source_size
    if total_points == 0:
        return 0.0
    return total_segments / total_points


def retained_point_ratio(representation: PiecewiseRepresentation) -> float:
    """Fraction of original points retained as polyline vertices.

    For representations without patch points this is ``(segments + 1) /
    points``; with patch points the synthetic vertices still count, as they
    must be stored/transmitted just like retained points.
    """
    if representation.source_size == 0:
        return 0.0
    return len(representation.retained_points) / representation.source_size
