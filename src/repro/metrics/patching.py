"""Patching metrics for OPERB-A (paper Exp-4.1 / Exp-4.2).

The patching ratio is ``Np / Na`` where ``Na`` is the number of anomalous
line segments the underlying OPERB process produced and ``Np`` the number of
them successfully replaced by a patch point.  The simplifier tracks both; the
helpers here aggregate them over fleets and expose the interpolated-vertex
count of a finished representation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

from ..core.operb_a import OPERBASimplifier, OperbAStatistics
from ..trajectory.piecewise import PiecewiseRepresentation

__all__ = ["PatchingSummary", "patching_summary", "aggregate_patching", "patched_vertex_count"]


@dataclass(frozen=True, slots=True)
class PatchingSummary:
    """Aggregated patch statistics over one or more OPERB-A runs."""

    anomalous_segments: int
    patches_applied: int

    @property
    def patching_ratio(self) -> float:
        """``Np / Na``; ``0.0`` when no anomalous segment was encountered."""
        if self.anomalous_segments == 0:
            return 0.0
        return self.patches_applied / self.anomalous_segments

    def as_dict(self) -> dict[str, float | int]:
        """Plain-dict view (for reports and JSON serialisation)."""
        return {
            "anomalous_segments": self.anomalous_segments,
            "patches_applied": self.patches_applied,
            "patching_ratio": self.patching_ratio,
        }


def patching_summary(simplifier: OPERBASimplifier) -> PatchingSummary:
    """Patch statistics of a finished OPERB-A simplifier."""
    stats = simplifier.stats
    return PatchingSummary(
        anomalous_segments=stats.anomalous_segments,
        patches_applied=stats.patches_applied,
    )


def aggregate_patching(stats: Iterable[OperbAStatistics]) -> PatchingSummary:
    """Aggregate :class:`OperbAStatistics` from several OPERB-A runs."""
    anomalous = 0
    patched = 0
    for item in stats:
        anomalous += item.anomalous_segments
        patched += item.patches_applied
    return PatchingSummary(anomalous_segments=anomalous, patches_applied=patched)


def patched_vertex_count(representation: PiecewiseRepresentation) -> int:
    """Number of interpolated (patch-point) vertices in a representation."""
    return sum(1 for segment in representation.segments if segment.patched_start)
