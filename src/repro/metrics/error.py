"""Error metrics for piecewise representations.

Two notions are provided:

* the **per-point error** used by the paper's average-error experiment
  (Section 6.2.3): the distance of every original point to the line of the
  segment that *contains* it (by index range);
* the **error-bound check** from the paper's definition of an error-bounded
  algorithm (Section 3.2): every original point must be within ``zeta`` of
  the line of *some* output segment.

Both use the point-to-line distance, matching the paper.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from ..geometry.kernels import ped_to_chord
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation

__all__ = [
    "per_point_errors",
    "average_error",
    "max_error",
    "error_bound_violations",
    "check_error_bound",
    "ErrorSummary",
    "summarize_errors",
]


def per_point_errors(
    trajectory: Trajectory,
    representation: PiecewiseRepresentation,
    *,
    nearest_segment: bool = False,
) -> np.ndarray:
    """Distance of every original point to its representative segment line.

    Parameters
    ----------
    nearest_segment:
        When false (default) each point is measured against the segment(s)
        whose index range covers it, taking the minimum when it lies on a
        shared boundary — this is the paper's average-error definition.  When
        true, the minimum over *all* segments is taken, which is the paper's
        error-bound definition and is what the bound guarantees.
    """
    n = len(trajectory)
    if n == 0 or representation.n_segments == 0:
        return np.zeros(n, dtype=float)

    xs = trajectory.xs
    ys = trajectory.ys
    segments = representation.segments

    if nearest_segment:
        errors = np.full(n, np.inf)
        for segment in segments:
            distances = ped_to_chord(
                xs, ys, segment.start.x, segment.start.y, segment.end.x, segment.end.y
            )
            np.minimum(errors, distances, out=errors)
        return errors

    # Each point is measured against the segment(s) covering its index range;
    # covered ranges overlap at shared endpoints (and where trailing points
    # were absorbed), in which case the minimum is taken.
    errors = np.full(n, np.inf)
    for segment in segments:
        low = max(0, segment.first_index)
        high = min(n - 1, segment.covered_last_index)
        if high < low:
            continue
        distances = ped_to_chord(
            xs[low : high + 1],
            ys[low : high + 1],
            segment.start.x,
            segment.start.y,
            segment.end.x,
            segment.end.y,
        )
        np.minimum(errors[low : high + 1], distances, out=errors[low : high + 1])

    uncovered = ~np.isfinite(errors)
    if np.any(uncovered):
        # Points outside every declared range (possible only for malformed
        # representations) fall back to the nearest segment.
        fallback = np.full(int(uncovered.sum()), np.inf)
        sub_xs = xs[uncovered]
        sub_ys = ys[uncovered]
        for segment in segments:
            distances = ped_to_chord(
                sub_xs, sub_ys, segment.start.x, segment.start.y, segment.end.x, segment.end.y
            )
            np.minimum(fallback, distances, out=fallback)
        errors[uncovered] = fallback
    return errors


def average_error(trajectory: Trajectory, representation: PiecewiseRepresentation) -> float:
    """Mean per-point error (the paper's average-error metric)."""
    errors = per_point_errors(trajectory, representation)
    if errors.size == 0:
        return 0.0
    return float(errors.mean())


def max_error(
    trajectory: Trajectory,
    representation: PiecewiseRepresentation,
    *,
    nearest_segment: bool = False,
) -> float:
    """Maximum per-point error."""
    errors = per_point_errors(trajectory, representation, nearest_segment=nearest_segment)
    if errors.size == 0:
        return 0.0
    return float(errors.max())


def error_bound_violations(
    trajectory: Trajectory,
    representation: PiecewiseRepresentation,
    epsilon: float,
    *,
    tolerance: float = 1e-9,
) -> list[int]:
    """Indices of points violating the paper's error-bound definition.

    A point violates the bound when its distance to the line of *every*
    output segment exceeds ``epsilon`` (plus a numerical tolerance).
    """
    errors = per_point_errors(trajectory, representation, nearest_segment=True)
    threshold = epsilon * (1.0 + tolerance) + tolerance
    return [int(i) for i in np.nonzero(errors > threshold)[0]]


def check_error_bound(
    trajectory: Trajectory,
    representation: PiecewiseRepresentation,
    epsilon: float,
    *,
    tolerance: float = 1e-9,
) -> bool:
    """Whether the representation satisfies the paper's error bound."""
    return not error_bound_violations(trajectory, representation, epsilon, tolerance=tolerance)


@dataclass(frozen=True, slots=True)
class ErrorSummary:
    """Summary statistics of the per-point errors of one representation."""

    mean: float
    median: float
    p95: float
    maximum: float
    bound_satisfied: bool

    def as_dict(self) -> dict[str, float | bool]:
        """Plain-dict view (for reports and JSON serialisation)."""
        return {
            "mean": self.mean,
            "median": self.median,
            "p95": self.p95,
            "max": self.maximum,
            "bound_satisfied": self.bound_satisfied,
        }


def summarize_errors(
    trajectory: Trajectory,
    representation: PiecewiseRepresentation,
    epsilon: float,
) -> ErrorSummary:
    """Compute an :class:`ErrorSummary` for one trajectory/representation pair."""
    errors = per_point_errors(trajectory, representation)
    if errors.size == 0:
        return ErrorSummary(0.0, 0.0, 0.0, 0.0, True)
    bound_ok = check_error_bound(trajectory, representation, epsilon)
    return ErrorSummary(
        mean=float(errors.mean()),
        median=float(np.median(errors)),
        p95=float(np.percentile(errors, 95)),
        maximum=float(errors.max()),
        bound_satisfied=bound_ok,
    )
