"""One-stop evaluation of a simplification result.

:func:`evaluate` bundles the compression, error and distribution metrics into
a single :class:`EvaluationReport`, and :func:`evaluate_fleet` aggregates the
same quantities over many trajectories the way the paper's experiments do
(totals over the fleet rather than means of per-trajectory ratios).

``evaluate_fleet`` can also compress the fleet itself: pass ``algorithm=``
(and optionally ``workers=``) instead of precomputed representations and it
routes the run through the fleet executor
(:meth:`repro.api.Simplifier.run_many`).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Sequence

import numpy as np

from ..exceptions import InvalidParameterError
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .compression import compression_ratio, fleet_compression_ratio
from .distribution import anomalous_segment_count, merge_distributions, segment_size_distribution
from .error import per_point_errors

__all__ = ["EvaluationReport", "evaluate", "evaluate_fleet"]


@dataclass(frozen=True, slots=True)
class EvaluationReport:
    """Evaluation of one or more simplification results."""

    algorithm: str
    epsilon: float
    total_points: int
    total_segments: int
    compression_ratio: float
    average_error: float
    max_error: float
    error_bound_satisfied: bool
    anomalous_segments: int
    segment_size_distribution: dict[int, int] = field(default_factory=dict)

    def as_dict(self) -> dict[str, object]:
        """Plain-dict view (for reports and JSON serialisation)."""
        return {
            "algorithm": self.algorithm,
            "epsilon": self.epsilon,
            "total_points": self.total_points,
            "total_segments": self.total_segments,
            "compression_ratio": self.compression_ratio,
            "average_error": self.average_error,
            "max_error": self.max_error,
            "error_bound_satisfied": self.error_bound_satisfied,
            "anomalous_segments": self.anomalous_segments,
        }


def evaluate(
    trajectory: Trajectory,
    representation: PiecewiseRepresentation,
    epsilon: float,
    *,
    tolerance: float = 1e-9,
) -> EvaluationReport:
    """Evaluate a single trajectory's simplification result."""
    errors = per_point_errors(trajectory, representation)
    nearest_errors = per_point_errors(trajectory, representation, nearest_segment=True)
    threshold = epsilon * (1.0 + tolerance) + tolerance
    bound_ok = bool(np.all(nearest_errors <= threshold)) if nearest_errors.size else True
    return EvaluationReport(
        algorithm=representation.algorithm,
        epsilon=epsilon,
        total_points=len(trajectory),
        total_segments=representation.n_segments,
        compression_ratio=compression_ratio(representation),
        average_error=float(errors.mean()) if errors.size else 0.0,
        max_error=float(errors.max()) if errors.size else 0.0,
        error_bound_satisfied=bound_ok,
        anomalous_segments=anomalous_segment_count(representation),
        segment_size_distribution=segment_size_distribution(representation),
    )


def evaluate_fleet(
    trajectories: Sequence[Trajectory],
    representations: Sequence[PiecewiseRepresentation] | None = None,
    epsilon: float | None = None,
    *,
    algorithm: str | None = None,
    workers: int = 1,
    backend: str = "auto",
    tolerance: float = 1e-9,
    **algorithm_opts,
) -> EvaluationReport:
    """Evaluate a fleet: totals and point-weighted error averages.

    Either pass precomputed ``representations`` (index-aligned with
    ``trajectories``), or pass ``algorithm=`` to have the fleet compressed
    here through the unified API — ``workers``/``backend`` select the
    :mod:`repro.exec` execution backend (``workers > 1`` fans out over a
    process pool by default).
    """
    if epsilon is None:
        raise InvalidParameterError("evaluate_fleet requires an epsilon")
    if representations is None:
        if algorithm is None:
            raise InvalidParameterError(
                "evaluate_fleet needs either precomputed representations or an algorithm="
            )
        from ..api.session import Simplifier  # local import; metrics is a lower layer

        fleet_run = Simplifier(algorithm, epsilon, **algorithm_opts).run_many(
            trajectories, workers=workers, backend=backend
        )
        representations = fleet_run.successful()
    elif algorithm is not None:
        raise InvalidParameterError(
            "pass either representations or algorithm=, not both"
        )
    elif algorithm_opts or workers != 1 or backend != "auto":
        # Without algorithm= these would be silently ignored (or are typos of
        # tolerance); fail loudly instead.
        stray = sorted(algorithm_opts) + (["workers"] if workers != 1 else [])
        stray += ["backend"] if backend != "auto" else []
        raise InvalidParameterError(
            f"unexpected keyword argument(s) {', '.join(stray)}: "
            f"compression options require the algorithm= path"
        )
    if len(trajectories) != len(representations):
        raise ValueError(
            f"{len(trajectories)} trajectories but {len(representations)} representations"
        )
    total_points = 0
    total_segments = 0
    error_sum = 0.0
    error_max = 0.0
    bound_ok = True
    anomalous = 0
    distributions: list[dict[int, int]] = []
    algorithm = representations[0].algorithm if representations else ""
    threshold = epsilon * (1.0 + tolerance) + tolerance
    for trajectory, representation in zip(trajectories, representations):
        errors = per_point_errors(trajectory, representation)
        nearest = per_point_errors(trajectory, representation, nearest_segment=True)
        total_points += len(trajectory)
        total_segments += representation.n_segments
        if errors.size:
            error_sum += float(errors.sum())
            error_max = max(error_max, float(errors.max()))
        if nearest.size and not bool(np.all(nearest <= threshold)):
            bound_ok = False
        anomalous += anomalous_segment_count(representation)
        distributions.append(segment_size_distribution(representation))
    return EvaluationReport(
        algorithm=algorithm,
        epsilon=epsilon,
        total_points=total_points,
        total_segments=total_segments,
        compression_ratio=fleet_compression_ratio(representations),
        average_error=error_sum / total_points if total_points else 0.0,
        max_error=error_max,
        error_bound_satisfied=bound_ok,
        anomalous_segments=anomalous,
        segment_size_distribution=merge_distributions(distributions),
    )
