"""Experiment harness: one module per table/figure of the paper's Section 6.

``EXPERIMENTS`` maps experiment identifiers to their ``run`` callables; the
CLI (``repro-traj experiment``) and ``examples/reproduce_paper.py`` drive the
whole suite through this registry.
"""

from typing import Callable

from . import (
    fig12_efficiency_size,
    fig13_efficiency_epsilon,
    fig14_optimization_efficiency,
    fig15_compression_epsilon,
    fig16_optimization_compression,
    fig17_segment_distribution,
    fig18_average_error,
    fig19_patching,
    table1,
)
from .runner import (
    DATASET_ORDER,
    OPTIMIZATION_PAIRS,
    PAPER_ALGORITHMS,
    ExperimentResult,
    TimedRun,
    run_algorithm,
    time_algorithm,
)
from .workloads import (
    DEFAULT_SCALE,
    FLEET_SCALE,
    LARGE_SCALE,
    SMALL_SCALE,
    WorkloadScale,
    profile_fleet,
    standard_datasets,
)

__all__ = [
    "DATASET_ORDER",
    "DEFAULT_SCALE",
    "EXPERIMENTS",
    "ExperimentResult",
    "FLEET_SCALE",
    "LARGE_SCALE",
    "OPTIMIZATION_PAIRS",
    "PAPER_ALGORITHMS",
    "SMALL_SCALE",
    "TimedRun",
    "WorkloadScale",
    "fig12_efficiency_size",
    "fig13_efficiency_epsilon",
    "fig14_optimization_efficiency",
    "fig15_compression_epsilon",
    "fig16_optimization_compression",
    "fig17_segment_distribution",
    "fig18_average_error",
    "fig19_patching",
    "profile_fleet",
    "run_algorithm",
    "standard_datasets",
    "table1",
    "time_algorithm",
]

EXPERIMENTS: dict[str, Callable[..., object]] = {
    "table1": table1.run,
    "fig12": fig12_efficiency_size.run,
    "fig13": fig13_efficiency_epsilon.run,
    "fig14": fig14_optimization_efficiency.run,
    "fig15": fig15_compression_epsilon.run,
    "fig16": fig16_optimization_compression.run,
    "fig17": fig17_segment_distribution.run,
    "fig18": fig18_average_error.run,
    "fig19-1": fig19_patching.run_patching_vs_epsilon,
    "fig19-2": fig19_patching.run_patching_vs_gamma,
}
"""Registry of every reproducible table/figure, keyed by experiment id."""
