"""Figure 13 (Exp-1.2) — running time versus the error bound.

The paper varies ``zeta`` from 10 m to 100 m over the entire datasets and
reports running times.  The expected shape: run time is largely insensitive
to ``zeta`` (decreasing slightly as ``zeta`` grows), OPERB/OPERB-A are the
fastest, DP the slowest and the most sensitive.
"""

from __future__ import annotations

from typing import Sequence

from ..trajectory.model import Trajectory
from .runner import PAPER_ALGORITHMS, ExperimentResult, time_algorithm
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "fig13"
TITLE = "Efficiency vs. error bound zeta"

DEFAULT_EPSILONS = (10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
    repeats: int = 1,
) -> ExperimentResult:
    """Measure running time as a function of the error bound."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["dataset", "epsilon", "algorithm", "seconds", "points/s", "speedup vs dp"],
        parameters={"epsilons": list(epsilons), "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for epsilon in epsilons:
            timings: dict[str, float] = {}
            for algorithm in algorithms:
                timed = time_algorithm(algorithm, fleet, epsilon, repeats=repeats)
                timings[algorithm] = timed.seconds
                result.add_row(
                    dataset=dataset,
                    epsilon=epsilon,
                    algorithm=algorithm,
                    seconds=round(timed.seconds, 4),
                    **{"points/s": round(timed.points_per_second)},
                    **{"speedup vs dp": None},
                )
            dp_time = timings.get("dp")
            if dp_time:
                for row in result.rows:
                    if row["dataset"] == dataset and row["epsilon"] == epsilon:
                        algorithm_time = timings.get(str(row["algorithm"]))
                        if algorithm_time:
                            row["speedup vs dp"] = round(dp_time / algorithm_time, 2)
    return result
