"""Figure 17 (Exp-2.3) — distribution of points per line segment.

For a fixed ``zeta`` of 40 m, the paper counts, for every algorithm, how many
output segments contain exactly ``k`` original points (``Z(k)``).  Expected
shape: DP and OPERB-A produce more heavy segments (large ``k``) than FBQS and
OPERB; OPERB produces the largest number of anomalous (two-point) segments,
most of which OPERB-A removes.
"""

from __future__ import annotations

from typing import Sequence

from ..metrics.distribution import distribution_to_rows, merge_distributions, segment_size_distribution
from ..trajectory.model import Trajectory
from .runner import PAPER_ALGORITHMS, ExperimentResult, run_algorithm
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "fig17"
TITLE = "Distribution Z(k) of points per line segment (zeta = 40 m)"

DEFAULT_MAX_K = 20


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilon: float = 40.0,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    max_k: int = DEFAULT_MAX_K,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Compute the Z(k) histogram per dataset and algorithm."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["dataset", "algorithm", "k", "Z(k)"],
        parameters={"epsilon": epsilon, "max_k": max_k, "seed": seed},
        notes=f"The final bucket (k = {max_k}) accumulates all heavier segments.",
    )
    for dataset, fleet in datasets.items():
        for algorithm in algorithms:
            representations = run_algorithm(algorithm, fleet, epsilon)
            distribution = merge_distributions(
                segment_size_distribution(representation) for representation in representations
            )
            for k, count in distribution_to_rows(distribution, max_k=max_k):
                result.add_row(dataset=dataset, algorithm=algorithm, k=k, **{"Z(k)": count})
    return result
