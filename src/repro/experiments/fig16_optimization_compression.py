"""Figure 16 (Exp-2.2) — compression-ratio impact of the optimisations.

The paper compares OPERB with Raw-OPERB and OPERB-A with Raw-OPERB-A over
``zeta`` in 5–100 m.  Expected shape: the optimisations improve (lower) the
compression ratio substantially — OPERB reaches roughly 58–88% of Raw-OPERB
depending on the dataset — and their impact grows with ``zeta``.
"""

from __future__ import annotations

from typing import Sequence

from ..metrics.compression import fleet_compression_ratio
from ..trajectory.model import Trajectory
from .runner import OPTIMIZATION_PAIRS, ExperimentResult, run_algorithm
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "fig16"
TITLE = "Compression-ratio impact of the optimisation techniques"

DEFAULT_EPSILONS = (5.0, 10.0, 40.0, 100.0)


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Measure raw vs. optimised compression ratios."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "dataset",
            "epsilon",
            "pair",
            "raw ratio",
            "optimised ratio",
            "optimised / raw (%)",
        ],
        parameters={"epsilons": list(epsilons), "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for epsilon in epsilons:
            for raw_name, optimised_name in OPTIMIZATION_PAIRS:
                raw_ratio = fleet_compression_ratio(run_algorithm(raw_name, fleet, epsilon))
                optimised_ratio = fleet_compression_ratio(
                    run_algorithm(optimised_name, fleet, epsilon)
                )
                relative = 100.0 * optimised_ratio / raw_ratio if raw_ratio > 0.0 else 0.0
                result.add_row(
                    dataset=dataset,
                    epsilon=epsilon,
                    pair=f"{optimised_name} vs {raw_name}",
                    **{
                        "raw ratio": round(raw_ratio, 5),
                        "optimised ratio": round(optimised_ratio, 5),
                        "optimised / raw (%)": round(relative, 1),
                    },
                )
    return result
