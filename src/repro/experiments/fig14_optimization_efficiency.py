"""Figure 14 (Exp-1.3) — run-time impact of the optimisation techniques.

The paper compares OPERB against Raw-OPERB and OPERB-A against Raw-OPERB-A
while varying ``zeta``, and finds the optimisations have only a limited
impact on running time (within tens of percent either way).
"""

from __future__ import annotations

from typing import Sequence

from ..trajectory.model import Trajectory
from .runner import OPTIMIZATION_PAIRS, ExperimentResult, time_algorithm
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "fig14"
TITLE = "Run-time impact of the optimisation techniques"

DEFAULT_EPSILONS = (10.0, 40.0, 100.0)


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
    repeats: int = 1,
) -> ExperimentResult:
    """Measure raw vs. optimised running times."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "dataset",
            "epsilon",
            "pair",
            "raw seconds",
            "optimised seconds",
            "raw / optimised (%)",
        ],
        parameters={"epsilons": list(epsilons), "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for epsilon in epsilons:
            for raw_name, optimised_name in OPTIMIZATION_PAIRS:
                raw = time_algorithm(raw_name, fleet, epsilon, repeats=repeats)
                optimised = time_algorithm(optimised_name, fleet, epsilon, repeats=repeats)
                ratio = (
                    100.0 * raw.seconds / optimised.seconds if optimised.seconds > 0.0 else 0.0
                )
                result.add_row(
                    dataset=dataset,
                    epsilon=epsilon,
                    pair=f"{raw_name} vs {optimised_name}",
                    **{
                        "raw seconds": round(raw.seconds, 4),
                        "optimised seconds": round(optimised.seconds, 4),
                        "raw / optimised (%)": round(ratio, 1),
                    },
                )
    return result
