"""Experiment infrastructure: results, timing and shared constants.

Every experiment module exposes a ``run(...) -> ExperimentResult`` function.
An :class:`ExperimentResult` is a small self-describing table (columns plus
rows of dictionaries) so the same object can be printed by the benchmarks,
dumped to markdown for ``EXPERIMENTS.md`` or inspected programmatically.
"""

from __future__ import annotations

import time
from dataclasses import dataclass, field
from typing import Sequence

from ..api.session import Simplifier
from ..trajectory.model import Trajectory
from ..trajectory.piecewise import PiecewiseRepresentation
from .reporting import format_markdown_table, format_text_table

__all__ = [
    "ExperimentResult",
    "TimedRun",
    "time_algorithm",
    "run_algorithm",
    "PAPER_ALGORITHMS",
    "OPTIMIZATION_PAIRS",
    "DATASET_ORDER",
]

PAPER_ALGORITHMS = ("dp", "fbqs", "operb", "operb-a")
"""The four algorithms compared throughout the paper's evaluation."""

OPTIMIZATION_PAIRS = (("raw-operb", "operb"), ("raw-operb-a", "operb-a"))
"""Raw/optimised pairs used by the ablation experiments (Exp-1.3, Exp-2.2)."""

DATASET_ORDER = ("Taxi", "Truck", "SerCar", "GeoLife")
"""Dataset presentation order used by every table in the paper."""


@dataclass
class ExperimentResult:
    """A self-describing result table for one experiment."""

    experiment_id: str
    title: str
    columns: list[str]
    rows: list[dict[str, object]] = field(default_factory=list)
    parameters: dict[str, object] = field(default_factory=dict)
    notes: str = ""

    def add_row(self, **values: object) -> None:
        """Append one row (keyword arguments keyed by column name)."""
        self.rows.append(values)

    def to_text(self) -> str:
        """Render as an aligned plain-text table with a heading."""
        heading = f"{self.experiment_id}: {self.title}"
        if self.parameters:
            params = ", ".join(f"{key}={value}" for key, value in self.parameters.items())
            heading = f"{heading} ({params})"
        table = format_text_table(self.columns, self.rows)
        parts = [heading, table]
        if self.notes:
            parts.append(self.notes)
        return "\n".join(parts)

    def to_markdown(self) -> str:
        """Render as a markdown table with a heading."""
        heading = f"### {self.experiment_id}: {self.title}"
        table = format_markdown_table(self.columns, self.rows)
        parts = [heading, "", table]
        if self.notes:
            parts.extend(["", self.notes])
        return "\n".join(parts)

    def column(self, name: str) -> list[object]:
        """All values of one column, in row order."""
        return [row.get(name) for row in self.rows]

    def filter_rows(self, **criteria: object) -> list[dict[str, object]]:
        """Rows matching all the given column=value criteria."""
        matched = []
        for row in self.rows:
            if all(row.get(key) == value for key, value in criteria.items()):
                matched.append(row)
        return matched


@dataclass(frozen=True, slots=True)
class TimedRun:
    """Timing plus outputs of running one algorithm over a set of trajectories."""

    algorithm: str
    seconds: float
    total_points: int
    representations: tuple[PiecewiseRepresentation, ...]

    @property
    def points_per_second(self) -> float:
        """Throughput in data points per second (0 when the run was empty)."""
        if self.seconds <= 0.0:
            return 0.0
        return self.total_points / self.seconds


def run_algorithm(
    algorithm: str,
    trajectories: Sequence[Trajectory],
    epsilon: float,
    *,
    workers: int = 1,
    **kwargs,
) -> list[PiecewiseRepresentation]:
    """Run one registered algorithm over a fleet and collect the outputs.

    Dispatches through the unified fleet executor; ``workers > 1`` spreads
    the fleet over a process pool.  A failing trajectory raises
    :class:`repro.exceptions.FleetExecutionError` (chained from the original
    exception when running serially) rather than the bare algorithm error.
    """
    result = Simplifier(algorithm, epsilon, **kwargs).run_many(trajectories, workers=workers)
    return result.successful()


def time_algorithm(
    algorithm: str,
    trajectories: Sequence[Trajectory],
    epsilon: float,
    *,
    repeats: int = 1,
    **kwargs,
) -> TimedRun:
    """Time one algorithm over a fleet of trajectories.

    Mirrors the paper's measurement protocol: trajectories are compressed one
    by one (serially, so the numbers reflect single-core algorithm cost) and
    only the compression time is counted (workload generation and evaluation
    are excluded).  With ``repeats > 1`` the fastest repetition is reported,
    which reduces interference from the host machine.
    """
    session = Simplifier(algorithm, epsilon, **kwargs)
    best = float("inf")
    representations: list[PiecewiseRepresentation] = []
    for _ in range(max(1, repeats)):
        outputs: list[PiecewiseRepresentation] = []
        start = time.perf_counter()
        for trajectory in trajectories:
            outputs.append(session.run(trajectory))
        elapsed = time.perf_counter() - start
        if elapsed < best:
            best = elapsed
            representations = outputs
    total_points = sum(len(trajectory) for trajectory in trajectories)
    return TimedRun(
        algorithm=algorithm,
        seconds=best,
        total_points=total_points,
        representations=tuple(representations),
    )
