"""Figure 12 (Exp-1.1) — running time versus trajectory size.

The paper varies the trajectory size from 2,000 to 10,000 points at a fixed
error bound of 40 m and reports the running time of DP, FBQS, OPERB and
OPERB-A on each dataset.  The expected shape: FBQS/OPERB/OPERB-A scale
linearly, DP super-linearly, and OPERB/OPERB-A are the fastest throughout.
"""

from __future__ import annotations

from typing import Sequence

from ..datasets.generator import generate_trajectory
from ..datasets.profiles import PROFILES
from .runner import DATASET_ORDER, PAPER_ALGORITHMS, ExperimentResult, time_algorithm

__all__ = ["run"]

EXPERIMENT_ID = "fig12"
TITLE = "Efficiency vs. trajectory size (zeta = 40 m)"

DEFAULT_SIZES = (2_000, 4_000, 6_000, 8_000, 10_000)


def run(
    *,
    sizes: Sequence[int] = DEFAULT_SIZES,
    epsilon: float = 40.0,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    datasets: Sequence[str] = DATASET_ORDER,
    trajectories_per_size: int = 1,
    seed: int = 2017,
    repeats: int = 1,
) -> ExperimentResult:
    """Measure running time as a function of the number of points."""
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=["dataset", "size", "algorithm", "seconds", "points/s", "speedup vs dp"],
        parameters={"epsilon": epsilon, "sizes": list(sizes), "seed": seed},
    )
    for dataset_index, dataset in enumerate(datasets):
        profile = PROFILES[dataset.lower()]
        for size in sizes:
            workload = [
                generate_trajectory(profile, size, seed=seed + dataset_index * 1000 + replica)
                for replica in range(trajectories_per_size)
            ]
            timings: dict[str, float] = {}
            for algorithm in algorithms:
                timed = time_algorithm(algorithm, workload, epsilon, repeats=repeats)
                timings[algorithm] = timed.seconds
                result.add_row(
                    dataset=dataset,
                    size=size,
                    algorithm=algorithm,
                    seconds=round(timed.seconds, 4),
                    **{"points/s": round(timed.points_per_second)},
                    **{"speedup vs dp": None},
                )
            dp_time = timings.get("dp")
            if dp_time:
                for row in result.rows:
                    if row["dataset"] == dataset and row["size"] == size:
                        algorithm_time = timings.get(str(row["algorithm"]))
                        if algorithm_time:
                            row["speedup vs dp"] = round(dp_time / algorithm_time, 2)
    return result
