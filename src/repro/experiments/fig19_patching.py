"""Figure 19 (Exp-4.1 / Exp-4.2) — trajectory interpolation (patching).

Two sweeps:

* **Exp-4.1** varies ``zeta`` (10–100 m) at the default ``gamma_m = pi/3``
  and reports the patching ratio ``Np / Na`` — the fraction of anomalous
  segments OPERB-A successfully removes with a patch point.
* **Exp-4.2** varies ``gamma_m`` from 0 to 180 degrees at ``zeta = 40 m``.
  Expected shape: the patching ratio decreases as ``gamma_m`` grows (a larger
  ``gamma_m`` forbids larger direction changes), with the steepest drop once
  ``gamma_m`` passes the typical street-corner angle of the dataset.
"""

from __future__ import annotations

import math
from typing import Sequence

from ..core.config import OperbAConfig
from ..core.operb_a import OPERBASimplifier
from ..metrics.patching import aggregate_patching
from ..trajectory.model import Trajectory
from .runner import ExperimentResult
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run_patching_vs_epsilon", "run_patching_vs_gamma", "run"]

EXPERIMENT_ID_EPSILON = "fig19-1"
EXPERIMENT_ID_GAMMA = "fig19-2"

DEFAULT_EPSILONS = (10.0, 20.0, 40.0, 60.0, 80.0, 100.0)
DEFAULT_GAMMAS_DEG = (0.0, 30.0, 60.0, 75.0, 90.0, 105.0, 120.0, 145.0, 180.0)


def _fleet_patching(fleet: Sequence[Trajectory], epsilon: float, gamma_max: float):
    """Run OPERB-A over a fleet and aggregate its patch statistics."""
    stats = []
    for trajectory in fleet:
        simplifier = OPERBASimplifier(OperbAConfig.optimized(epsilon, gamma_max=gamma_max))
        simplifier.simplify(trajectory)
        stats.append(simplifier.stats)
    return aggregate_patching(stats)


def run_patching_vs_epsilon(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    gamma_max: float = math.pi / 3.0,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Exp-4.1: patching ratio as a function of the error bound."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID_EPSILON,
        title="Patching ratio vs. error bound (gamma_m = pi/3)",
        columns=["dataset", "epsilon", "anomalous (Na)", "patched (Np)", "patching ratio (%)"],
        parameters={"gamma_max_deg": round(math.degrees(gamma_max), 1), "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for epsilon in epsilons:
            summary = _fleet_patching(fleet, epsilon, gamma_max)
            result.add_row(
                dataset=dataset,
                epsilon=epsilon,
                **{
                    "anomalous (Na)": summary.anomalous_segments,
                    "patched (Np)": summary.patches_applied,
                    "patching ratio (%)": round(100.0 * summary.patching_ratio, 1),
                },
            )
    return result


def run_patching_vs_gamma(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    gammas_deg: Sequence[float] = DEFAULT_GAMMAS_DEG,
    epsilon: float = 40.0,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Exp-4.2: patching ratio as a function of ``gamma_m``."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID_GAMMA,
        title="Patching ratio vs. gamma_m (zeta = 40 m)",
        columns=["dataset", "gamma_m (deg)", "anomalous (Na)", "patched (Np)", "patching ratio (%)"],
        parameters={"epsilon": epsilon, "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for gamma_deg in gammas_deg:
            summary = _fleet_patching(fleet, epsilon, math.radians(gamma_deg))
            result.add_row(
                dataset=dataset,
                **{
                    "gamma_m (deg)": gamma_deg,
                    "anomalous (Na)": summary.anomalous_segments,
                    "patched (Np)": summary.patches_applied,
                    "patching ratio (%)": round(100.0 * summary.patching_ratio, 1),
                },
            )
    return result


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> list[ExperimentResult]:
    """Run both patching sweeps (Exp-4.1 and Exp-4.2)."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    return [
        run_patching_vs_epsilon(datasets, seed=seed),
        run_patching_vs_gamma(datasets, seed=seed),
    ]
