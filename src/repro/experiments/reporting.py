"""Rendering helpers for experiment results (plain text and markdown)."""

from __future__ import annotations

from typing import Mapping, Sequence

__all__ = ["format_cell", "format_text_table", "format_markdown_table"]


def format_cell(value: object) -> str:
    """Human-friendly formatting of one table cell."""
    if isinstance(value, bool):
        return "yes" if value else "no"
    if isinstance(value, float):
        if value == 0.0:
            return "0"
        magnitude = abs(value)
        if magnitude >= 1000.0:
            return f"{value:,.0f}"
        if magnitude >= 1.0:
            return f"{value:.3f}".rstrip("0").rstrip(".")
        return f"{value:.4f}".rstrip("0").rstrip(".")
    if value is None:
        return "-"
    return str(value)


def format_text_table(columns: Sequence[str], rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as an aligned, pipe-free plain-text table."""
    rendered = [[format_cell(row.get(column)) for column in columns] for row in rows]
    widths = [
        max(len(str(column)), *(len(line[i]) for line in rendered)) if rendered else len(str(column))
        for i, column in enumerate(columns)
    ]
    header = "  ".join(str(column).ljust(width) for column, width in zip(columns, widths))
    separator = "  ".join("-" * width for width in widths)
    body = [
        "  ".join(cell.ljust(width) for cell, width in zip(line, widths)) for line in rendered
    ]
    return "\n".join([header, separator, *body])


def format_markdown_table(columns: Sequence[str], rows: Sequence[Mapping[str, object]]) -> str:
    """Render rows as a GitHub-flavoured markdown table."""
    header = "| " + " | ".join(str(column) for column in columns) + " |"
    separator = "| " + " | ".join("---" for _ in columns) + " |"
    body = [
        "| " + " | ".join(format_cell(row.get(column)) for column in columns) + " |"
        for row in rows
    ]
    return "\n".join([header, separator, *body])
