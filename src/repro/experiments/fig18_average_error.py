"""Figure 18 (Exp-3) — average error versus the error bound.

For ``zeta`` from 5 m to 100 m the paper reports the average distance of each
original point to the line segment that represents it.  Expected shape: the
average error grows with ``zeta`` and always stays well below it; datasets
with better compression ratios (Taxi) show lower average errors; OPERB and
OPERB-A have essentially identical errors (patching adds none).
"""

from __future__ import annotations

from typing import Sequence

from ..metrics.summary import evaluate_fleet
from ..trajectory.model import Trajectory
from .runner import PAPER_ALGORITHMS, ExperimentResult, run_algorithm
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "fig18"
TITLE = "Average error vs. error bound zeta"

DEFAULT_EPSILONS = (5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Measure the average (and maximum) error as a function of ``zeta``."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "dataset",
            "epsilon",
            "algorithm",
            "average error",
            "max error",
            "bound satisfied",
        ],
        parameters={"epsilons": list(epsilons), "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for epsilon in epsilons:
            for algorithm in algorithms:
                representations = run_algorithm(algorithm, fleet, epsilon)
                report = evaluate_fleet(fleet, representations, epsilon)
                result.add_row(
                    dataset=dataset,
                    epsilon=epsilon,
                    algorithm=algorithm,
                    **{
                        "average error": round(report.average_error, 3),
                        "max error": round(report.max_error, 3),
                        "bound satisfied": report.error_bound_satisfied,
                    },
                )
    return result
