"""Workload construction shared by every experiment.

The paper runs its evaluation over four GPS corpora; this module synthesises
laptop-scale stand-ins for them (see ``DESIGN.md`` for the substitution
rationale).  A :class:`WorkloadScale` bundles the fleet size so benchmarks can
run a small scale quickly while ``examples/reproduce_paper.py`` runs a larger
one.  Users with the real GeoLife corpus can build the same mapping from
:func:`repro.datasets.load_geolife` and pass it to any experiment.
"""

from __future__ import annotations

from dataclasses import dataclass

from ..datasets.generator import generate_dataset
from ..datasets.profiles import PROFILES
from ..trajectory.model import Trajectory
from .runner import DATASET_ORDER

__all__ = [
    "WorkloadScale",
    "SMALL_SCALE",
    "DEFAULT_SCALE",
    "LARGE_SCALE",
    "FLEET_SCALE",
    "standard_datasets",
    "profile_fleet",
]


@dataclass(frozen=True, slots=True)
class WorkloadScale:
    """Size of the synthetic evaluation workload."""

    name: str
    n_trajectories: int
    points_per_trajectory: int

    @property
    def total_points(self) -> int:
        """Total number of points per dataset at this scale."""
        return self.n_trajectories * self.points_per_trajectory


SMALL_SCALE = WorkloadScale("small", n_trajectories=2, points_per_trajectory=2_000)
"""Fast scale used by the pytest benchmarks (seconds per experiment)."""

DEFAULT_SCALE = WorkloadScale("default", n_trajectories=5, points_per_trajectory=5_000)
"""Scale used by ``examples/reproduce_paper.py`` (a few minutes in total)."""

LARGE_SCALE = WorkloadScale("large", n_trajectories=20, points_per_trajectory=10_000)
"""Closer-to-paper scale for users who want to let the sweep run longer."""

FLEET_SCALE = WorkloadScale("fleet", n_trajectories=100, points_per_trajectory=1_000)
"""Many-small-trajectories scale exercising the fleet executor
(``Simplifier.run_many``); used by ``benchmarks/bench_run_many_workers.py``."""


def profile_fleet(
    profile: str = "taxi", scale: WorkloadScale = FLEET_SCALE, *, seed: int = 2017
) -> list[Trajectory]:
    """Synthesise a single-profile fleet at the requested scale.

    The workload shape of a fleet operator: many independent trajectories of
    one vehicle class, ready to hand to ``Simplifier.run_many``.
    """
    return generate_dataset(
        PROFILES[profile.lower()],
        n_trajectories=scale.n_trajectories,
        points_per_trajectory=scale.points_per_trajectory,
        seed=seed,
    )


def standard_datasets(
    scale: WorkloadScale = SMALL_SCALE, *, seed: int = 2017
) -> dict[str, list[Trajectory]]:
    """Synthesise the four evaluation datasets at the requested scale.

    Returns a mapping ``{"Taxi": [...], "Truck": [...], ...}`` in the paper's
    presentation order.  The seed defaults to the paper's publication year so
    every experiment in the repository shares one reproducible workload.
    """
    datasets: dict[str, list[Trajectory]] = {}
    for offset, name in enumerate(DATASET_ORDER):
        profile = PROFILES[name.lower()]
        datasets[name] = generate_dataset(
            profile,
            n_trajectories=scale.n_trajectories,
            points_per_trajectory=scale.points_per_trajectory,
            seed=seed + offset,
        )
    return datasets
