"""Table 1 — dataset statistics.

The paper's Table 1 lists, per dataset, the number of trajectories, the
sampling rate, the average points per trajectory and the total number of
points.  This experiment regenerates the same columns from the synthetic
workload (at whatever scale was requested) and reports the paper's original
values alongside, so the reader can see exactly what was substituted.
"""

from __future__ import annotations

from ..datasets.generator import dataset_statistics
from ..datasets.profiles import PROFILES
from ..trajectory.model import Trajectory
from .runner import DATASET_ORDER, ExperimentResult
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "table1"
TITLE = "Dataset statistics (synthetic stand-ins vs. paper)"


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Regenerate Table 1 for the synthetic workload."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "dataset",
            "trajectories",
            "sampling interval (s)",
            "points/trajectory",
            "total points",
            "paper trajectories",
            "paper sampling (s)",
            "paper points/traj (K)",
            "paper total points",
        ],
        parameters={"scale": scale.name, "seed": seed},
        notes=(
            "Synthetic stand-ins are laptop-scale; the paper columns show the "
            "original corpora the profiles emulate."
        ),
    )
    for name in DATASET_ORDER:
        trajectories = datasets.get(name, [])
        stats = dataset_statistics(trajectories)
        profile = PROFILES[name.lower()]
        low, high = profile.sampling_interval
        paper_sampling = f"{low:.0f}" if low == high else f"{low:.0f}-{high:.0f}"
        result.add_row(
            **{
                "dataset": name,
                "trajectories": stats["trajectories"],
                "sampling interval (s)": round(stats["mean_sampling_interval"], 1),
                "points/trajectory": round(stats["mean_points"], 1),
                "total points": stats["total_points"],
                "paper trajectories": profile.paper_trajectories,
                "paper sampling (s)": paper_sampling,
                "paper points/traj (K)": profile.paper_points_per_trajectory,
                "paper total points": profile.paper_total_points,
            }
        )
    return result
