"""Figure 15 (Exp-2.1) — compression ratio versus the error bound.

The paper varies ``zeta`` from 5 m to 100 m and reports the compression
ratio (segments / points, lower is better) of DP, FBQS, OPERB and OPERB-A.
Expected shape: ratios drop as ``zeta`` grows; Taxi compresses worst (lowest
sampling rate) and GeoLife best; OPERB is comparable with DP and FBQS;
OPERB-A has the best (lowest) ratio almost everywhere.
"""

from __future__ import annotations

from typing import Sequence

from ..metrics.compression import fleet_compression_ratio
from ..trajectory.model import Trajectory
from .runner import PAPER_ALGORITHMS, ExperimentResult, run_algorithm
from .workloads import SMALL_SCALE, WorkloadScale, standard_datasets

__all__ = ["run"]

EXPERIMENT_ID = "fig15"
TITLE = "Compression ratio vs. error bound zeta"

DEFAULT_EPSILONS = (5.0, 10.0, 20.0, 40.0, 60.0, 80.0, 100.0)


def run(
    datasets: dict[str, list[Trajectory]] | None = None,
    *,
    epsilons: Sequence[float] = DEFAULT_EPSILONS,
    algorithms: Sequence[str] = PAPER_ALGORITHMS,
    scale: WorkloadScale = SMALL_SCALE,
    seed: int = 2017,
) -> ExperimentResult:
    """Measure compression ratios as a function of the error bound."""
    if datasets is None:
        datasets = standard_datasets(scale, seed=seed)
    result = ExperimentResult(
        experiment_id=EXPERIMENT_ID,
        title=TITLE,
        columns=[
            "dataset",
            "epsilon",
            "algorithm",
            "segments",
            "compression ratio",
            "ratio vs dp (%)",
        ],
        parameters={"epsilons": list(epsilons), "seed": seed},
    )
    for dataset, fleet in datasets.items():
        for epsilon in epsilons:
            ratios: dict[str, float] = {}
            for algorithm in algorithms:
                representations = run_algorithm(algorithm, fleet, epsilon)
                ratio = fleet_compression_ratio(representations)
                ratios[algorithm] = ratio
                result.add_row(
                    dataset=dataset,
                    epsilon=epsilon,
                    algorithm=algorithm,
                    segments=sum(r.n_segments for r in representations),
                    **{"compression ratio": round(ratio, 5), "ratio vs dp (%)": None},
                )
            dp_ratio = ratios.get("dp")
            if dp_ratio:
                for row in result.rows:
                    if row["dataset"] == dataset and row["epsilon"] == epsilon:
                        algorithm_ratio = ratios.get(str(row["algorithm"]))
                        if algorithm_ratio is not None:
                            row["ratio vs dp (%)"] = round(100.0 * algorithm_ratio / dp_ratio, 1)
    return result
