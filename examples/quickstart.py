"""Quickstart: compress a GPS trajectory with OPERB and inspect the result.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import evaluate, generate_trajectory, simplify


def main() -> None:
    # 1. Get a trajectory.  Here we synthesise a service-car trajectory
    #    (3-5 s sampling on an urban road network); with real data you would
    #    use repro.trajectory.read_csv / read_plt or Trajectory.from_latlon.
    trajectory = generate_trajectory("sercar", 5_000, seed=7)
    print(f"input: {len(trajectory)} points, {trajectory.path_length() / 1000:.1f} km")

    # 2. Compress it with an error bound of 40 metres.
    epsilon = 40.0
    for algorithm in ("operb", "operb-a", "dp", "fbqs"):
        compressed = simplify(trajectory, epsilon, algorithm=algorithm)
        report = evaluate(trajectory, compressed, epsilon)
        print(
            f"{algorithm:>8}: {compressed.n_segments:5d} segments  "
            f"ratio {report.compression_ratio:6.4f}  "
            f"avg error {report.average_error:5.2f} m  "
            f"max error {report.max_error:5.2f} m  "
            f"bound {'ok' if report.error_bound_satisfied else 'VIOLATED'}"
        )

    # 3. The retained vertices are ordinary points you can store or transmit.
    compressed = simplify(trajectory, epsilon, algorithm="operb-a")
    vertices = compressed.retained_points
    print(f"\nOPERB-A keeps {len(vertices)} vertices; the first three are:")
    for point in vertices[:3]:
        print(f"  x={point.x:10.1f}  y={point.y:10.1f}  t={point.t:8.1f}")


if __name__ == "__main__":
    main()
