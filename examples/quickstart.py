"""Quickstart: compress a GPS trajectory with OPERB and inspect the result.

Run with::

    python examples/quickstart.py
"""

from __future__ import annotations

from repro import Simplifier, evaluate, generate_trajectory, list_descriptors


def main() -> None:
    # 1. Get a trajectory.  Here we synthesise a service-car trajectory
    #    (3-5 s sampling on an urban road network); with real data you would
    #    use repro.trajectory.read_csv / read_plt or Trajectory.from_latlon.
    trajectory = generate_trajectory("sercar", 5_000, seed=7)
    print(f"input: {len(trajectory)} points, {trajectory.path_length() / 1000:.1f} km")

    # 2. Compress it with an error bound of 40 metres.  A Simplifier session
    #    binds one algorithm + epsilon and dispatches through the unified
    #    descriptor registry.
    epsilon = 40.0
    for algorithm in ("operb", "operb-a", "dp", "fbqs"):
        compressed = Simplifier(algorithm, epsilon).run(trajectory)
        report = evaluate(trajectory, compressed, epsilon)
        print(
            f"{algorithm:>8}: {compressed.n_segments:5d} segments  "
            f"ratio {report.compression_ratio:6.4f}  "
            f"avg error {report.average_error:5.2f} m  "
            f"max error {report.max_error:5.2f} m  "
            f"bound {'ok' if report.error_bound_satisfied else 'VIOLATED'}"
        )

    # 3. The retained vertices are ordinary points you can store or transmit.
    compressed = Simplifier("operb-a", epsilon).run(trajectory)
    vertices = compressed.retained_points
    print(f"\nOPERB-A keeps {len(vertices)} vertices; the first three are:")
    for point in vertices[:3]:
        print(f"  x={point.x:10.1f}  y={point.y:10.1f}  t={point.t:8.1f}")

    # 4. Capability flags tell you which algorithms can run truly online.
    one_pass = [d.name for d in list_descriptors() if d.one_pass]
    print(f"\none-pass algorithms (O(1) state per device): {', '.join(one_pass)}")


if __name__ == "__main__":
    main()
