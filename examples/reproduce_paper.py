"""Re-run every table and figure of the paper's evaluation section.

Runs the full experiment registry (Table 1 and Figures 12-19) on the
synthetic stand-in workload and writes both plain-text tables and a combined
markdown report.  The workload scale is configurable; the default takes a few
minutes on a laptop.

Run with::

    python examples/reproduce_paper.py            # default scale
    python examples/reproduce_paper.py --scale small
    python examples/reproduce_paper.py --scale large --output results/
"""

from __future__ import annotations

import argparse
from pathlib import Path

from repro.experiments import (
    DEFAULT_SCALE,
    EXPERIMENTS,
    LARGE_SCALE,
    SMALL_SCALE,
    standard_datasets,
)

SCALES = {"small": SMALL_SCALE, "default": DEFAULT_SCALE, "large": LARGE_SCALE}


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--scale", choices=sorted(SCALES), default="small")
    parser.add_argument("--seed", type=int, default=2017)
    parser.add_argument("--output", default="paper_results")
    args = parser.parse_args()

    scale = SCALES[args.scale]
    output = Path(args.output)
    output.mkdir(parents=True, exist_ok=True)

    print(
        f"building workload: {scale.n_trajectories} trajectories x "
        f"{scale.points_per_trajectory} points per dataset (seed {args.seed})"
    )
    datasets = standard_datasets(scale, seed=args.seed)

    markdown_parts = []
    for identifier, run in EXPERIMENTS.items():
        print(f"\nrunning {identifier} ...")
        if identifier == "fig12":
            result = run(seed=args.seed)
        else:
            result = run(datasets, seed=args.seed)
        results = result if isinstance(result, list) else [result]
        for item in results:
            print(item.to_text())
            (output / f"{item.experiment_id}.txt").write_text(item.to_text() + "\n")
            markdown_parts.append(item.to_markdown())

    report = output / "paper_report.md"
    report.write_text("\n\n".join(markdown_parts) + "\n")
    print(f"\nwrote per-experiment tables and {report}")


if __name__ == "__main__":
    main()
